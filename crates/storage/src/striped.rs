//! Multi-disk striped spill: N devices behind one [`StorageDevice`].
//!
//! The paper's experiments funnel every run through one dedicated disk;
//! real sort boxes stripe their spill across several drives. A
//! [`StripedDevice`] composes any mix of [`AnyDevice`] members behind the
//! ordinary [`StorageDevice`] trait: whole files (not pages) are placed on
//! members by a [`StripePolicy`], every member keeps its own independent
//! [`IoStats`] — per-disk counters that stay deterministic — and all
//! members share one [`ContentionState`] so concurrently admitted jobs
//! fair-share the stripe's bandwidth (see [`crate::contention`]).
//!
//! The parallel sorter routes shard `i`'s spill writes to member
//! `i % members` through [`StorageDevice::shard_view`], which is what makes
//! per-disk seek counters concrete again at `threads > 1`: each disk serves
//! one shard's sequential write stream and, later, one merge read stream.
//!
//! Counter semantics: [`StripedDevice::stats`] always reports the fold of
//! every member's snapshot (the stripe totals), while
//! [`StripedDevice::member_stats`] exposes the per-disk breakdown; the two
//! agree by construction — member counters sum to the device totals.

use crate::contention::{ContentionState, IoClientGuard, SharedBandwidthModel};
use crate::device::{PageFile, StorageDevice};
use crate::error::{Result, StorageError};
use crate::io_stats::{IoStats, IoStatsSnapshot};
use crate::spec::AnyDevice;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a [`StripedDevice`] chooses the member a new file is created on.
///
/// Placement is per *file*: a run written to member 2 is read back from
/// member 2. Pinned views obtained via
/// [`shard_view`](StorageDevice::shard_view) bypass the policy entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StripePolicy {
    /// Cycle through the members in order (the default).
    #[default]
    RoundRobin,
    /// Place each new file on the member with the fewest pages transferred
    /// so far (ties break toward the lowest index).
    LeastLoaded,
    /// Place every new file on one explicit member (index modulo the
    /// member count).
    Pinned(usize),
}

struct StripedShared {
    members: Vec<AnyDevice>,
    /// File name → member index, for files created through this stripe.
    placement: Mutex<HashMap<String, usize>>,
    /// Round-robin cursor; advanced only by unpinned creates so that
    /// pinned shard traffic cannot perturb coordinator-side placement.
    next: AtomicU64,
    contention: Arc<ContentionState>,
    /// Serves `io_stats()` for unpinned views (wrappers read the device
    /// model from it); it records nothing itself — the members hold the
    /// real counters and `stats()` folds them.
    aggregate: IoStats,
    policy: StripePolicy,
    page_size: usize,
}

/// N storage devices striped behind one [`StorageDevice`] front.
///
/// Clones share the stripe; a clone can additionally be *pinned* to one
/// member (see [`shard_view`](StorageDevice::shard_view)), in which case
/// every file it creates lands on that member and its
/// [`io_stats`](StorageDevice::io_stats) are the member's own.
#[derive(Clone)]
pub struct StripedDevice {
    shared: Arc<StripedShared>,
    pin: Option<usize>,
}

impl StripedDevice {
    /// Stripes `members` with the default round-robin placement policy.
    pub fn new(members: Vec<AnyDevice>) -> Result<Self> {
        Self::with_policy(members, StripePolicy::default())
    }

    /// Stripes `members` with an explicit placement policy.
    ///
    /// Fails with [`StorageError::BadStripe`] when the member list is
    /// empty, when members disagree on the page size, or when a member is
    /// itself striped (stripes do not nest). Each member's cost model is
    /// wrapped in a [`SharedBandwidthModel`] over one shared
    /// [`ContentionState`], so clients admitted to the stripe slow every
    /// member down proportionally.
    pub fn with_policy(members: Vec<AnyDevice>, policy: StripePolicy) -> Result<Self> {
        let Some(first) = members.first() else {
            return Err(StorageError::BadStripe(
                "a stripe needs at least one member".into(),
            ));
        };
        let page_size = first.page_size();
        if let Some(odd) = members.iter().find(|m| m.page_size() != page_size) {
            return Err(StorageError::BadStripe(format!(
                "members disagree on page size ({} vs {})",
                page_size,
                odd.page_size()
            )));
        }
        if members.iter().any(|m| m.stripe_members() > 1) {
            return Err(StorageError::BadStripe(
                "stripes do not nest: a member is itself striped".into(),
            ));
        }
        let contention = ContentionState::new();
        for member in &members {
            let stats = member.io_stats();
            let model = stats.device_model();
            stats.set_model(Arc::new(SharedBandwidthModel::new(
                model,
                Arc::clone(&contention),
            )));
        }
        let aggregate = IoStats::with_model(first.io_stats().device_model());
        Ok(StripedDevice {
            shared: Arc::new(StripedShared {
                members,
                placement: Mutex::new(HashMap::new()),
                next: AtomicU64::new(0),
                contention,
                aggregate,
                policy,
                page_size,
            }),
            pin: None,
        })
    }

    /// Number of stripe members.
    pub fn members(&self) -> usize {
        self.shared.members.len()
    }

    /// The placement policy in force.
    pub fn policy(&self) -> StripePolicy {
        self.shared.policy
    }

    /// The member this view is pinned to, if any.
    pub fn pinned_member(&self) -> Option<usize> {
        self.pin
    }

    /// One I/O snapshot per member, in member order. Summing these (see
    /// [`IoStatsSnapshot::merged`]) reproduces [`StorageDevice::stats`].
    pub fn member_stats(&self) -> Vec<IoStatsSnapshot> {
        self.shared.members.iter().map(|m| m.stats()).collect()
    }

    /// The shared admission state driving the bandwidth fair-share.
    pub fn contention(&self) -> &Arc<ContentionState> {
        &self.shared.contention
    }

    /// The stripe member a new file would be created on right now.
    fn member_for_create(&self) -> usize {
        if let Some(pin) = self.pin {
            return pin;
        }
        let count = self.members();
        match self.shared.policy {
            StripePolicy::Pinned(index) => index % count,
            StripePolicy::RoundRobin => {
                self.shared.next.fetch_add(1, Ordering::SeqCst) as usize % count
            }
            StripePolicy::LeastLoaded => self
                .shared
                .members
                .iter()
                .enumerate()
                .map(|(index, member)| (member.stats().pages_total(), index))
                .min()
                .map(|(_, index)| index)
                .unwrap_or(0),
        }
    }

    /// The member holding `name`: the placement map first, then a probe of
    /// every member (files can predate this wrapper when a stripe is built
    /// over populated devices).
    fn locate(&self, name: &str) -> Option<usize> {
        if let Some(&index) = self.shared.placement.lock().get(name) {
            return Some(index);
        }
        let found = self.shared.members.iter().position(|m| m.exists(name))?;
        self.shared.placement.lock().insert(name.to_string(), found);
        Some(found)
    }
}

impl StorageDevice for StripedDevice {
    fn page_size(&self) -> usize {
        self.shared.page_size
    }

    fn create(&self, name: &str) -> Result<Box<dyn PageFile>> {
        // Names are unique across the whole stripe, not per member.
        if self.exists(name) {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let index = self.member_for_create();
        let file = self.shared.members[index].create(name)?;
        self.shared.placement.lock().insert(name.to_string(), index);
        Ok(file)
    }

    fn open(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let index = self
            .locate(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        self.shared.members[index].open(name)
    }

    fn remove(&self, name: &str) -> Result<()> {
        let index = self
            .locate(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        self.shared.members[index].remove(name)?;
        self.shared.placement.lock().remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.locate(name).is_some()
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.members.iter().flat_map(|m| m.list()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// A pinned view answers with its member's statistics (so wrappers like
    /// [`ScopedDevice`](crate::scoped::ScopedDevice) mirror the member's
    /// cost model); an unpinned view answers with a dormant aggregate whose
    /// counters stay zero — read [`stats`](StorageDevice::stats) (the
    /// member fold) or [`StripedDevice::member_stats`] for real numbers.
    fn io_stats(&self) -> &IoStats {
        match self.pin {
            Some(index) => self.shared.members[index].io_stats(),
            None => &self.shared.aggregate,
        }
    }

    /// The stripe totals: the field-wise fold of every member's snapshot,
    /// regardless of pinning.
    fn stats(&self) -> IoStatsSnapshot {
        let mut total = IoStatsSnapshot::zero(self.shared.aggregate.model());
        for member in &self.shared.members {
            total = total.merged(&member.stats());
        }
        total
    }

    fn reset_stats(&self) {
        for member in &self.shared.members {
            member.reset_stats();
        }
        self.shared.aggregate.reset();
    }

    fn stripe_members(&self) -> usize {
        self.members()
    }

    fn shard_view(&self, index: usize) -> Self {
        let mut view = self.clone();
        view.pin = Some(index % self.members());
        view
    }

    fn attach_io_client(&self) -> Option<IoClientGuard> {
        Some(self.shared.contention.attach())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::model::ModelId;

    fn sim_members(count: usize, model: ModelId) -> Vec<AnyDevice> {
        (0..count)
            .map(|_| AnyDevice::Sim(SimDevice::with_model(model)))
            .collect()
    }

    fn member_holding(stripe: &StripedDevice, name: &str) -> usize {
        stripe
            .shared
            .members
            .iter()
            .position(|m| m.exists(name))
            .expect("file placed somewhere")
    }

    #[test]
    fn round_robin_cycles_files_across_members() {
        let stripe = StripedDevice::new(sim_members(3, ModelId::Nvme)).unwrap();
        for name in ["a", "b", "c", "d"] {
            stripe.create(name).unwrap();
        }
        assert_eq!(member_holding(&stripe, "a"), 0);
        assert_eq!(member_holding(&stripe, "b"), 1);
        assert_eq!(member_holding(&stripe, "c"), 2);
        assert_eq!(member_holding(&stripe, "d"), 0);
        // Every file is reachable through the stripe front.
        for name in ["a", "b", "c", "d"] {
            assert!(stripe.exists(name));
            stripe.open(name).unwrap();
        }
        assert_eq!(stripe.list(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn pinned_views_route_to_their_member_without_advancing_round_robin() {
        let stripe = StripedDevice::new(sim_members(2, ModelId::Nvme)).unwrap();
        let shard1 = stripe.shard_view(1);
        assert_eq!(shard1.pinned_member(), Some(1));
        shard1.create("spill.0").unwrap();
        shard1.create("spill.1").unwrap();
        assert_eq!(member_holding(&stripe, "spill.0"), 1);
        assert_eq!(member_holding(&stripe, "spill.1"), 1);
        // Pinned creates must not advance the shared cursor: the next
        // unpinned create still starts at member 0.
        stripe.create("out").unwrap();
        assert_eq!(member_holding(&stripe, "out"), 0);
        // shard_view wraps around the member count.
        assert_eq!(stripe.shard_view(5).pinned_member(), Some(1));
    }

    #[test]
    fn member_counters_sum_to_the_stripe_totals() {
        let stripe = StripedDevice::new(sim_members(3, ModelId::Hdd7200)).unwrap();
        let page = vec![1u8; stripe.page_size()];
        for (name, writes) in [("a", 4u64), ("b", 2), ("c", 7)] {
            let mut f = stripe.create(name).unwrap();
            for i in 0..writes {
                f.write_page(i, &page).unwrap();
            }
        }
        let mut buf = vec![0u8; stripe.page_size()];
        stripe.open("c").unwrap().read_page(0, &mut buf).unwrap();
        let folded = stripe
            .member_stats()
            .into_iter()
            .fold(IoStatsSnapshot::zero(stripe.io_stats().model()), |a, b| {
                a.merged(&b)
            });
        let total = stripe.stats();
        assert_eq!(folded.counters, total.counters);
        assert_eq!(total.counters.pages_written, 13);
        assert_eq!(total.counters.pages_read, 1);
        assert_eq!(total.counters.files_created, 3);
        // The unpinned io_stats view is dormant by design.
        assert_eq!(stripe.io_stats().snapshot().counters.pages_written, 0);
    }

    #[test]
    fn pinned_io_stats_are_the_members_own() {
        let stripe = StripedDevice::new(sim_members(2, ModelId::Nvme)).unwrap();
        let shard0 = stripe.shard_view(0);
        let page = vec![0u8; stripe.page_size()];
        shard0.create("f").unwrap().write_page(0, &page).unwrap();
        assert_eq!(shard0.io_stats().snapshot().counters.pages_written, 1);
        assert_eq!(
            stripe
                .shard_view(1)
                .io_stats()
                .snapshot()
                .counters
                .pages_written,
            0
        );
        // stats() keeps reporting stripe totals even on pinned views.
        assert_eq!(shard0.stats().counters.pages_written, 1);
    }

    #[test]
    fn least_loaded_places_on_the_emptiest_member() {
        let stripe =
            StripedDevice::with_policy(sim_members(2, ModelId::Nvme), StripePolicy::LeastLoaded)
                .unwrap();
        let page = vec![0u8; stripe.page_size()];
        let mut f = stripe.shard_view(0).create("busy").unwrap();
        for i in 0..5 {
            f.write_page(i, &page).unwrap();
        }
        stripe.create("light").unwrap();
        assert_eq!(member_holding(&stripe, "light"), 1);
    }

    #[test]
    fn explicit_pinning_policy_holds_every_create() {
        let stripe =
            StripedDevice::with_policy(sim_members(3, ModelId::Nvme), StripePolicy::Pinned(2))
                .unwrap();
        for name in ["a", "b"] {
            stripe.create(name).unwrap();
            assert_eq!(member_holding(&stripe, name), 2);
        }
    }

    #[test]
    fn duplicate_names_collide_across_members() {
        let stripe = StripedDevice::new(sim_members(2, ModelId::Nvme)).unwrap();
        stripe.create("x").unwrap();
        // The round-robin cursor points at member 1 now, but "x" lives on
        // member 0 and must still be refused.
        assert!(matches!(
            stripe.create("x"),
            Err(StorageError::AlreadyExists(_))
        ));
        stripe.remove("x").unwrap();
        assert!(!stripe.exists("x"));
        assert!(matches!(stripe.remove("x"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn bad_stripes_are_rejected() {
        assert!(matches!(
            StripedDevice::new(Vec::new()),
            Err(StorageError::BadStripe(_))
        ));
        let mismatched = vec![
            AnyDevice::Sim(SimDevice::custom(4096, ModelId::Nvme)),
            AnyDevice::Sim(SimDevice::custom(8192, ModelId::Nvme)),
        ];
        assert!(matches!(
            StripedDevice::new(mismatched),
            Err(StorageError::BadStripe(_))
        ));
        let nested = StripedDevice::new(sim_members(2, ModelId::Nvme)).unwrap();
        assert!(matches!(
            StripedDevice::new(vec![AnyDevice::Striped(nested)]),
            Err(StorageError::BadStripe(_))
        ));
    }

    #[test]
    fn admitted_clients_slow_every_member_proportionally() {
        let stripe = StripedDevice::new(sim_members(2, ModelId::Hdd7200)).unwrap();
        let page = vec![0u8; stripe.page_size()];
        let mut buf = vec![0u8; stripe.page_size()];
        let mut write_read = |name: &str| {
            let mut f = stripe.create(name).unwrap();
            f.write_page(0, &page).unwrap();
            stripe.open(name).unwrap().read_page(0, &mut buf).unwrap();
        };
        write_read("solo");
        let solo = stripe.stats().sim_io;
        stripe.reset_stats();

        let _first = stripe.attach_io_client().expect("stripes model contention");
        let _second = stripe.attach_io_client().expect("stripes model contention");
        write_read("contended");
        let contended = stripe.stats().sim_io;
        // Two admitted streams → every access costs twice as much, while
        // the deterministic counters are unchanged.
        assert_eq!(contended, solo * 2);
        assert!(contended > solo);
    }

    #[test]
    fn reset_clears_every_member() {
        let stripe = StripedDevice::new(sim_members(2, ModelId::Nvme)).unwrap();
        let page = vec![0u8; stripe.page_size()];
        stripe.create("f").unwrap().write_page(0, &page).unwrap();
        stripe.reset_stats();
        assert_eq!(stripe.stats().counters.pages_written, 0);
        assert!(stripe.member_stats().iter().all(|s| s.pages_total() == 0));
    }
}
