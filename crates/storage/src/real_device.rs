//! A real-disk backend that bypasses the page cache where it can.
//!
//! The paper's measurements were taken against a dedicated SATA disk opened
//! with direct I/O so the OS page cache could not hide the seek costs under
//! study. [`RealFileDevice`] reproduces that setup: files are opened with
//! `O_DIRECT` when the platform and filesystem support it, and every page
//! moves through a page-aligned bounce buffer so caller buffers need no
//! alignment of their own. Where `O_DIRECT` is unavailable (non-Linux
//! hosts, tmpfs, unaligned page sizes) the device falls back to buffered
//! I/O and *says so*: the decision is surfaced as a [`DirectIoStatus`] on
//! the device and printed once as a warning, because a benchmark that
//! silently measured the page cache would reproduce nothing.
//!
//! The device implements the same [`StorageDevice`] trait as the simulated
//! backend, so `SortJob`, `SortService` and the bench suite run on it
//! unmodified; counters (pages, seeks) are recorded with the same shared
//! seek-detection rule, charged to a zero-cost `"real"` model so simulated
//! time stays zero and wall-clock time is the only time that matters here.

use crate::device::{PageFile, StorageDevice};
use crate::error::{Result, StorageError};
use crate::io_stats::{DiskModel, IoStats};
use crate::model::custom;
use std::alloc::Layout;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether the device got `O_DIRECT`, and if not, why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectIoStatus {
    /// Files are opened with `O_DIRECT`; reads and writes bypass the OS
    /// page cache.
    Enabled,
    /// `O_DIRECT` could not be used; the device fell back to buffered I/O.
    /// The payload says why (e.g. tmpfs rejecting the flag, a non-Linux
    /// host, a page size that is not sector-aligned).
    Fallback(String),
}

impl DirectIoStatus {
    /// `true` when the page cache is being bypassed.
    pub fn is_direct(&self) -> bool {
        matches!(self, DirectIoStatus::Enabled)
    }
}

impl fmt::Display for DirectIoStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectIoStatus::Enabled => f.write_str("O_DIRECT"),
            DirectIoStatus::Fallback(reason) => write!(f, "buffered ({reason})"),
        }
    }
}

/// The `O_DIRECT` open flag for this target, if it has one. The value is
/// architecture-dependent on Linux; targets not listed here simply fall
/// back to buffered I/O rather than guessing.
fn o_direct_flag() -> Option<i32> {
    #[cfg(all(
        target_os = "linux",
        any(
            target_arch = "x86",
            target_arch = "x86_64",
            target_arch = "riscv64",
            target_arch = "s390x"
        )
    ))]
    {
        Some(0o40000)
    }
    #[cfg(all(target_os = "linux", any(target_arch = "arm", target_arch = "aarch64")))]
    {
        Some(0o200000)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(
            target_arch = "x86",
            target_arch = "x86_64",
            target_arch = "riscv64",
            target_arch = "s390x",
            target_arch = "arm",
            target_arch = "aarch64"
        )
    )))]
    {
        None
    }
}

/// A heap buffer aligned for direct I/O (4 KiB alignment covers every
/// common logical block size). Used as a bounce buffer so callers can pass
/// ordinary unaligned slices.
struct AlignedBuf {
    ptr: NonNull<u8>,
    layout: Layout,
}

// The buffer is exclusively owned; the raw pointer does not alias.
unsafe impl Send for AlignedBuf {}

impl AlignedBuf {
    fn new(size: usize) -> Result<Self> {
        let layout = Layout::from_size_align(size, 4096).map_err(|e| {
            StorageError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cannot lay out aligned page buffer of {size} bytes: {e}"),
            ))
        })?;
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let ptr = NonNull::new(raw).ok_or_else(|| {
            StorageError::Io(io::Error::new(
                io::ErrorKind::OutOfMemory,
                "aligned page buffer allocation failed",
            ))
        })?;
        Ok(AlignedBuf { ptr, layout })
    }

    fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.layout.size()) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.layout.size()) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), self.layout) };
    }
}

fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }
}

fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::os::unix::fs::FileExt::write_all_at(file, buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut file = file;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(buf)
    }
}

struct RealShared {
    root: PathBuf,
    stats: IoStats,
    page_size: usize,
    next_file_id: AtomicU64,
    direct: DirectIoStatus,
    /// The extra open flag (`O_DIRECT`) when direct I/O is active.
    open_flags: i32,
    /// Remove the root directory when the last handle is dropped.
    cleanup: bool,
    /// Canonical root registered in the collision guard, released on drop.
    claimed: PathBuf,
}

impl Drop for RealShared {
    fn drop(&mut self) {
        if self.cleanup {
            let _ = std::fs::remove_dir_all(&self.root);
        }
        crate::device::release_root(&self.claimed);
    }
}

/// A page-aligned, `O_DIRECT`-capable device backed by real files.
///
/// Construction probes the target directory once: if an `O_DIRECT` open
/// succeeds there, every file of the device bypasses the page cache;
/// otherwise the device runs buffered and reports the reason through
/// [`RealFileDevice::direct_io`] (and a one-time warning on stderr).
/// Obtain one via [`DeviceSpec`](crate::spec::DeviceSpec) strings such as
/// `"real:/mnt/bench"`, or directly with [`RealFileDevice::temp`] /
/// [`RealFileDevice::at`].
#[derive(Clone)]
pub struct RealFileDevice {
    shared: Arc<RealShared>,
}

impl RealFileDevice {
    /// Creates a device rooted at a fresh unique directory inside the
    /// system temporary directory (removed when the last clone and page
    /// file are dropped), with the default page size.
    pub fn temp() -> Result<Self> {
        Self::temp_with_page_size(crate::page::DEFAULT_PAGE_SIZE)
    }

    /// Like [`RealFileDevice::temp`] with an explicit page size.
    pub fn temp_with_page_size(page_size: usize) -> Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "twrs-real-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let root = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&root)?;
        Self::build(root, page_size, true)
    }

    /// Creates a device rooted at an existing directory; files are kept on
    /// drop. This is what `"real:/path"` device specs build. Errors with
    /// [`StorageError::DeviceRootBusy`] while another live device owns the
    /// same directory.
    pub fn at(root: impl Into<PathBuf>, page_size: usize) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Self::build(root, page_size, false)
    }

    fn build(root: PathBuf, page_size: usize, cleanup: bool) -> Result<Self> {
        if page_size == 0 {
            return Err(StorageError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "page size must be non-zero",
            )));
        }
        let (direct, open_flags) = probe_direct(&root, page_size);
        if let DirectIoStatus::Fallback(reason) = &direct {
            eprintln!(
                "twrs-storage: O_DIRECT unavailable at {} — falling back to buffered I/O ({reason})",
                root.display()
            );
        }
        let claimed = crate::device::claim_root(&root)?;
        Ok(RealFileDevice {
            shared: Arc::new(RealShared {
                root,
                // Counters use the shared seek-detection rule; the zero-cost
                // "real" model keeps simulated time at zero because on this
                // backend only wall-clock time is meaningful.
                stats: IoStats::with_model(custom(
                    "real",
                    DiskModel {
                        seek_us: 0.0,
                        rotational_us: 0.0,
                        transfer_page_us: 0.0,
                    },
                )),
                page_size,
                next_file_id: AtomicU64::new(1),
                direct,
                open_flags,
                cleanup,
                claimed,
            }),
        })
    }

    /// The directory the device stores its files under.
    pub fn root(&self) -> &Path {
        &self.shared.root
    }

    /// Whether this device got `O_DIRECT`, and if not, why.
    pub fn direct_io(&self) -> &DirectIoStatus {
        &self.shared.direct
    }

    fn path_of(&self, name: &str) -> PathBuf {
        let safe: String = name
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        self.shared.root.join(safe)
    }

    fn open_options(&self) -> OpenOptions {
        let mut opts = OpenOptions::new();
        opts.read(true).write(true);
        #[cfg(unix)]
        if self.shared.open_flags != 0 {
            std::os::unix::fs::OpenOptionsExt::custom_flags(&mut opts, self.shared.open_flags);
        }
        opts
    }
}

/// Probes whether `O_DIRECT` works for files under `root` with this page
/// size, returning the status and the extra open flags to use (0 when
/// buffered).
fn probe_direct(root: &Path, page_size: usize) -> (DirectIoStatus, i32) {
    let Some(flag) = o_direct_flag() else {
        return (
            DirectIoStatus::Fallback("O_DIRECT is not supported on this target".to_string()),
            0,
        );
    };
    if page_size % 512 != 0 {
        return (
            DirectIoStatus::Fallback(format!(
                "page size {page_size} is not a multiple of the 512-byte sector size"
            )),
            0,
        );
    }
    let probe_path = root.join(".twrs-direct-probe");
    let status = try_direct_probe(&probe_path, page_size, flag);
    let _ = std::fs::remove_file(&probe_path);
    match status {
        Ok(()) => (DirectIoStatus::Enabled, flag),
        Err(e) => (
            DirectIoStatus::Fallback(format!("probe write with O_DIRECT failed: {e}")),
            0,
        ),
    }
}

/// Opens the probe file with `O_DIRECT` and pushes one aligned page through
/// it — some filesystems accept the flag at `open` and only reject the
/// first transfer, so probing the open alone is not enough.
#[cfg(unix)]
fn try_direct_probe(path: &Path, page_size: usize, flag: i32) -> std::result::Result<(), String> {
    let mut opts = OpenOptions::new();
    opts.read(true).write(true).create(true).truncate(true);
    std::os::unix::fs::OpenOptionsExt::custom_flags(&mut opts, flag);
    let file = opts.open(path).map_err(|e| e.to_string())?;
    let buf = AlignedBuf::new(page_size).map_err(|e| e.to_string())?;
    write_all_at(&file, buf.as_slice(), 0).map_err(|e| e.to_string())
}

#[cfg(not(unix))]
fn try_direct_probe(
    _path: &Path,
    _page_size: usize,
    _flag: i32,
) -> std::result::Result<(), String> {
    Err("O_DIRECT open flags require a unix target".to_string())
}

struct RealDirectPageFile {
    name: String,
    file_id: u64,
    file: File,
    stats: IoStats,
    page_size: usize,
    pages: u64,
    /// Bounce buffer satisfying the memory-alignment requirement of
    /// `O_DIRECT`, so callers may pass unaligned slices.
    bounce: AlignedBuf,
    /// Keeps the device root (and its drop-time cleanup) alive until the
    /// last open page file is gone — same guarantee as `FileDevice`.
    _device: Arc<RealShared>,
}

impl PageFile for RealDirectPageFile {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.pages
    }

    fn read_page(&mut self, index: u64, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::PageSizeMismatch {
                got: buf.len(),
                expected: self.page_size,
            });
        }
        if index >= self.pages {
            return Err(StorageError::PageOutOfBounds {
                file: self.name.clone(),
                page: index,
                pages: self.pages,
            });
        }
        read_exact_at(
            &self.file,
            self.bounce.as_mut_slice(),
            index * self.page_size as u64,
        )?;
        buf.copy_from_slice(self.bounce.as_slice());
        self.stats.record_access(self.file_id, index, 1, false);
        Ok(())
    }

    fn write_page(&mut self, index: u64, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(StorageError::PageSizeMismatch {
                got: data.len(),
                expected: self.page_size,
            });
        }
        self.bounce.as_mut_slice().copy_from_slice(data);
        write_all_at(
            &self.file,
            self.bounce.as_slice(),
            index * self.page_size as u64,
        )?;
        if index >= self.pages {
            // Writing past the end extends the file; skipped pages become a
            // sparse hole that reads back as zeroes.
            self.pages = index + 1;
        }
        self.stats.record_access(self.file_id, index, 1, true);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        // With O_DIRECT the data already bypassed the cache; buffered
        // fallback relies on the OS write-behind cache exactly as the
        // paper's model assumes (Appendix A.1), so no fsync either way.
        Ok(())
    }
}

impl StorageDevice for RealFileDevice {
    fn page_size(&self) -> usize {
        self.shared.page_size
    }

    fn create(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let path = self.path_of(name);
        if path.exists() {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let mut opts = self.open_options();
        opts.create_new(true);
        let file = opts.open(&path)?;
        self.shared.stats.record_create();
        Ok(Box::new(RealDirectPageFile {
            name: name.to_string(),
            file_id: self.shared.next_file_id.fetch_add(1, Ordering::Relaxed),
            file,
            stats: self.shared.stats.clone(),
            page_size: self.shared.page_size,
            pages: 0,
            bounce: AlignedBuf::new(self.shared.page_size)?,
            _device: Arc::clone(&self.shared),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let path = self.path_of(name);
        if !path.exists() {
            return Err(StorageError::NotFound(name.to_string()));
        }
        let file = self.open_options().open(&path)?;
        let len = file.metadata()?.len();
        let pages = len / self.shared.page_size as u64;
        Ok(Box::new(RealDirectPageFile {
            name: name.to_string(),
            file_id: self.shared.next_file_id.fetch_add(1, Ordering::Relaxed),
            file,
            stats: self.shared.stats.clone(),
            page_size: self.shared.page_size,
            pages,
            bounce: AlignedBuf::new(self.shared.page_size)?,
            _device: Arc::clone(&self.shared),
        }))
    }

    fn remove(&self, name: &str) -> Result<()> {
        let path = self.path_of(name);
        if !path.exists() {
            return Err(StorageError::NotFound(name.to_string()));
        }
        std::fs::remove_file(path)?;
        self.shared.stats.record_remove();
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.shared.root)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort_unstable();
        names
    }

    fn io_stats(&self) -> &IoStats {
        &self.shared.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_round_trip_with_unaligned_caller_buffers() {
        let device = RealFileDevice::temp().unwrap();
        let page_size = device.page_size();
        let mut file = device.create("runs").unwrap();
        let mut page = vec![0u8; page_size];
        for i in 0..4u8 {
            page.fill(i + 1);
            file.write_page(i as u64, &page).unwrap();
        }
        file.flush().unwrap();
        drop(file);

        let mut reopened = device.open("runs").unwrap();
        assert_eq!(reopened.num_pages(), 4);
        let mut buf = vec![0u8; page_size];
        for i in 0..4u8 {
            reopened.read_page(i as u64, &mut buf).unwrap();
            assert!(buf.iter().all(|b| *b == i + 1), "page {i}");
        }
    }

    #[test]
    fn direct_io_status_is_always_decided_and_printable() {
        let device = RealFileDevice::temp().unwrap();
        // tmpfs rejects O_DIRECT and real filesystems accept it; either way
        // the device must have made (and be able to report) a decision.
        let status = device.direct_io().clone();
        let text = status.to_string();
        match status {
            DirectIoStatus::Enabled => assert_eq!(text, "O_DIRECT"),
            DirectIoStatus::Fallback(reason) => {
                assert!(text.contains("buffered"));
                assert!(!reason.is_empty());
            }
        }
    }

    #[test]
    fn unaligned_page_size_falls_back_to_buffered() {
        let device = RealFileDevice::temp_with_page_size(1000).unwrap();
        assert!(!device.direct_io().is_direct());
        let mut file = device.create("odd").unwrap();
        let page = vec![9u8; 1000];
        file.write_page(0, &page).unwrap();
        let mut buf = vec![0u8; 1000];
        file.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, page);
    }

    #[test]
    fn sparse_holes_read_back_as_zeroes() {
        let device = RealFileDevice::temp().unwrap();
        let page_size = device.page_size();
        let mut file = device.create("sparse").unwrap();
        let page = vec![5u8; page_size];
        file.write_page(3, &page).unwrap();
        assert_eq!(file.num_pages(), 4);
        let mut buf = vec![1u8; page_size];
        file.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|b| *b == 0));
    }

    #[test]
    fn temp_root_removed_after_last_handle() {
        let device = RealFileDevice::temp().unwrap();
        let root = device.root().to_path_buf();
        let mut file = device.create("f").unwrap();
        drop(device);
        assert!(root.exists(), "open page file keeps the root alive");
        let page = vec![0u8; file.page_size()];
        file.write_page(0, &page).unwrap();
        drop(file);
        assert!(!root.exists());
    }

    #[test]
    fn same_root_twice_is_rejected_across_backends() {
        let root = std::env::temp_dir().join(format!("twrs-real-collide-{}", std::process::id()));
        let first = RealFileDevice::at(&root, 4096).unwrap();
        // A second real device over the live root must error cleanly…
        assert!(matches!(
            RealFileDevice::at(&root, 4096),
            Err(StorageError::DeviceRootBusy(_))
        ));
        // …and so must a FileDevice: the claim registry spans backends.
        assert!(matches!(
            crate::device::FileDevice::at(&root, 4096),
            Err(StorageError::DeviceRootBusy(_))
        ));
        drop(first);
        // Dropping the last owner frees the root for reuse.
        drop(RealFileDevice::at(&root, 4096).unwrap());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn counters_follow_the_shared_seek_rule() {
        let device = RealFileDevice::temp().unwrap();
        let page_size = device.page_size();
        let page = vec![0u8; page_size];
        let mut file = device.create("g").unwrap();
        for i in 0..3 {
            file.write_page(i, &page).unwrap();
        }
        let mut buf = vec![0u8; page_size];
        for i in 0..3 {
            file.read_page(i, &mut buf).unwrap();
        }
        let stats = device.stats();
        assert_eq!(stats.counters.pages_written, 3);
        assert_eq!(stats.counters.pages_read, 3);
        // Initial positioning only: sequential reads, writes never seek.
        assert_eq!(stats.counters.seeks, 1);
        // The "real" model charges nothing — wall clock is the only time.
        assert_eq!(stats.simulated_time(), std::time::Duration::ZERO);
    }
}
