//! Naming and lifecycle helpers for the temporary files of a sort.
//!
//! A single external sort creates many short-lived files: one per run during
//! run generation, plus intermediate merge outputs. [`SpillNamer`] hands out
//! unique, human-readable names within a namespace so concurrent sorts on
//! the same device never collide, and remembers what it created so the whole
//! set can be dropped at the end.

use crate::device::StorageDevice;
use crate::error::Result;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocates unique file names inside a namespace and tracks them for
/// cleanup.
#[derive(Debug)]
pub struct SpillNamer {
    namespace: String,
    counter: AtomicU64,
    created: parking_lot::Mutex<Vec<String>>,
}

impl SpillNamer {
    /// Creates a namer whose files are all prefixed with `namespace`.
    pub fn new(namespace: impl Into<String>) -> Self {
        SpillNamer {
            namespace: namespace.into(),
            counter: AtomicU64::new(0),
            created: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Returns the next unique name with the given role (e.g. `"run"`,
    /// `"merge"`).
    pub fn next_name(&self, role: &str) -> String {
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}.{}.{:06}", self.namespace, role, id);
        self.created.lock().push(name.clone());
        name
    }

    /// Names handed out so far, in allocation order.
    pub fn created(&self) -> Vec<String> {
        self.created.lock().clone()
    }

    /// Number of names handed out so far.
    pub fn count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Removes every file this namer created that still exists on `device`.
    ///
    /// Files already removed by the caller are skipped silently. Reverse-run
    /// part files (`<name>.partN`) are removed too.
    pub fn cleanup(&self, device: &dyn StorageDevice) -> Result<()> {
        let created = self.created.lock().clone();
        for name in created {
            if device.exists(&name) {
                device.remove(&name)?;
            }
            // Reverse-run writers expand one logical name into part files.
            let mut part = 0;
            loop {
                let part_name = format!("{name}.part{part}");
                if device.exists(&part_name) {
                    device.remove(&part_name)?;
                    part += 1;
                } else {
                    break;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::model::ModelId;

    #[test]
    fn names_are_unique_and_ordered() {
        let namer = SpillNamer::new("sort1");
        let a = namer.next_name("run");
        let b = namer.next_name("run");
        let c = namer.next_name("merge");
        assert_ne!(a, b);
        assert!(a.starts_with("sort1.run."));
        assert!(c.starts_with("sort1.merge."));
        assert_eq!(namer.count(), 3);
        assert_eq!(namer.created(), vec![a, b, c]);
    }

    #[test]
    fn cleanup_removes_created_files_and_parts() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("job");
        let run = namer.next_name("run");
        let rev = namer.next_name("rev");
        device.create(&run).unwrap();
        device.create(&format!("{rev}.part0")).unwrap();
        device.create(&format!("{rev}.part1")).unwrap();
        device.create("unrelated").unwrap();

        namer.cleanup(&device).unwrap();
        assert!(!device.exists(&run));
        assert!(!device.exists(&format!("{rev}.part0")));
        assert!(!device.exists(&format!("{rev}.part1")));
        assert!(device.exists("unrelated"));
    }

    #[test]
    fn cleanup_tolerates_already_removed_files() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("job");
        let name = namer.next_name("run");
        device.create(&name).unwrap();
        device.remove(&name).unwrap();
        namer.cleanup(&device).unwrap();
    }

    #[test]
    fn namespaces_do_not_collide() {
        let a = SpillNamer::new("a");
        let b = SpillNamer::new("b");
        assert_ne!(a.next_name("run"), b.next_name("run"));
    }
}
