//! Error type shared by the storage substrate.

use std::fmt;
use std::io;

/// Convenient result alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O error from the real-file backend.
    Io(io::Error),
    /// The named file does not exist on the device.
    NotFound(String),
    /// A file with the given name already exists and `create` would clobber
    /// it.
    AlreadyExists(String),
    /// A page index beyond the end of the file was read.
    PageOutOfBounds {
        /// File the access targeted.
        file: String,
        /// Requested page index.
        page: u64,
        /// Number of pages the file actually has.
        pages: u64,
    },
    /// A buffer passed to a page read/write did not match the device page
    /// size.
    PageSizeMismatch {
        /// Size the caller supplied.
        got: usize,
        /// Page size of the device.
        expected: usize,
    },
    /// A file header was malformed or inconsistent with its contents.
    CorruptHeader(String),
    /// The record size does not divide the page payload area.
    BadRecordSize {
        /// Size of the record type.
        record: usize,
        /// Page size of the device.
        page: usize,
    },
    /// A device-model id that is not in the catalog.
    UnknownDeviceModel(String),
    /// A device-spec string that does not follow the
    /// `sim[:<model>[:<page_size>]]` / `real[:<path>[:<page_size>]]` /
    /// `striped:<n>:<spec>` / `striped:[<spec>,…]` grammar.
    InvalidDeviceSpec {
        /// The offending spec string.
        spec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A file-backed device was constructed over a directory another live
    /// device already owns; sharing a root would silently mix their files.
    DeviceRootBusy(std::path::PathBuf),
    /// A striped device was built from members that cannot stripe together
    /// (empty member list, or members disagreeing on the page size).
    BadStripe(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::NotFound(name) => write!(f, "file not found: {name}"),
            StorageError::AlreadyExists(name) => write!(f, "file already exists: {name}"),
            StorageError::PageOutOfBounds { file, page, pages } => write!(
                f,
                "page {page} out of bounds for file {file} with {pages} pages"
            ),
            StorageError::PageSizeMismatch { got, expected } => {
                write!(
                    f,
                    "buffer of {got} bytes does not match page size {expected}"
                )
            }
            StorageError::CorruptHeader(msg) => write!(f, "corrupt file header: {msg}"),
            StorageError::BadRecordSize { record, page } => write!(
                f,
                "record size {record} does not fit the page payload of {page} bytes"
            ),
            StorageError::UnknownDeviceModel(name) => write!(
                f,
                "unknown device model {name:?} (catalog: hdd-7200, sata-ssd, nvme, pmem)"
            ),
            StorageError::InvalidDeviceSpec { spec, reason } => {
                write!(f, "invalid device spec {spec:?}: {reason}")
            }
            StorageError::DeviceRootBusy(root) => write!(
                f,
                "device root {} is already owned by a live device",
                root.display()
            ),
            StorageError::BadStripe(reason) => write!(f, "cannot stripe devices: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::PageOutOfBounds {
            file: "run_3".into(),
            page: 12,
            pages: 4,
        };
        let text = e.to_string();
        assert!(text.contains("run_3"));
        assert!(text.contains("12"));
        assert!(text.contains('4'));
    }

    #[test]
    fn io_errors_convert() {
        let io_err = io::Error::other("boom");
        let err: StorageError = io_err.into();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
