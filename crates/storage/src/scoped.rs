//! Per-thread I/O attribution for shared devices.
//!
//! A parallel sort runs several workers against one [`StorageDevice`]. The
//! device's own [`IoStats`] keep the global truth, but each worker also
//! wants to know what *it* caused so a sharded run can report per-shard
//! phase costs that sum to the device totals. [`ScopedDevice`] wraps any
//! device and mirrors every access into a second, scope-local [`IoStats`]
//! while still forwarding it to the wrapped device (whose shared statistics
//! keep counting as before).
//!
//! Page and file counters of the local statistics always sum exactly to the
//! device-level deltas. Seeks are the one subtlety: the local statistics
//! track their own head position, so a scope's seek count models the thread
//! as if it had the disk to itself. The sum of the per-scope seek counts is
//! therefore a *lower bound* on the seeks the shared device observes when
//! threads interleave — callers that need cross-thread seek truth should
//! read the wrapped device's stats.

use crate::contention::IoClientGuard;
use crate::device::{PageFile, StorageDevice};
use crate::error::Result;
use crate::io_stats::{IoStats, IoStatsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A device wrapper that additionally records every access into a local
/// [`IoStats`], so one thread's share of a concurrent workload can be
/// attributed.
///
/// Clones share the same local statistics; create one `ScopedDevice` per
/// scope (worker thread, phase, …) to separate them.
#[derive(Clone)]
pub struct ScopedDevice<D> {
    inner: D,
    local: IoStats,
    /// File-id allocator for the local head model, distinct from the ids
    /// the inner device hands out.
    next_file_id: Arc<AtomicU64>,
}

impl<D: StorageDevice> ScopedDevice<D> {
    /// Wraps `inner`, starting with zeroed local statistics (the local disk
    /// model is copied from the inner device).
    pub fn new(inner: D) -> Self {
        let model = inner.io_stats().device_model();
        ScopedDevice {
            inner,
            local: IoStats::with_model(model),
            next_file_id: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Snapshot of the scope-local statistics only.
    pub fn local_stats(&self) -> IoStatsSnapshot {
        self.local.snapshot()
    }
}

struct ScopedPageFile {
    inner: Box<dyn PageFile>,
    local: IoStats,
    file_id: u64,
}

impl PageFile for ScopedPageFile {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_page(&mut self, index: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_page(index, buf)?;
        self.local.record_access(self.file_id, index, 1, false);
        Ok(())
    }

    fn write_page(&mut self, index: u64, data: &[u8]) -> Result<()> {
        self.inner.write_page(index, data)?;
        self.local.record_access(self.file_id, index, 1, true);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

impl<D: StorageDevice + Clone> StorageDevice for ScopedDevice<D> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn create(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let file = self.inner.create(name)?;
        self.local.record_create();
        Ok(Box::new(ScopedPageFile {
            inner: file,
            local: self.local.clone(),
            file_id: self.next_file_id.fetch_add(1, Ordering::Relaxed),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let file = self.inner.open(name)?;
        Ok(Box::new(ScopedPageFile {
            inner: file,
            local: self.local.clone(),
            file_id: self.next_file_id.fetch_add(1, Ordering::Relaxed),
        }))
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.inner.remove(name)?;
        self.local.record_remove();
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    /// The scope-local statistics (so `stats()` / `reset_stats()` act on the
    /// scope); use [`ScopedDevice::inner`] for the shared device statistics.
    fn io_stats(&self) -> &IoStats {
        &self.local
    }

    fn stripe_members(&self) -> usize {
        self.inner.stripe_members()
    }

    /// Re-scopes onto the inner device's shard view: the local statistics
    /// stay shared with `self` (like [`Clone`]) while the traffic routes to
    /// the shard's stripe member.
    fn shard_view(&self, index: usize) -> Self {
        ScopedDevice {
            inner: self.inner.shard_view(index),
            local: self.local.clone(),
            next_file_id: Arc::clone(&self.next_file_id),
        }
    }

    fn attach_io_client(&self) -> Option<IoClientGuard> {
        self.inner.attach_io_client()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::io_stats::IoStatsSnapshot;
    use crate::model::ModelId;

    #[test]
    fn scoped_accesses_count_locally_and_globally() {
        let shared = SimDevice::with_model(ModelId::Hdd7200);
        let scoped = ScopedDevice::new(shared.clone());
        let page = vec![3u8; scoped.page_size()];
        let mut f = scoped.create("a").unwrap();
        f.write_page(0, &page).unwrap();
        f.write_page(1, &page).unwrap();
        let mut buf = vec![0u8; scoped.page_size()];
        f.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, page);

        let local = scoped.local_stats();
        assert_eq!(local.counters.pages_written, 2);
        assert_eq!(local.counters.pages_read, 1);
        assert_eq!(local.counters.files_created, 1);
        // The shared device saw exactly the same traffic.
        assert_eq!(shared.stats().counters, local.counters);
    }

    #[test]
    fn two_scopes_sum_to_the_shared_totals() {
        let shared = SimDevice::with_model(ModelId::Hdd7200);
        let a = ScopedDevice::new(shared.clone());
        let b = ScopedDevice::new(shared.clone());
        let page = vec![0u8; shared.page_size()];
        let mut fa = a.create("a").unwrap();
        let mut fb = b.create("b").unwrap();
        for i in 0..4 {
            fa.write_page(i, &page).unwrap();
        }
        for i in 0..3 {
            fb.write_page(i, &page).unwrap();
        }
        b.remove("b").unwrap();
        let sum = a.local_stats().merged(&b.local_stats());
        let total = shared.stats();
        assert_eq!(sum.counters, total.counters);
        assert_eq!(
            IoStatsSnapshot::zero(total.model).merged(&total).counters,
            total.counters
        );
    }

    #[test]
    fn clones_share_the_scope() {
        let shared = SimDevice::with_model(ModelId::Hdd7200);
        let scoped = ScopedDevice::new(shared);
        let clone = scoped.clone();
        let page = vec![0u8; scoped.page_size()];
        clone.create("x").unwrap().write_page(0, &page).unwrap();
        assert_eq!(scoped.local_stats().counters.pages_written, 1);
    }

    #[test]
    fn local_seeks_model_a_private_head() {
        let shared = SimDevice::with_model(ModelId::Hdd7200);
        let scoped = ScopedDevice::new(shared.clone());
        let page = vec![0u8; scoped.page_size()];
        let mut f = scoped.create("f").unwrap();
        for i in 0..4 {
            f.write_page(i, &page).unwrap();
        }
        let mut buf = vec![0u8; scoped.page_size()];
        for i in 0..4 {
            f.read_page(i, &mut buf).unwrap();
        }
        // Sequential reads on a private head: the initial positioning only.
        assert_eq!(scoped.local_stats().counters.seeks, 1);
    }
}
