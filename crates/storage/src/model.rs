//! The device-model catalog: named latency models behind one trait.
//!
//! The paper's conclusions — run-length wins, seek-dominated merge costs,
//! the 2WRS victim-buffer payoff — were measured against one spinning SATA
//! disk. [`DeviceModel`] extracts that latency math out of the device so a
//! sort can be re-costed under any storage technology without re-running
//! it: the same page/seek *counts* are produced by every catalog model (the
//! seek-detection logic is shared), only the simulated time they imply
//! differs. `hdd-7200` reproduces the historical default bit for bit;
//! `nvme` and `pmem` answer the question the paper could not: what remains
//! of the seek-dominated argument when seeks are nearly free?
//!
//! Models are obtained from the catalog by [`ModelId`] (parsed from ids like
//! `"nvme"`, used in [`DeviceSpec`](crate::spec::DeviceSpec) strings and
//! bench-matrix scenario ids) or built ad hoc with [`custom`].

use crate::error::{Result, StorageError};
use crate::io_stats::DiskModel;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// What one page access costs, as decided by a [`DeviceModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCost {
    /// Whether the access repositioned the head (counted as a seek).
    pub seek: bool,
    /// Simulated cost of the access, in microseconds.
    pub micros: f64,
}

/// A storage-device latency model: per-operation cost from the page index,
/// the file accessed, and the access history (the head position left behind
/// by the previous read).
///
/// Implementations must keep the *counting* semantics stable — which
/// accesses report `seek: true` — if their counters are to be comparable
/// with the catalog models; the catalog itself shares one seek-detection
/// rule (reads seek when the head is elsewhere, writes are absorbed by the
/// OS write-behind cache, paper Appendix A.1) and differs only in the
/// microseconds each operation is charged.
pub trait DeviceModel: fmt::Debug + Send + Sync {
    /// The model's catalog id (e.g. `"hdd-7200"`), used in device-spec
    /// strings, report headers and bench scenario ids.
    fn name(&self) -> &str;

    /// Cost of accessing `pages` consecutive pages of file `file_id`
    /// starting at `page`, given the read head position `head` left by the
    /// previous access (`None` right after a reset).
    fn access_cost(
        &self,
        head: Option<(u64, u64)>,
        file_id: u64,
        page: u64,
        pages: u64,
        write: bool,
    ) -> AccessCost;

    /// The model's parameter view, carried in
    /// [`IoStatsSnapshot`](crate::io_stats::IoStatsSnapshot) headers so
    /// reports can print what the numbers mean.
    fn params(&self) -> DiskModel;
}

/// A [`DeviceModel`] defined entirely by [`DiskModel`] parameters, using
/// the catalog's shared seek-detection rule. Every named catalog entry is
/// one of these; [`custom`] builds ad-hoc instances.
#[derive(Debug, Clone)]
pub struct ParamModel {
    name: String,
    params: DiskModel,
}

impl DeviceModel for ParamModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn access_cost(
        &self,
        head: Option<(u64, u64)>,
        file_id: u64,
        page: u64,
        pages: u64,
        write: bool,
    ) -> AccessCost {
        let transfer = pages as f64 * self.params.transfer_page_us;
        if write {
            // Writes pay transfer time but never seeks: the OS write-behind
            // cache absorbs and reorders them (Appendix A.1).
            return AccessCost {
                seek: false,
                micros: transfer,
            };
        }
        let sequential = matches!(head, Some((f, p)) if f == file_id && p == page);
        if sequential {
            AccessCost {
                seek: false,
                micros: transfer,
            }
        } else {
            AccessCost {
                seek: true,
                micros: transfer + self.params.seek_us + self.params.rotational_us,
            }
        }
    }

    fn params(&self) -> DiskModel {
        self.params
    }
}

/// Builds an ad-hoc [`DeviceModel`] from explicit parameters. The model
/// uses the same seek-detection rule as the catalog, so its counters stay
/// comparable; only the charged microseconds differ.
pub fn custom(name: impl Into<String>, params: DiskModel) -> Arc<dyn DeviceModel> {
    Arc::new(ParamModel {
        name: name.into(),
        params,
    })
}

/// The named device-model catalog.
///
/// | id         | seek µs | rotational µs | transfer µs/page | in the spirit of |
/// |------------|--------:|--------------:|-----------------:|------------------|
/// | `hdd-7200` |   8 000 |         4 200 |               50 | the paper's 7 200 rpm SATA disk (~80 MB/s) |
/// | `sata-ssd` |      90 |             0 |                8 | a SATA 3 SSD (~500 MB/s, ~90 µs random read) |
/// | `nvme`     |      10 |             0 |             1.25 | a PCIe 4 NVMe drive (~3.2 GB/s) |
/// | `pmem`     |     0.3 |             0 |             0.05 | byte-addressable persistent memory |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelId {
    /// The paper's 7 200 rpm spinning disk — the historical default model,
    /// parameter-for-parameter identical to `DiskModel::default()`.
    #[default]
    Hdd7200,
    /// A SATA 3 solid-state drive: seeks two orders of magnitude cheaper.
    SataSsd,
    /// An NVMe flash drive: seeks nearly free, transfers 40× faster.
    Nvme,
    /// Persistent memory: both terms effectively vanish.
    Pmem,
}

impl ModelId {
    /// Every catalog model, in decreasing seek-cost order.
    pub fn all() -> [ModelId; 4] {
        [
            ModelId::Hdd7200,
            ModelId::SataSsd,
            ModelId::Nvme,
            ModelId::Pmem,
        ]
    }

    /// The catalog id (`"hdd-7200"`, `"sata-ssd"`, `"nvme"`, `"pmem"`).
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::Hdd7200 => "hdd-7200",
            ModelId::SataSsd => "sata-ssd",
            ModelId::Nvme => "nvme",
            ModelId::Pmem => "pmem",
        }
    }

    /// The latency parameters of this catalog entry.
    pub fn params(&self) -> DiskModel {
        match self {
            ModelId::Hdd7200 => DiskModel {
                seek_us: 8_000.0,
                rotational_us: 4_200.0,
                transfer_page_us: 50.0,
            },
            ModelId::SataSsd => DiskModel {
                seek_us: 90.0,
                rotational_us: 0.0,
                transfer_page_us: 8.0,
            },
            ModelId::Nvme => DiskModel {
                seek_us: 10.0,
                rotational_us: 0.0,
                transfer_page_us: 1.25,
            },
            ModelId::Pmem => DiskModel {
                seek_us: 0.3,
                rotational_us: 0.0,
                transfer_page_us: 0.05,
            },
        }
    }

    /// Instantiates the catalog model.
    pub fn model(&self) -> Arc<dyn DeviceModel> {
        custom(self.name(), self.params())
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ModelId {
    type Err = StorageError;

    fn from_str(s: &str) -> Result<ModelId> {
        ModelId::all()
            .into_iter()
            .find(|id| id.name() == s)
            .ok_or_else(|| StorageError::UnknownDeviceModel(s.to_string()))
    }
}

impl From<ModelId> for Arc<dyn DeviceModel> {
    fn from(id: ModelId) -> Self {
        id.model()
    }
}

/// An unnamed parameter set becomes a `"custom"` model.
impl From<DiskModel> for Arc<dyn DeviceModel> {
    fn from(params: DiskModel) -> Self {
        custom("custom", params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_7200_matches_the_historical_default_parameters() {
        assert_eq!(ModelId::Hdd7200.params(), DiskModel::default());
        assert_eq!(ModelId::default(), ModelId::Hdd7200);
    }

    #[test]
    fn catalog_ids_round_trip_through_from_str() {
        for id in ModelId::all() {
            assert_eq!(id.name().parse::<ModelId>().unwrap(), id);
            assert_eq!(id.model().name(), id.name());
        }
        assert!(matches!(
            "floppy".parse::<ModelId>(),
            Err(StorageError::UnknownDeviceModel(_))
        ));
    }

    #[test]
    fn seek_detection_is_shared_across_the_catalog() {
        // Same access sequence → same seek flags on every model; only the
        // charged microseconds differ.
        let sequence = [
            (None, 1, 0, 1, false),         // cold read: seek
            (Some((1, 1)), 1, 1, 1, false), // sequential read: no seek
            (Some((1, 2)), 2, 0, 1, false), // file switch: seek
            (Some((2, 1)), 2, 5, 1, true),  // write: never a seek
            (Some((2, 1)), 2, 9, 2, false), // jump within file: seek
        ];
        for id in ModelId::all() {
            let model = id.model();
            let flags: Vec<bool> = sequence
                .iter()
                .map(|&(head, f, p, n, w)| model.access_cost(head, f, p, n, w).seek)
                .collect();
            assert_eq!(flags, [true, false, true, false, true], "{id}");
        }
    }

    #[test]
    fn models_order_by_seek_cost() {
        let cost = |id: ModelId| id.model().access_cost(None, 1, 0, 1, false).micros;
        assert!(cost(ModelId::Hdd7200) > cost(ModelId::SataSsd));
        assert!(cost(ModelId::SataSsd) > cost(ModelId::Nvme));
        assert!(cost(ModelId::Nvme) > cost(ModelId::Pmem));
    }

    #[test]
    fn custom_models_name_themselves() {
        let model = custom("lab-disk", DiskModel::seekless());
        assert_eq!(model.name(), "lab-disk");
        let cost = model.access_cost(None, 1, 0, 2, false);
        // Seekless: the seek is still *counted* (head did move) but costs
        // only the transfer.
        assert!(cost.seek);
        assert!((cost.micros - 100.0).abs() < 1e-9);
    }
}
