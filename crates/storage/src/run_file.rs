//! Forward-sequential run files.
//!
//! A *run* is a sorted sequence of records produced during run generation
//! and consumed (strictly forward) by the merge phase (§2.1). A run file
//! stores a small header page followed by data pages packed with fixed-size
//! records; the writer buffers one page at a time so every record write
//! costs amortised `O(1)` and I/O happens in whole pages, as on the paper's
//! direct-I/O setup.
//!
//! Layout:
//!
//! ```text
//! page 0      : header {magic, record size, record count}
//! page 1..N   : records, densely packed, last page possibly partial
//! ```

use crate::device::{PageFile, StorageDevice};
use crate::error::{Result, StorageError};
use crate::page::PageBuf;
use crate::record::FixedSizeRecord;

const MAGIC: u32 = 0x5457_5253; // "TWRS"

/// Header stored in page 0 of every run file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunHeader {
    record_size: u32,
    record_count: u64,
}

impl RunHeader {
    fn write(self, page: &mut PageBuf) {
        let bytes = page.as_bytes_mut();
        bytes[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        bytes[4..8].copy_from_slice(&self.record_size.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.record_count.to_le_bytes());
    }

    fn read(page: &PageBuf) -> Result<Self> {
        let bytes = page.as_bytes();
        if bytes.len() < 16 {
            return Err(StorageError::CorruptHeader("header page too small".into()));
        }
        let magic = crate::bytes::u32_le_at(bytes, 0);
        if magic != MAGIC {
            return Err(StorageError::CorruptHeader(format!(
                "bad magic {magic:#x}, expected {MAGIC:#x}"
            )));
        }
        Ok(RunHeader {
            record_size: crate::bytes::u32_le_at(bytes, 4),
            record_count: crate::bytes::u64_le_at(bytes, 8),
        })
    }
}

/// Writes a run of fixed-size records to a device file, page by page.
pub struct RunWriter<R: FixedSizeRecord> {
    file: Box<dyn PageFile>,
    page: PageBuf,
    slots_per_page: usize,
    slot: usize,
    next_page: u64,
    records: u64,
    finished: bool,
    _marker: std::marker::PhantomData<R>,
}

impl<R: FixedSizeRecord> RunWriter<R> {
    /// Creates the named file on `device` and prepares to write records into
    /// it.
    pub fn create(device: &dyn StorageDevice, name: &str) -> Result<Self> {
        let page_size = device.page_size();
        let slots_per_page = page_size / R::SIZE;
        if slots_per_page == 0 {
            return Err(StorageError::BadRecordSize {
                record: R::SIZE,
                page: page_size,
            });
        }
        let mut file = device.create(name)?;
        // Reserve the header page; it is rewritten with the real record
        // count in `finish`.
        let header_page = PageBuf::new(page_size);
        file.write_page(0, header_page.as_bytes())?;
        Ok(RunWriter {
            file,
            page: PageBuf::new(page_size),
            slots_per_page,
            slot: 0,
            next_page: 1,
            records: 0,
            finished: false,
            _marker: std::marker::PhantomData,
        })
    }

    /// Appends one record to the run.
    pub fn push(&mut self, record: &R) -> Result<()> {
        self.page.put(self.slot, record)?;
        self.slot += 1;
        self.records += 1;
        if self.slot == self.slots_per_page {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Number of records written so far.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// `true` when no record has been written yet.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    fn flush_page(&mut self) -> Result<()> {
        if self.slot == 0 {
            return Ok(());
        }
        self.file.write_page(self.next_page, self.page.as_bytes())?;
        self.next_page += 1;
        self.slot = 0;
        self.page.clear();
        Ok(())
    }

    /// Flushes the partial page and writes the final header. Must be called
    /// exactly once; dropping an unfinished writer loses the trailing
    /// records and leaves a zero-count header.
    pub fn finish(mut self) -> Result<u64> {
        self.flush_page()?;
        let mut header_page = PageBuf::new(self.file.page_size());
        RunHeader {
            record_size: R::SIZE as u32,
            record_count: self.records,
        }
        .write(&mut header_page);
        self.file.write_page(0, header_page.as_bytes())?;
        self.file.flush()?;
        self.finished = true;
        Ok(self.records)
    }
}

/// Reads a run file forward, record by record.
pub struct RunReader<R: FixedSizeRecord> {
    file: Box<dyn PageFile>,
    page: PageBuf,
    slots_per_page: usize,
    slot: usize,
    current_page: u64,
    remaining: u64,
    total: u64,
    _marker: std::marker::PhantomData<R>,
}

impl<R: FixedSizeRecord> RunReader<R> {
    /// Opens the named run file on `device`.
    pub fn open(device: &dyn StorageDevice, name: &str) -> Result<Self> {
        let page_size = device.page_size();
        let mut file = device.open(name)?;
        let mut header_page = PageBuf::new(page_size);
        file.read_page(0, header_page.as_bytes_mut())?;
        let header = RunHeader::read(&header_page)?;
        if header.record_size as usize != R::SIZE {
            return Err(StorageError::CorruptHeader(format!(
                "record size mismatch: file has {}, caller expects {}",
                header.record_size,
                R::SIZE
            )));
        }
        Ok(RunReader {
            file,
            page: PageBuf::new(page_size),
            slots_per_page: page_size / R::SIZE,
            slot: 0,
            current_page: 0,
            remaining: header.record_count,
            total: header.record_count,
            _marker: std::marker::PhantomData,
        })
    }

    /// Total number of records in the run.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of records not yet returned by [`RunReader::next_record`].
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads the next record, or `None` at the end of the run.
    pub fn next_record(&mut self) -> Result<Option<R>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.slot == 0 || self.slot == self.slots_per_page {
            self.current_page += 1;
            self.file
                .read_page(self.current_page, self.page.as_bytes_mut())?;
            self.slot = 0;
        }
        let record = self.page.get::<R>(self.slot)?;
        self.slot += 1;
        self.remaining -= 1;
        Ok(Some(record))
    }

    /// Reads the whole remaining run into a vector.
    pub fn read_all(&mut self) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(self.remaining as usize);
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl<R: FixedSizeRecord> Iterator for RunReader<R> {
    type Item = Result<R>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::io_stats::DiskModel;
    use crate::model::ModelId;

    fn write_run(device: &dyn StorageDevice, name: &str, values: &[u64]) {
        let mut writer = RunWriter::<u64>::create(device, name).unwrap();
        for v in values {
            writer.push(v).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), values.len() as u64);
    }

    #[test]
    fn round_trip_exact_page_multiple() {
        let device = SimDevice::custom(64, DiskModel::default());
        // 8 records per page; write exactly 16.
        let values: Vec<u64> = (0..16).collect();
        write_run(&device, "run", &values);
        let mut reader = RunReader::<u64>::open(&device, "run").unwrap();
        assert_eq!(reader.len(), 16);
        assert_eq!(reader.read_all().unwrap(), values);
    }

    #[test]
    fn round_trip_partial_last_page() {
        let device = SimDevice::custom(64, DiskModel::default());
        let values: Vec<u64> = (0..13).map(|i| i * 3).collect();
        write_run(&device, "run", &values);
        let mut reader = RunReader::<u64>::open(&device, "run").unwrap();
        assert_eq!(reader.read_all().unwrap(), values);
        assert_eq!(reader.remaining(), 0);
        assert_eq!(reader.next_record().unwrap(), None);
    }

    #[test]
    fn empty_run() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        write_run(&device, "empty", &[]);
        let mut reader = RunReader::<u64>::open(&device, "empty").unwrap();
        assert!(reader.is_empty());
        assert_eq!(reader.next_record().unwrap(), None);
    }

    #[test]
    fn iterator_interface() {
        let device = SimDevice::custom(64, DiskModel::default());
        let values: Vec<u64> = (0..20).collect();
        write_run(&device, "run", &values);
        let reader = RunReader::<u64>::open(&device, "run").unwrap();
        let collected: Vec<u64> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(collected, values);
    }

    #[test]
    fn record_size_mismatch_is_detected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        write_run(&device, "run", &[1, 2, 3]);
        let err = RunReader::<u32>::open(&device, "run");
        assert!(matches!(err, Err(StorageError::CorruptHeader(_))));
    }

    #[test]
    fn corrupt_magic_is_detected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut file = device.create("bogus").unwrap();
        let junk = vec![0xAB; device.page_size()];
        file.write_page(0, &junk).unwrap();
        drop(file);
        assert!(matches!(
            RunReader::<u64>::open(&device, "bogus"),
            Err(StorageError::CorruptHeader(_))
        ));
    }

    #[test]
    fn writer_reports_length() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut writer = RunWriter::<u64>::create(&device, "r").unwrap();
        assert!(writer.is_empty());
        writer.push(&5).unwrap();
        writer.push(&6).unwrap();
        assert_eq!(writer.len(), 2);
        writer.finish().unwrap();
    }

    #[test]
    fn sequential_write_read_costs_one_seek_each() {
        let device = SimDevice::custom(64, DiskModel::default());
        let values: Vec<u64> = (0..64).collect();
        write_run(&device, "run", &values);
        device.reset_stats();
        let mut reader = RunReader::<u64>::open(&device, "run").unwrap();
        reader.read_all().unwrap();
        let snap = device.stats();
        // Header + data pages are read strictly forward: a single seek.
        assert_eq!(snap.counters.seeks, 1);
    }
}
