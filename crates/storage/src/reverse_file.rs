//! The Appendix A file format for streams of *decreasing* records.
//!
//! 2WRS produces two streams per run whose records arrive in decreasing
//! order (streams 2 and 4). Hard disks read forward much faster than
//! backward, so the paper stores these streams in fixed-size files of `k`
//! pages that are **written back to front**: the first record lands in the
//! last slot of the last page and writing proceeds toward the beginning.
//! Reading the files forward afterwards yields the records in ascending
//! order, exactly what the merge phase needs, at the cost of only one extra
//! header page per file.
//!
//! Layout of each part file (`<name>.partN`):
//!
//! ```text
//! page 0        : header {magic, record size, pages per file,
//!                         start page, start slot, record count}
//! page 1..k-1   : records; data occupies [start page, k) and within the
//!                 start page the slots [start slot, slots per page)
//! ```
//!
//! Part 0 is created first and therefore holds the *largest* records; a
//! reader that wants ascending order visits the parts from the most recent
//! one down to part 0 (see [`ReverseRunReader`]).

use crate::device::{PageFile, StorageDevice};
use crate::error::{Result, StorageError};
use crate::page::PageBuf;
use crate::record::FixedSizeRecord;

const MAGIC: u32 = 0x5257_5253; // "RWRS"

/// Default number of pages per part file. The paper uses k = 1000
/// (≈ 40 MB files); the default here is smaller so laptop-scale experiments
/// create a handful of parts.
pub const DEFAULT_PAGES_PER_FILE: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReverseHeader {
    record_size: u32,
    pages_per_file: u64,
    start_page: u64,
    start_slot: u32,
    record_count: u64,
}

impl ReverseHeader {
    fn write(self, page: &mut PageBuf) {
        let bytes = page.as_bytes_mut();
        bytes[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        bytes[4..8].copy_from_slice(&self.record_size.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.pages_per_file.to_le_bytes());
        bytes[16..24].copy_from_slice(&self.start_page.to_le_bytes());
        bytes[24..28].copy_from_slice(&self.start_slot.to_le_bytes());
        bytes[28..36].copy_from_slice(&self.record_count.to_le_bytes());
    }

    fn read(page: &PageBuf) -> Result<Self> {
        let bytes = page.as_bytes();
        if bytes.len() < 36 {
            return Err(StorageError::CorruptHeader(
                "reverse header page too small".into(),
            ));
        }
        let magic = crate::bytes::u32_le_at(bytes, 0);
        if magic != MAGIC {
            return Err(StorageError::CorruptHeader(format!(
                "bad reverse-file magic {magic:#x}"
            )));
        }
        Ok(ReverseHeader {
            record_size: crate::bytes::u32_le_at(bytes, 4),
            pages_per_file: crate::bytes::u64_le_at(bytes, 8),
            start_page: crate::bytes::u64_le_at(bytes, 16),
            start_slot: crate::bytes::u32_le_at(bytes, 24),
            record_count: crate::bytes::u64_le_at(bytes, 28),
        })
    }
}

fn no_open_part() -> StorageError {
    StorageError::Io(std::io::Error::other(
        "reverse writer has no open part file",
    ))
}

fn part_name(base: &str, index: u64) -> String {
    format!("{base}.part{index}")
}

/// Writes a stream of records arriving in decreasing order so that it can be
/// read back in ascending order with forward I/O only.
pub struct ReverseRunWriter<R: FixedSizeRecord> {
    device: Box<dyn CloneableDevice>,
    base: String,
    pages_per_file: u64,
    slots_per_page: usize,
    page_size: usize,

    file: Option<Box<dyn PageFile>>,
    file_index: u64,
    next_page: u64,
    next_slot: usize,
    records_in_file: u64,
    total_records: u64,
    page: PageBuf,
    _marker: std::marker::PhantomData<R>,
}

/// Object-safe helper so the writer can create part files on demand without
/// holding a generic device type.
trait CloneableDevice: Send {
    fn create(&self, name: &str) -> Result<Box<dyn PageFile>>;
}

struct DeviceRef<D: StorageDevice + Clone>(D);

impl<D: StorageDevice + Clone> CloneableDevice for DeviceRef<D> {
    fn create(&self, name: &str) -> Result<Box<dyn PageFile>> {
        self.0.create(name)
    }
}

impl<R: FixedSizeRecord> ReverseRunWriter<R> {
    /// Starts a reverse-ordered run under `base` on `device`, using
    /// [`DEFAULT_PAGES_PER_FILE`] pages per part file.
    pub fn create<D: StorageDevice + Clone + 'static>(device: &D, base: &str) -> Result<Self> {
        Self::with_pages_per_file(device, base, DEFAULT_PAGES_PER_FILE)
    }

    /// Starts a reverse-ordered run with an explicit part-file size
    /// (the paper's `k`, Appendix A.2). `pages_per_file` must be at least 2
    /// (one header page plus one data page).
    pub fn with_pages_per_file<D: StorageDevice + Clone + 'static>(
        device: &D,
        base: &str,
        pages_per_file: u64,
    ) -> Result<Self> {
        let page_size = device.page_size();
        let slots_per_page = page_size / R::SIZE;
        if slots_per_page == 0 {
            return Err(StorageError::BadRecordSize {
                record: R::SIZE,
                page: page_size,
            });
        }
        let pages_per_file = pages_per_file.max(2);
        Ok(ReverseRunWriter {
            device: Box::new(DeviceRef(device.clone())),
            base: base.to_string(),
            pages_per_file,
            slots_per_page,
            page_size,
            file: None,
            file_index: 0,
            next_page: pages_per_file - 1,
            next_slot: slots_per_page - 1,
            records_in_file: 0,
            total_records: 0,
            page: PageBuf::new(page_size),
            _marker: std::marker::PhantomData,
        })
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> u64 {
        self.total_records
    }

    /// `true` when no record has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.total_records == 0
    }

    /// Appends the next (smaller or equal) record of the decreasing stream.
    pub fn push(&mut self, record: &R) -> Result<()> {
        self.ensure_file()?;
        self.page.put(self.next_slot, record)?;
        self.records_in_file += 1;
        self.total_records += 1;
        if self.next_slot == 0 {
            // Page is full: store it and move one page toward the header.
            self.write_current_page()?;
            self.page.clear();
            self.next_slot = self.slots_per_page - 1;
            if self.next_page == 1 {
                self.finalize_current_file(1, 0)?;
            } else {
                self.next_page -= 1;
            }
        } else {
            self.next_slot -= 1;
        }
        Ok(())
    }

    /// Flushes the partially filled page (if any), writes the last part's
    /// header and returns the total number of records written.
    pub fn finish(mut self) -> Result<u64> {
        if self.file.is_none() {
            // No records at all: still create part 0 with an empty header so
            // a reader can open the stream.
            self.ensure_file()?;
        }
        let has_partial = self.next_slot < self.slots_per_page - 1;
        if has_partial {
            self.write_current_page()?;
            let start_page = self.next_page;
            let start_slot = (self.next_slot + 1) as u32;
            self.finalize_current_file(start_page, start_slot)?;
        } else if self.file.is_some() {
            // The current file holds only complete pages (possibly zero).
            let start_page = self.next_page + 1;
            self.finalize_current_file(start_page, 0)?;
        }
        Ok(self.total_records)
    }

    fn ensure_file(&mut self) -> Result<()> {
        if self.file.is_some() {
            return Ok(());
        }
        let name = part_name(&self.base, self.file_index);
        // The file has a fixed logical size of k pages (Appendix A.2) but is
        // written back to front; the device's sparse-write semantics create
        // the untouched leading pages as zero-filled holes, so no physical
        // pre-allocation pass is needed.
        let file = self.device.create(&name)?;
        self.file = Some(file);
        self.next_page = self.pages_per_file - 1;
        self.next_slot = self.slots_per_page - 1;
        self.records_in_file = 0;
        Ok(())
    }

    fn write_current_page(&mut self) -> Result<()> {
        let file = self.file.as_mut().ok_or_else(no_open_part)?;
        file.write_page(self.next_page, self.page.as_bytes())?;
        Ok(())
    }

    fn finalize_current_file(&mut self, start_page: u64, start_slot: u32) -> Result<()> {
        let mut header_page = PageBuf::new(self.page_size);
        ReverseHeader {
            record_size: R::SIZE as u32,
            pages_per_file: self.pages_per_file,
            start_page,
            start_slot,
            record_count: self.records_in_file,
        }
        .write(&mut header_page);
        let file = self.file.as_mut().ok_or_else(no_open_part)?;
        file.write_page(0, header_page.as_bytes())?;
        file.flush()?;
        self.file = None;
        self.file_index += 1;
        self.records_in_file = 0;
        Ok(())
    }
}

/// Reads a reverse-ordered run back in ascending order using only forward
/// page reads.
pub struct ReverseRunReader<R: FixedSizeRecord> {
    parts: Vec<PartPlan>,
    device_files: Vec<Box<dyn PageFile>>,
    current_part: usize,
    page: PageBuf,
    current_page: u64,
    current_slot: usize,
    remaining_in_part: u64,
    total: u64,
    started: bool,
    slots_per_page: usize,
    _marker: std::marker::PhantomData<R>,
}

#[derive(Debug, Clone, Copy)]
struct PartPlan {
    start_page: u64,
    start_slot: usize,
    record_count: u64,
}

impl<R: FixedSizeRecord> ReverseRunReader<R> {
    /// Opens every part of the reverse run stored under `base`.
    pub fn open(device: &dyn StorageDevice, base: &str) -> Result<Self> {
        let page_size = device.page_size();
        let slots_per_page = page_size / R::SIZE;
        // Discover parts by probing names until one is missing.
        let mut index = 0;
        let mut handles = Vec::new();
        while device.exists(&part_name(base, index)) {
            handles.push(device.open(&part_name(base, index))?);
            index += 1;
        }
        if handles.is_empty() {
            return Err(StorageError::NotFound(part_name(base, 0)));
        }
        // Ascending order starts at the most recently written part.
        handles.reverse();
        let mut parts = Vec::with_capacity(handles.len());
        let mut total = 0;
        let mut header_page = PageBuf::new(page_size);
        for file in handles.iter_mut() {
            file.read_page(0, header_page.as_bytes_mut())?;
            let header = ReverseHeader::read(&header_page)?;
            if header.record_size as usize != R::SIZE {
                return Err(StorageError::CorruptHeader(format!(
                    "record size mismatch: file has {}, caller expects {}",
                    header.record_size,
                    R::SIZE
                )));
            }
            total += header.record_count;
            parts.push(PartPlan {
                start_page: header.start_page,
                start_slot: header.start_slot as usize,
                record_count: header.record_count,
            });
        }
        Ok(ReverseRunReader {
            parts,
            device_files: handles,
            current_part: 0,
            page: PageBuf::new(page_size),
            current_page: 0,
            current_slot: 0,
            remaining_in_part: 0,
            total,
            started: false,
            slots_per_page,
            _marker: std::marker::PhantomData,
        })
    }

    /// Total number of records across every part.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Reads the next record in ascending order, or `None` at the end.
    pub fn next_record(&mut self) -> Result<Option<R>> {
        loop {
            if !self.started {
                if self.current_part >= self.parts.len() {
                    return Ok(None);
                }
                let plan = self.parts[self.current_part];
                self.remaining_in_part = plan.record_count;
                self.current_page = plan.start_page;
                self.current_slot = plan.start_slot;
                self.started = true;
                if self.remaining_in_part > 0 {
                    let file = &mut self.device_files[self.current_part];
                    file.read_page(self.current_page, self.page.as_bytes_mut())?;
                }
            }
            if self.remaining_in_part == 0 {
                self.current_part += 1;
                self.started = false;
                continue;
            }
            if self.current_slot == self.slots_per_page {
                self.current_page += 1;
                self.current_slot = 0;
                let file = &mut self.device_files[self.current_part];
                file.read_page(self.current_page, self.page.as_bytes_mut())?;
            }
            let record = self.page.get::<R>(self.current_slot)?;
            self.current_slot += 1;
            self.remaining_in_part -= 1;
            return Ok(Some(record));
        }
    }

    /// Reads the whole remaining stream into a vector (ascending order).
    pub fn read_all(&mut self) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(self.total as usize);
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl<R: FixedSizeRecord> Iterator for ReverseRunReader<R> {
    type Item = Result<R>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::io_stats::DiskModel;
    use crate::model::ModelId;

    fn round_trip(page_size: usize, pages_per_file: u64, n: u64) {
        let device = SimDevice::custom(page_size, DiskModel::default());
        let mut writer =
            ReverseRunWriter::<u64>::with_pages_per_file(&device, "rev", pages_per_file).unwrap();
        // Push a strictly decreasing stream n-1, n-2, ..., 0.
        for v in (0..n).rev() {
            writer.push(&v).unwrap();
        }
        assert_eq!(writer.finish().unwrap(), n);
        let mut reader = ReverseRunReader::<u64>::open(&device, "rev").unwrap();
        assert_eq!(reader.len(), n);
        let all = reader.read_all().unwrap();
        let expected: Vec<u64> = (0..n).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn single_partial_page() {
        round_trip(64, 4, 3);
    }

    #[test]
    fn exactly_one_full_file() {
        // 64-byte pages, 8 slots, 4 pages per file => 3 data pages => 24 records.
        round_trip(64, 4, 24);
    }

    #[test]
    fn several_files_with_partial_tail() {
        round_trip(64, 4, 100);
    }

    #[test]
    fn boundary_exactly_two_files() {
        round_trip(64, 4, 48);
    }

    #[test]
    fn large_stream_default_geometry() {
        round_trip(256, 8, 5_000);
    }

    #[test]
    fn empty_stream_round_trips() {
        let device = SimDevice::custom(64, DiskModel::default());
        let writer = ReverseRunWriter::<u64>::with_pages_per_file(&device, "rev", 4).unwrap();
        assert!(writer.is_empty());
        assert_eq!(writer.finish().unwrap(), 0);
        let mut reader = ReverseRunReader::<u64>::open(&device, "rev").unwrap();
        assert!(reader.is_empty());
        assert_eq!(reader.next_record().unwrap(), None);
    }

    #[test]
    fn missing_stream_reports_not_found() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        assert!(matches!(
            ReverseRunReader::<u64>::open(&device, "nothing"),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn ties_are_preserved() {
        let device = SimDevice::custom(64, DiskModel::default());
        let mut writer = ReverseRunWriter::<u64>::with_pages_per_file(&device, "rev", 4).unwrap();
        let stream = [9u64, 9, 7, 7, 7, 3, 1, 1];
        for v in stream {
            writer.push(&v).unwrap();
        }
        writer.finish().unwrap();
        let mut reader = ReverseRunReader::<u64>::open(&device, "rev").unwrap();
        let mut expected = stream.to_vec();
        expected.reverse();
        assert_eq!(reader.read_all().unwrap(), expected);
    }

    #[test]
    fn reading_is_forward_only() {
        let device = SimDevice::custom(64, DiskModel::default());
        let mut writer = ReverseRunWriter::<u64>::with_pages_per_file(&device, "rev", 4).unwrap();
        for v in (0..60u64).rev() {
            writer.push(&v).unwrap();
        }
        writer.finish().unwrap();
        device.reset_stats();
        let mut reader = ReverseRunReader::<u64>::open(&device, "rev").unwrap();
        reader.read_all().unwrap();
        let snap = device.stats();
        // One seek per part file (headers are read at open, data follows
        // forward); never more than parts * 2.
        let parts = device.list().len() as u64;
        assert!(
            snap.counters.seeks <= parts * 2,
            "seeks = {}",
            snap.counters.seeks
        );
    }
}
