//! Fixed-size pages and helpers to pack records into them.
//!
//! Appendix A of the paper explains that the unit of transfer between the
//! sorting algorithms and the disk is the file-system page (4 KiB for the
//! ext3 system used in the original experiments); every read and write moves
//! whole pages. [`PageBuf`] is that unit: a byte buffer of the device page
//! size with a small record-oriented API on top.

use crate::error::{Result, StorageError};
use crate::record::FixedSizeRecord;

/// Default page size in bytes (the ext3 default the paper mentions).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A single in-memory page.
///
/// A page holds `page_size / R::SIZE` records of a fixed-size record type;
/// the trailing bytes that do not fit a whole record are left as padding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageBuf {
    data: Vec<u8>,
}

impl PageBuf {
    /// Creates a zero-filled page of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        PageBuf {
            data: vec![0; page_size],
        }
    }

    /// Wraps an existing byte buffer as a page.
    pub fn from_vec(data: Vec<u8>) -> Self {
        PageBuf { data }
    }

    /// Size of the page in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Number of records of type `R` a page of this size can hold.
    pub fn capacity_for<R: FixedSizeRecord>(&self) -> usize {
        self.data.len() / R::SIZE
    }

    /// Read-only view of the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the page, returning the raw bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Writes record `record` into slot `slot` of the page.
    pub fn put<R: FixedSizeRecord>(&mut self, slot: usize, record: &R) -> Result<()> {
        let start = slot * R::SIZE;
        let end = start + R::SIZE;
        if end > self.data.len() {
            return Err(StorageError::BadRecordSize {
                record: R::SIZE,
                page: self.data.len(),
            });
        }
        record.write_to(&mut self.data[start..end]);
        Ok(())
    }

    /// Reads the record stored in slot `slot`.
    pub fn get<R: FixedSizeRecord>(&self, slot: usize) -> Result<R> {
        let start = slot * R::SIZE;
        let end = start + R::SIZE;
        if end > self.data.len() {
            return Err(StorageError::BadRecordSize {
                record: R::SIZE,
                page: self.data.len(),
            });
        }
        Ok(R::read_from(&self.data[start..end]))
    }

    /// Zeroes the page contents.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

/// Number of records of size `record_size` that fit a page of
/// `page_size` bytes.
pub fn records_per_page(page_size: usize, record_size: usize) -> usize {
    page_size / record_size
}

/// Number of pages needed to store `records` records of size `record_size`
/// using pages of `page_size` bytes.
pub fn pages_for_records(records: u64, page_size: usize, record_size: usize) -> u64 {
    let per_page = records_per_page(page_size, record_size) as u64;
    if per_page == 0 {
        return 0;
    }
    records.div_ceil(per_page)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_round_trip() {
        let mut page = PageBuf::new(64);
        for slot in 0..page.capacity_for::<u64>() {
            page.put(slot, &(slot as u64 * 7)).unwrap();
        }
        for slot in 0..page.capacity_for::<u64>() {
            assert_eq!(page.get::<u64>(slot).unwrap(), slot as u64 * 7);
        }
    }

    #[test]
    fn out_of_bounds_slot_is_rejected() {
        let mut page = PageBuf::new(16);
        assert!(page.put(2, &1u64).is_err());
        assert!(page.get::<u64>(2).is_err());
    }

    #[test]
    fn capacity_accounts_for_record_size() {
        let page = PageBuf::new(DEFAULT_PAGE_SIZE);
        assert_eq!(page.capacity_for::<u64>(), DEFAULT_PAGE_SIZE / 8);
        assert_eq!(page.capacity_for::<u32>(), DEFAULT_PAGE_SIZE / 4);
    }

    #[test]
    fn pages_for_records_rounds_up() {
        assert_eq!(pages_for_records(0, 4096, 8), 0);
        assert_eq!(pages_for_records(512, 4096, 8), 1);
        assert_eq!(pages_for_records(513, 4096, 8), 2);
        assert_eq!(pages_for_records(1024, 4096, 8), 2);
    }

    #[test]
    fn clear_zeroes_contents() {
        let mut page = PageBuf::new(32);
        page.put(0, &u64::MAX).unwrap();
        page.clear();
        assert_eq!(page.get::<u64>(0).unwrap(), 0);
    }
}
