//! Storage devices: the real-file backend and the simulated disk.
//!
//! Both devices expose the same page-oriented interface so the sorting
//! algorithms and the experiment harness are agnostic to where the runs
//! live. Every page access flows through a shared [`IoStats`] so seeks and
//! transfers can be attributed to phases of the sort; [`SimDevice`]
//! additionally keeps the file contents in memory, making experiments
//! deterministic and independent of the host file system (the substitution
//! for the paper's dedicated SATA disk, see DESIGN.md §2).

use crate::contention::IoClientGuard;
use crate::error::{Result, StorageError};
use crate::io_stats::{DiskModel, IoStats, IoStatsSnapshot};
use crate::model::{DeviceModel, ModelId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A page-addressed file handle.
///
/// Pages are `page_size` bytes; reads and writes always move whole pages.
/// Writing one page past the end extends the file.
pub trait PageFile: Send {
    /// Size in bytes of every page of this file.
    fn page_size(&self) -> usize;

    /// Number of pages currently stored.
    fn num_pages(&self) -> u64;

    /// Reads page `index` into `buf` (`buf.len() == page_size`).
    fn read_page(&mut self, index: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `data` (`data.len() == page_size`) as page `index`.
    ///
    /// Writing beyond the current end of the file extends it; the skipped
    /// pages read back as zeroes (sparse-file semantics), which is what the
    /// Appendix A reverse-file format relies on to write its fixed-size part
    /// files back to front.
    fn write_page(&mut self, index: u64, data: &[u8]) -> Result<()>;

    /// Flushes buffered data to the underlying medium.
    fn flush(&mut self) -> Result<()>;
}

/// A named, page-oriented storage device.
///
/// Implementations share one [`IoStats`] across all their files so that
/// cross-file head movement (the source of merge-phase seeks) is visible.
pub trait StorageDevice: Send + Sync {
    /// Page size used by every file of this device.
    fn page_size(&self) -> usize;

    /// Creates a new, empty file. Fails if the name already exists.
    fn create(&self, name: &str) -> Result<Box<dyn PageFile>>;

    /// Opens an existing file for reading and writing.
    fn open(&self, name: &str) -> Result<Box<dyn PageFile>>;

    /// Removes a file.
    fn remove(&self, name: &str) -> Result<()>;

    /// `true` when a file with this name exists.
    fn exists(&self, name: &str) -> bool;

    /// Names of every file currently stored, in ascending lexicographic
    /// (byte-wise) order — pinned so cleanup assertions and golden tests
    /// are deterministic across devices and platforms.
    fn list(&self) -> Vec<String>;

    /// The shared I/O statistics of the device.
    fn io_stats(&self) -> &IoStats;

    /// Snapshot of the current I/O statistics.
    fn stats(&self) -> IoStatsSnapshot {
        self.io_stats().snapshot()
    }

    /// Resets the I/O statistics.
    fn reset_stats(&self) {
        self.io_stats().reset()
    }

    /// Number of independent stripe members behind this device; `1` for
    /// every plain (non-striped) device.
    fn stripe_members(&self) -> usize {
        1
    }

    /// A view of this device suitable for shard `index` of a parallel
    /// sort. A [`StripedDevice`](crate::striped::StripedDevice) returns a
    /// clone pinned to stripe member `index % stripe_members()`, so each
    /// shard spills to its own disk; plain devices return a plain clone.
    fn shard_view(&self, index: usize) -> Self
    where
        Self: Sized + Clone,
    {
        let _ = index;
        self.clone()
    }

    /// Admits the caller as one outstanding request stream for bandwidth
    /// fair-sharing; the returned guard withdraws the stream on drop.
    /// `None` when the device does not model contention (every plain
    /// device today — only striped devices share bandwidth).
    fn attach_io_client(&self) -> Option<IoClientGuard> {
        None
    }
}

// ---------------------------------------------------------------------------
// Root-directory collision guard
// ---------------------------------------------------------------------------

/// Root directories currently claimed by a live file-backed device, so two
/// devices cannot silently share files (an easy mistake when hand-building
/// stripe members over real directories).
fn active_roots() -> &'static Mutex<HashSet<PathBuf>> {
    static ROOTS: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    ROOTS.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Claims `root` for a new file-backed device; errors when another live
/// device already owns it. Returns the canonical path to release later.
pub(crate) fn claim_root(root: &Path) -> Result<PathBuf> {
    // The directory exists by the time devices claim it, so canonicalize
    // resolves symlinks and relative spellings of the same directory; fall
    // back to the literal path when resolution fails.
    let canonical = root.canonicalize().unwrap_or_else(|_| root.to_path_buf());
    let mut roots = active_roots().lock();
    if !roots.insert(canonical.clone()) {
        return Err(StorageError::DeviceRootBusy(canonical));
    }
    Ok(canonical)
}

/// Releases a root previously returned by [`claim_root`].
pub(crate) fn release_root(canonical: &Path) {
    active_roots().lock().remove(canonical);
}

fn check_page_len(len: usize, page_size: usize) -> Result<()> {
    if len != page_size {
        return Err(StorageError::PageSizeMismatch {
            got: len,
            expected: page_size,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Simulated in-memory device
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SimFileData {
    pages: Vec<Box<[u8]>>,
}

struct SimShared {
    files: Mutex<HashMap<String, Arc<Mutex<SimFileData>>>>,
    stats: IoStats,
    page_size: usize,
    next_file_id: AtomicU64,
}

/// An in-memory simulated disk.
///
/// File contents live on the heap; every access updates the shared
/// [`IoStats`], including seek detection when the head moves between files
/// or to a non-consecutive page. The device is cheap to create and fully
/// deterministic, which is what the run-length experiments (Chapter 5) and
/// the fan-in analysis (§6.1.1) need.
#[derive(Clone)]
pub struct SimDevice {
    shared: Arc<SimShared>,
}

impl SimDevice {
    /// Creates a simulated device with the default page size and the
    /// historical `hdd-7200` model.
    ///
    /// Deprecated: device construction goes through the device-model
    /// catalog now — [`SimDevice::with_model`] /
    /// [`SimDevice::custom`], or a
    /// [`DeviceSpec`](crate::spec::DeviceSpec) string such as
    /// `"sim:hdd-7200"` when the choice comes from configuration.
    #[deprecated(
        since = "0.9.0",
        note = "use SimDevice::with_model(ModelId::…), SimDevice::custom(…) or DeviceSpec"
    )]
    pub fn new() -> Self {
        Self::with_model(ModelId::Hdd7200)
    }

    /// Creates a simulated device with an explicit page size and disk-model
    /// parameter block.
    ///
    /// Deprecated: use [`SimDevice::custom`], which accepts a catalog
    /// [`ModelId`], a raw
    /// [`DiskModel`] parameter set, or any
    /// [`DeviceModel`] instance.
    #[deprecated(since = "0.9.0", note = "use SimDevice::custom(page_size, model)")]
    pub fn with_config(page_size: usize, model: DiskModel) -> Self {
        Self::custom(page_size, model)
    }

    /// Creates a simulated device with the default page size, charging
    /// costs from the given device model (a catalog
    /// [`ModelId`], a raw
    /// [`DiskModel`] parameter set, or an
    /// `Arc<dyn DeviceModel>` from [`crate::model::custom`]).
    pub fn with_model(model: impl Into<Arc<dyn DeviceModel>>) -> Self {
        Self::custom(crate::page::DEFAULT_PAGE_SIZE, model)
    }

    /// Creates a simulated device with an explicit page size and device
    /// model.
    pub fn custom(page_size: usize, model: impl Into<Arc<dyn DeviceModel>>) -> Self {
        SimDevice {
            shared: Arc::new(SimShared {
                files: Mutex::new(HashMap::new()),
                stats: IoStats::with_model(model.into()),
                page_size,
                next_file_id: AtomicU64::new(1),
            }),
        }
    }

    /// Total bytes currently held by all files (for memory-budget tests).
    pub fn total_bytes(&self) -> usize {
        let files = self.shared.files.lock();
        files
            .values()
            .map(|f| f.lock().pages.len() * self.shared.page_size)
            .sum()
    }
}

impl Default for SimDevice {
    fn default() -> Self {
        Self::with_model(ModelId::Hdd7200)
    }
}

struct SimPageFile {
    name: String,
    file_id: u64,
    data: Arc<Mutex<SimFileData>>,
    stats: IoStats,
    page_size: usize,
}

impl PageFile for SimPageFile {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.data.lock().pages.len() as u64
    }

    fn read_page(&mut self, index: u64, buf: &mut [u8]) -> Result<()> {
        check_page_len(buf.len(), self.page_size)?;
        let data = self.data.lock();
        let page = data
            .pages
            .get(index as usize)
            .ok_or_else(|| StorageError::PageOutOfBounds {
                file: self.name.clone(),
                page: index,
                pages: data.pages.len() as u64,
            })?;
        buf.copy_from_slice(page);
        drop(data);
        self.stats.record_access(self.file_id, index, 1, false);
        Ok(())
    }

    fn write_page(&mut self, index: u64, data: &[u8]) -> Result<()> {
        check_page_len(data.len(), self.page_size)?;
        let mut file = self.data.lock();
        while (file.pages.len() as u64) < index {
            file.pages
                .push(vec![0u8; self.page_size].into_boxed_slice());
        }
        if (index as usize) == file.pages.len() {
            file.pages.push(data.to_vec().into_boxed_slice());
        } else {
            file.pages[index as usize].copy_from_slice(data);
        }
        drop(file);
        self.stats.record_access(self.file_id, index, 1, true);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

impl StorageDevice for SimDevice {
    fn page_size(&self) -> usize {
        self.shared.page_size
    }

    fn create(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let mut files = self.shared.files.lock();
        if files.contains_key(name) {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let data = Arc::new(Mutex::new(SimFileData::default()));
        files.insert(name.to_string(), Arc::clone(&data));
        drop(files);
        self.shared.stats.record_create();
        Ok(Box::new(SimPageFile {
            name: name.to_string(),
            file_id: self.shared.next_file_id.fetch_add(1, Ordering::Relaxed),
            data,
            stats: self.shared.stats.clone(),
            page_size: self.shared.page_size,
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let files = self.shared.files.lock();
        let data = files
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        drop(files);
        Ok(Box::new(SimPageFile {
            name: name.to_string(),
            file_id: self.shared.next_file_id.fetch_add(1, Ordering::Relaxed),
            data,
            stats: self.shared.stats.clone(),
            page_size: self.shared.page_size,
        }))
    }

    fn remove(&self, name: &str) -> Result<()> {
        let mut files = self.shared.files.lock();
        files
            .remove(name)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        drop(files);
        self.shared.stats.record_remove();
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.shared.files.lock().contains_key(name)
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.files.lock().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    fn io_stats(&self) -> &IoStats {
        &self.shared.stats
    }
}

// ---------------------------------------------------------------------------
// Real-file device
// ---------------------------------------------------------------------------

struct FileShared {
    root: PathBuf,
    stats: IoStats,
    page_size: usize,
    next_file_id: AtomicU64,
    /// Remove the root directory when the device is dropped.
    cleanup: bool,
    /// Canonical root registered in the collision guard, released on drop.
    claimed: PathBuf,
}

impl Drop for FileShared {
    fn drop(&mut self) {
        if self.cleanup {
            let _ = std::fs::remove_dir_all(&self.root);
        }
        release_root(&self.claimed);
    }
}

/// A device backed by real files under a root directory.
///
/// Used for wall-clock timing experiments (Chapter 6). The same seek
/// accounting as [`SimDevice`] is performed so logical I/O can be compared
/// between the two backends.
#[derive(Clone)]
pub struct FileDevice {
    shared: Arc<FileShared>,
}

impl FileDevice {
    /// Creates a device rooted at a fresh unique directory inside the system
    /// temporary directory; the directory is removed when the last clone of
    /// the device is dropped.
    pub fn temp() -> Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "twrs-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let root = std::env::temp_dir().join(unique);
        std::fs::create_dir_all(&root)?;
        let claimed = claim_root(&root)?;
        Ok(FileDevice {
            shared: Arc::new(FileShared {
                root,
                stats: IoStats::new(DiskModel::default()),
                page_size: crate::page::DEFAULT_PAGE_SIZE,
                next_file_id: AtomicU64::new(1),
                cleanup: true,
                claimed,
            }),
        })
    }

    /// Creates a device rooted at an existing directory; files are kept on
    /// drop. Errors with [`StorageError::DeviceRootBusy`] while another
    /// live device owns the same directory.
    pub fn at(root: impl Into<PathBuf>, page_size: usize) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let claimed = claim_root(&root)?;
        Ok(FileDevice {
            shared: Arc::new(FileShared {
                root,
                stats: IoStats::new(DiskModel::default()),
                page_size,
                next_file_id: AtomicU64::new(1),
                cleanup: false,
                claimed,
            }),
        })
    }

    /// The directory the device stores its files under.
    pub fn root(&self) -> &std::path::Path {
        &self.shared.root
    }

    fn path_of(&self, name: &str) -> PathBuf {
        // Keep names flat; replace path separators defensively.
        let safe: String = name
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        self.shared.root.join(safe)
    }
}

struct RealPageFile {
    name: String,
    file_id: u64,
    file: File,
    stats: IoStats,
    page_size: usize,
    pages: u64,
    /// Keeps the device's root directory (and its drop-time cleanup) alive
    /// until the last open page file is gone — without this, dropping a
    /// [`FileDevice::temp`] while a file handle is still in use (an error
    /// path unwinding, a writer thread finishing late) would delete the
    /// directory under the handle and silently lose subsequent writes.
    _device: Arc<FileShared>,
}

impl PageFile for RealPageFile {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.pages
    }

    fn read_page(&mut self, index: u64, buf: &mut [u8]) -> Result<()> {
        check_page_len(buf.len(), self.page_size)?;
        if index >= self.pages {
            return Err(StorageError::PageOutOfBounds {
                file: self.name.clone(),
                page: index,
                pages: self.pages,
            });
        }
        self.file
            .seek(SeekFrom::Start(index * self.page_size as u64))?;
        self.file.read_exact(buf)?;
        self.stats.record_access(self.file_id, index, 1, false);
        Ok(())
    }

    fn write_page(&mut self, index: u64, data: &[u8]) -> Result<()> {
        check_page_len(data.len(), self.page_size)?;
        self.file
            .seek(SeekFrom::Start(index * self.page_size as u64))?;
        self.file.write_all(data)?;
        if index >= self.pages {
            // Writing past the end extends the file; intermediate pages
            // become a sparse hole that reads back as zeroes.
            self.pages = index + 1;
        }
        self.stats.record_access(self.file_id, index, 1, true);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }
}

impl StorageDevice for FileDevice {
    fn page_size(&self) -> usize {
        self.shared.page_size
    }

    fn create(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let path = self.path_of(name);
        if path.exists() {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        self.shared.stats.record_create();
        Ok(Box::new(RealPageFile {
            name: name.to_string(),
            file_id: self.shared.next_file_id.fetch_add(1, Ordering::Relaxed),
            file,
            stats: self.shared.stats.clone(),
            page_size: self.shared.page_size,
            pages: 0,
            _device: Arc::clone(&self.shared),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn PageFile>> {
        let path = self.path_of(name);
        if !path.exists() {
            return Err(StorageError::NotFound(name.to_string()));
        }
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        let pages = len / self.shared.page_size as u64;
        Ok(Box::new(RealPageFile {
            name: name.to_string(),
            file_id: self.shared.next_file_id.fetch_add(1, Ordering::Relaxed),
            file,
            stats: self.shared.stats.clone(),
            page_size: self.shared.page_size,
            pages,
            _device: Arc::clone(&self.shared),
        }))
    }

    fn remove(&self, name: &str) -> Result<()> {
        let path = self.path_of(name);
        if !path.exists() {
            return Err(StorageError::NotFound(name.to_string()));
        }
        std::fs::remove_file(path)?;
        self.shared.stats.record_remove();
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.shared.root)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort_unstable();
        names
    }

    fn io_stats(&self) -> &IoStats {
        &self.shared.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_round_trip(device: &dyn StorageDevice) {
        let page_size = device.page_size();
        let mut file = device.create("alpha").unwrap();
        let mut page = vec![0u8; page_size];
        for i in 0..5u8 {
            page.fill(i);
            file.write_page(i as u64, &page).unwrap();
        }
        assert_eq!(file.num_pages(), 5);
        file.flush().unwrap();

        let mut reopened = device.open("alpha").unwrap();
        assert_eq!(reopened.num_pages(), 5);
        let mut buf = vec![0u8; page_size];
        for i in 0..5u8 {
            reopened.read_page(i as u64, &mut buf).unwrap();
            assert!(buf.iter().all(|b| *b == i));
        }
        assert!(device.exists("alpha"));
        device.remove("alpha").unwrap();
        assert!(!device.exists("alpha"));
    }

    #[test]
    fn sim_device_round_trip() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        device_round_trip(&device);
    }

    #[test]
    fn file_device_round_trip() {
        let device = FileDevice::temp().unwrap();
        device_round_trip(&device);
    }

    #[test]
    fn create_twice_fails() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        device.create("x").unwrap();
        assert!(matches!(
            device.create("x"),
            Err(StorageError::AlreadyExists(_))
        ));
    }

    #[test]
    fn open_missing_fails() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        assert!(matches!(
            device.open("missing"),
            Err(StorageError::NotFound(_))
        ));
        assert!(matches!(
            device.remove("missing"),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn page_writes_beyond_the_end_zero_fill_the_gap() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut file = device.create("f").unwrap();
        let page = vec![1u8; device.page_size()];
        file.write_page(0, &page).unwrap();
        // Writing page 3 while the file has one page creates a sparse hole.
        file.write_page(3, &page).unwrap();
        assert_eq!(file.num_pages(), 4);
        let mut buf = vec![9u8; device.page_size()];
        file.read_page(1, &mut buf).unwrap();
        assert!(buf.iter().all(|b| *b == 0));
        file.read_page(3, &mut buf).unwrap();
        assert!(buf.iter().all(|b| *b == 1));
    }

    #[test]
    fn read_past_end_fails() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut file = device.create("f").unwrap();
        let mut buf = vec![0u8; device.page_size()];
        assert!(matches!(
            file.read_page(0, &mut buf),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn wrong_buffer_size_is_rejected() {
        let device = SimDevice::custom(1024, DiskModel::default());
        let mut file = device.create("f").unwrap();
        let page = vec![0u8; 512];
        assert!(matches!(
            file.write_page(0, &page),
            Err(StorageError::PageSizeMismatch { .. })
        ));
    }

    #[test]
    fn stats_count_interleaved_reads_but_not_writes() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let page = vec![7u8; device.page_size()];
        let mut a = device.create("a").unwrap();
        let mut b = device.create("b").unwrap();
        for i in 0..3 {
            a.write_page(i, &page).unwrap();
            b.write_page(i, &page).unwrap();
        }
        let snap = device.stats();
        assert_eq!(snap.counters.pages_written, 6);
        // Writes are absorbed by the write-behind cache model.
        assert_eq!(snap.counters.seeks, 0);
        assert_eq!(snap.counters.files_created, 2);
        // Interleaved reads, on the other hand, pay a seek each.
        let mut buf = vec![0u8; device.page_size()];
        for i in 0..3 {
            a.read_page(i, &mut buf).unwrap();
            b.read_page(i, &mut buf).unwrap();
        }
        assert_eq!(device.stats().counters.seeks, 6);
    }

    #[test]
    fn sequential_single_file_writes_never_seek() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let page = vec![0u8; device.page_size()];
        let mut f = device.create("seq").unwrap();
        for i in 0..10 {
            f.write_page(i, &page).unwrap();
        }
        assert_eq!(device.stats().counters.seeks, 0);
    }

    #[test]
    fn list_reports_existing_files() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        device.create("one").unwrap();
        device.create("two").unwrap();
        assert_eq!(device.list(), vec!["one".to_string(), "two".to_string()]);
    }

    #[test]
    fn list_returns_sorted_names_on_both_devices() {
        // Created deliberately out of order; `list` must come back sorted
        // without the caller sorting — the order is part of the contract.
        let check = |device: &dyn StorageDevice| {
            for name in ["zeta", "alpha", "mid", "alpha.part1", "alpha.part0"] {
                device.create(name).unwrap();
            }
            assert_eq!(
                device.list(),
                vec![
                    "alpha".to_string(),
                    "alpha.part0".to_string(),
                    "alpha.part1".to_string(),
                    "mid".to_string(),
                    "zeta".to_string(),
                ]
            );
        };
        check(&SimDevice::with_model(ModelId::Hdd7200));
        check(&FileDevice::temp().unwrap());
    }

    #[test]
    fn temp_device_cleans_its_directory_even_when_files_remain() {
        // An error path that abandons spill files must not leak the temp
        // directory: dropping the last device clone removes the root with
        // everything still in it.
        let device = FileDevice::temp().unwrap();
        let root = device.root().to_path_buf();
        let page = vec![1u8; device.page_size()];
        for name in ["run.0", "run.1"] {
            let mut f = device.create(name).unwrap();
            f.write_page(0, &page).unwrap();
        }
        assert!(root.exists());
        drop(device);
        assert!(!root.exists(), "temp root must be removed with files in it");
    }

    #[test]
    fn temp_cleanup_waits_for_open_page_files() {
        // A page file handle keeps the directory alive: a late writer (or
        // an unwinding error path) must not have the root deleted under it.
        let device = FileDevice::temp().unwrap();
        let root = device.root().to_path_buf();
        let mut file = device.create("late").unwrap();
        drop(device);
        assert!(root.exists(), "open page file keeps the root alive");
        let page = vec![7u8; file.page_size()];
        file.write_page(0, &page).unwrap();
        file.flush().unwrap();
        drop(file);
        assert!(!root.exists(), "last handle gone → directory removed");
    }

    #[test]
    fn two_devices_over_one_directory_collide_cleanly() {
        let root = std::env::temp_dir().join(format!("twrs-collide-{}", std::process::id()));
        let first = FileDevice::at(&root, 4096).unwrap();
        // A second device over the live root must error, not share files.
        assert!(matches!(
            FileDevice::at(&root, 4096),
            Err(StorageError::DeviceRootBusy(_))
        ));
        drop(first);
        // The claim dies with the device; the directory is reusable.
        let again = FileDevice::at(&root, 4096).unwrap();
        drop(again);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn plain_devices_report_one_stripe_member_and_no_contention() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        assert_eq!(device.stripe_members(), 1);
        assert!(device.attach_io_client().is_none());
        // The default shard view is a plain clone sharing the same stats.
        let view = device.shard_view(3);
        view.create("from-view").unwrap();
        assert!(device.exists("from-view"));
        assert_eq!(device.stats().counters.files_created, 1);
    }

    #[test]
    fn sim_device_total_bytes_tracks_pages() {
        let device = SimDevice::custom(256, DiskModel::default());
        let mut f = device.create("f").unwrap();
        let page = vec![0u8; 256];
        f.write_page(0, &page).unwrap();
        f.write_page(1, &page).unwrap();
        assert_eq!(device.total_bytes(), 512);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut f = device.create("f").unwrap();
        let page = vec![0u8; device.page_size()];
        f.write_page(0, &page).unwrap();
        device.reset_stats();
        assert_eq!(device.stats().counters.pages_written, 0);
    }
}
