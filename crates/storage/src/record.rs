//! Fixed-size record serialization.
//!
//! The paper sorts fixed-size records (4-byte integers in the evaluation,
//! §5.2). The storage layer only needs to know how to move a record to and
//! from a byte slice of a known size; the concrete record layout lives in
//! the workload crate. Implementations are provided for the integer key
//! types used by tests and by simple examples.

/// A record with a compile-time-known serialized size.
///
/// Implementors must write exactly [`FixedSizeRecord::SIZE`] bytes in
/// [`write_to`](FixedSizeRecord::write_to) and read the same amount in
/// [`read_from`](FixedSizeRecord::read_from); the buffers handed to them are
/// always exactly `SIZE` bytes long.
pub trait FixedSizeRecord: Sized {
    /// Serialized size in bytes.
    const SIZE: usize;

    /// Serializes the record into `buf` (`buf.len() == Self::SIZE`).
    fn write_to(&self, buf: &mut [u8]);

    /// Deserializes a record from `buf` (`buf.len() == Self::SIZE`).
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! impl_fixed_for_int {
    ($($t:ty),*) => {
        $(
            impl FixedSizeRecord for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                fn write_to(&self, buf: &mut [u8]) {
                    buf.copy_from_slice(&self.to_le_bytes());
                }

                fn read_from(buf: &[u8]) -> Self {
                    let mut bytes = [0u8; std::mem::size_of::<$t>()];
                    bytes.copy_from_slice(buf);
                    <$t>::from_le_bytes(bytes)
                }
            }
        )*
    };
}

impl_fixed_for_int!(u32, u64, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<R: FixedSizeRecord + PartialEq + std::fmt::Debug + Copy>(value: R) {
        let mut buf = vec![0u8; R::SIZE];
        value.write_to(&mut buf);
        assert_eq!(R::read_from(&buf), value);
    }

    #[test]
    fn integer_round_trips() {
        round_trip(0u32);
        round_trip(u32::MAX);
        round_trip(123_456_789u64);
        round_trip(-42i32);
        round_trip(i64::MIN);
    }

    #[test]
    fn sizes_match_native_widths() {
        assert_eq!(<u32 as FixedSizeRecord>::SIZE, 4);
        assert_eq!(<u64 as FixedSizeRecord>::SIZE, 8);
        assert_eq!(<i64 as FixedSizeRecord>::SIZE, 8);
    }
}
