//! Fixed-size record serialization.
//!
//! The paper sorts fixed-size records (4-byte integers in the evaluation,
//! §5.2). The storage layer only needs to know how to move a record to and
//! from a byte slice of a known size; the concrete record layout lives in
//! the workload crate. Implementations are provided for the integer key
//! types used by tests and by simple examples.

/// A record with a compile-time-known serialized size.
///
/// Implementors must write exactly [`FixedSizeRecord::SIZE`] bytes in
/// [`write_to`](FixedSizeRecord::write_to) and read the same amount in
/// [`read_from`](FixedSizeRecord::read_from); the buffers handed to them are
/// always exactly `SIZE` bytes long.
pub trait FixedSizeRecord: Sized {
    /// Serialized size in bytes.
    const SIZE: usize;

    /// Serializes the record into `buf` (`buf.len() == Self::SIZE`).
    fn write_to(&self, buf: &mut [u8]);

    /// Deserializes a record from `buf` (`buf.len() == Self::SIZE`).
    fn read_from(buf: &[u8]) -> Self;
}

/// A record the external-sort pipeline can order, move between threads and
/// spill to storage.
///
/// `Debug` is required so verification failures and diagnostics can show
/// the offending record.
///
/// This is the bound every layer of the pipeline (heaps, run generation,
/// merging, the sorters and the [`SortJob`] front door) places on its record
/// type parameter: the record must serialize to a fixed number of bytes
/// ([`FixedSizeRecord`]), have a *total* order (`Ord` — ties must be broken
/// deterministically, e.g. by a payload or row id, so that independently
/// produced sorted outputs are byte-identical), and be cheaply clonable and
/// sendable across the parallel sorter's shard threads.
///
/// # The cached-key hook
///
/// [`sort_key`](SortableRecord::sort_key) projects the record onto a `u64`
/// that *weakly respects* the record order:
///
/// ```text
/// a <= b  ⟹  a.sort_key() <= b.sort_key()
/// ```
///
/// The pipeline uses it only for cheap arithmetic that full `Ord`
/// comparisons cannot provide — the Mean/Median input heuristics of 2WRS,
/// the victim buffer's largest-gap split, and the bucket ranges of the
/// distribution sort. It never affects *correctness*, only how well those
/// heuristics partition the key space, so the default implementation
/// (constant `0`) is always safe: heuristics degrade to their trivial
/// behaviour and every sorter still produces fully sorted output.
/// Implementors with an ordered numeric or byte-prefix key should override
/// it (e.g. `u64::from_be_bytes(prefix)` for an 8-byte string prefix).
///
/// `SortJob` is re-exported by the facade crate; see its documentation for
/// a worked "bring your own record type" example.
///
/// [`SortJob`]: https://docs.rs/two_way_replacement_selection
pub trait SortableRecord: FixedSizeRecord + Ord + Clone + Send + std::fmt::Debug + 'static {
    /// A `u64` projection of the sort key, monotone with respect to `Ord`
    /// (see the trait documentation). Used by heuristics and gap
    /// computations only; defaults to `0`, which is always correct but
    /// makes key-space heuristics trivial.
    fn sort_key(&self) -> u64 {
        0
    }
}

macro_rules! impl_sortable_for_uint {
    ($($t:ty),*) => {
        $(
            impl SortableRecord for $t {
                fn sort_key(&self) -> u64 {
                    u64::from(*self)
                }
            }
        )*
    };
}

impl_sortable_for_uint!(u32, u64);

macro_rules! impl_sortable_for_int {
    ($($t:ty => $u:ty),*) => {
        $(
            impl SortableRecord for $t {
                fn sort_key(&self) -> u64 {
                    // Shift the signed range into the unsigned one so the
                    // projection stays monotone across zero.
                    u64::from((*self as $u) ^ (1 << (<$t>::BITS - 1)))
                }
            }
        )*
    };
}

impl_sortable_for_int!(i32 => u32, i64 => u64);

macro_rules! impl_fixed_for_int {
    ($($t:ty),*) => {
        $(
            impl FixedSizeRecord for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                fn write_to(&self, buf: &mut [u8]) {
                    buf.copy_from_slice(&self.to_le_bytes());
                }

                fn read_from(buf: &[u8]) -> Self {
                    let mut bytes = [0u8; std::mem::size_of::<$t>()];
                    bytes.copy_from_slice(buf);
                    <$t>::from_le_bytes(bytes)
                }
            }
        )*
    };
}

impl_fixed_for_int!(u32, u64, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<R: FixedSizeRecord + PartialEq + std::fmt::Debug + Copy>(value: R) {
        let mut buf = vec![0u8; R::SIZE];
        value.write_to(&mut buf);
        assert_eq!(R::read_from(&buf), value);
    }

    #[test]
    fn integer_round_trips() {
        round_trip(0u32);
        round_trip(u32::MAX);
        round_trip(123_456_789u64);
        round_trip(-42i32);
        round_trip(i64::MIN);
    }

    #[test]
    fn sizes_match_native_widths() {
        assert_eq!(<u32 as FixedSizeRecord>::SIZE, 4);
        assert_eq!(<u64 as FixedSizeRecord>::SIZE, 8);
        assert_eq!(<i64 as FixedSizeRecord>::SIZE, 8);
    }

    #[test]
    fn integer_sort_keys_are_monotone() {
        assert!(5u64.sort_key() < 9u64.sort_key());
        assert!(5u32.sort_key() < 9u32.sort_key());
        // Signed projections stay monotone across zero.
        assert!((-3i32).sort_key() < 0i32.sort_key());
        assert!(0i32.sort_key() < 3i32.sort_key());
        assert!(i64::MIN.sort_key() < (-1i64).sort_key());
        assert!((-1i64).sort_key() < i64::MAX.sort_key());
    }
}
