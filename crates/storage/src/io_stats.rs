//! I/O accounting and the simulated disk cost model.
//!
//! The paper's timing results (Chapter 6) depend on two storage effects:
//! the number of sequential page transfers and the number of seeks the merge
//! phase causes when it interleaves reads from many runs (the fan-in
//! analysis of §6.1.1). [`IoStats`] counts both; [`DiskModel`] converts the
//! counts into a simulated elapsed time so experiments can be run
//! deterministically on the in-memory device and still show the same shapes
//! as the paper's wall-clock measurements.

use crate::model::{DeviceModel, ModelId};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Cost model of a spinning disk, in the spirit of the 60 GB SATA drive the
/// paper used.
///
/// All costs are expressed in microseconds; the defaults correspond to a
/// 7 200 rpm disk with ~8 ms average seek, ~4.2 ms rotational latency and
/// ~80 MB/s sequential transfer (≈ 50 µs per 4 KiB page).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average cost of moving the head to a non-adjacent position, in µs.
    pub seek_us: f64,
    /// Average rotational latency paid on every seek, in µs.
    pub rotational_us: f64,
    /// Cost of transferring one page sequentially, in µs.
    pub transfer_page_us: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        // The catalog's `hdd-7200` entry: the historical default.
        ModelId::Hdd7200.params()
    }
}

impl DiskModel {
    /// A model with no seek penalty; useful to isolate transfer volume.
    pub fn seekless() -> Self {
        DiskModel {
            seek_us: 0.0,
            rotational_us: 0.0,
            transfer_page_us: 50.0,
        }
    }

    /// Simulated time for the given operation counts.
    pub fn elapsed(&self, seeks: u64, pages: u64) -> Duration {
        let us = seeks as f64 * (self.seek_us + self.rotational_us)
            + pages as f64 * self.transfer_page_us;
        Duration::from_nanos((us * 1_000.0) as u64)
    }
}

/// Raw I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounters {
    // When adding a field here, extend `merged` and `IoStatsSnapshot::since`
    // as well so phase attribution and shard aggregation stay lossless.
    /// Pages read from the device.
    pub pages_read: u64,
    /// Pages written to the device.
    pub pages_written: u64,
    /// Read or write operations that required repositioning the head.
    pub seeks: u64,
    /// Files created on the device.
    pub files_created: u64,
    /// Files removed from the device.
    pub files_removed: u64,
}

impl IoCounters {
    /// Field-wise sum of two counter sets; used to aggregate the per-thread
    /// statistics of a parallel sort into one total.
    pub fn merged(&self, other: &IoCounters) -> IoCounters {
        IoCounters {
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            seeks: self.seeks + other.seeks,
            files_created: self.files_created + other.files_created,
            files_removed: self.files_removed + other.files_removed,
        }
    }
}

/// A point-in-time snapshot of the device counters together with the
/// simulated elapsed time the device's [`DeviceModel`] charged for them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoStatsSnapshot {
    /// The raw counters.
    pub counters: IoCounters,
    /// Parameter view of the cost model in force when the snapshot was
    /// taken (for report headers; the authoritative per-access costs are
    /// already accumulated in [`sim_io`](IoStatsSnapshot::sim_io)).
    pub model: DiskModel,
    /// Simulated elapsed time accumulated access by access under the
    /// device's [`DeviceModel`].
    pub sim_io: Duration,
}

impl IoStatsSnapshot {
    /// Total pages transferred in either direction.
    pub fn pages_total(&self) -> u64 {
        self.counters.pages_read + self.counters.pages_written
    }

    /// Simulated elapsed time under the device's model. For every
    /// parameter-defined model this equals
    /// `model.elapsed(seeks, pages_total())`; a custom [`DeviceModel`] may
    /// charge position-dependent costs, which only the accumulated value
    /// reflects.
    pub fn simulated_time(&self) -> Duration {
        self.sim_io
    }

    /// Field-wise sum of two snapshots, keeping `self`'s disk model. The
    /// aggregation used when per-thread [`IoStats`] of a sharded sort are
    /// rolled up into one total; seeks are summed as measured by each
    /// thread's own head model.
    pub fn merged(&self, other: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            counters: self.counters.merged(&other.counters),
            model: self.model,
            sim_io: self.sim_io + other.sim_io,
        }
    }

    /// A zeroed snapshot carrying `model`; the identity of [`merged`]
    /// (useful as the starting accumulator when summing shard snapshots).
    ///
    /// [`merged`]: IoStatsSnapshot::merged
    pub fn zero(model: DiskModel) -> IoStatsSnapshot {
        IoStatsSnapshot {
            counters: IoCounters::default(),
            model,
            sim_io: Duration::ZERO,
        }
    }

    /// Difference between two snapshots (`self - earlier`), useful to
    /// attribute I/O to a phase of the algorithm.
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            counters: IoCounters {
                pages_read: self.counters.pages_read - earlier.counters.pages_read,
                pages_written: self.counters.pages_written - earlier.counters.pages_written,
                seeks: self.counters.seeks - earlier.counters.seeks,
                files_created: self.counters.files_created - earlier.counters.files_created,
                files_removed: self.counters.files_removed - earlier.counters.files_removed,
            },
            model: self.model,
            sim_io: self.sim_io.saturating_sub(earlier.sim_io),
        }
    }
}

/// Shared, thread-safe I/O statistics for one storage device.
///
/// The device updates the counters on every page access; the experiment
/// harness snapshots them around each phase.
#[derive(Debug, Clone)]
pub struct IoStats {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug)]
struct Inner {
    counters: IoCounters,
    model: Arc<dyn DeviceModel>,
    /// Last read head position as (file id, page index); `None` right after
    /// a reset or before any access.
    head: Option<(u64, u64)>,
    /// Simulated time accumulated access by access, in nanoseconds.
    sim_ns: u64,
}

impl IoStats {
    /// Creates a new statistics block charging costs from an ad-hoc
    /// parameter set (a `"custom"` [`DeviceModel`]); use
    /// [`with_model`](IoStats::with_model) to attach a catalog model.
    pub fn new(model: DiskModel) -> Self {
        Self::with_model(model.into())
    }

    /// Creates a new statistics block charging per-access costs from the
    /// given device model.
    pub fn with_model(model: Arc<dyn DeviceModel>) -> Self {
        IoStats {
            inner: Arc::new(Mutex::new(Inner {
                counters: IoCounters::default(),
                model,
                head: None,
                sim_ns: 0,
            })),
        }
    }

    /// Records an access of `pages` consecutive pages of file `file_id`
    /// starting at `page`.
    ///
    /// The device model decides what the access costs. Under the catalog
    /// rule, reads pay a seek whenever the head is not already positioned
    /// at the requested page (reads are synchronous and the merge phase
    /// interleaves them across many run files — the effect behind the
    /// fan-in analysis of §6.1.1), while writes are charged transfer time
    /// but no seeks: as the paper argues in Appendix A.1, the operating
    /// system's write-behind cache absorbs and reorders writes (including
    /// the reverse-file format's back-to-front writes), so they do not
    /// thrash the head the way synchronous reads do.
    pub fn record_access(&self, file_id: u64, page: u64, pages: u64, write: bool) {
        let mut inner = self.inner.lock();
        let cost = inner
            .model
            .access_cost(inner.head, file_id, page, pages, write);
        if cost.seek {
            inner.counters.seeks += 1;
        }
        if write {
            inner.counters.pages_written += pages;
        } else {
            inner.counters.pages_read += pages;
            inner.head = Some((file_id, page + pages));
        }
        inner.sim_ns += (cost.micros * 1_000.0) as u64;
    }

    /// Records a file creation.
    pub fn record_create(&self) {
        self.inner.lock().counters.files_created += 1;
    }

    /// Records a file removal.
    pub fn record_remove(&self) {
        self.inner.lock().counters.files_removed += 1;
    }

    /// Returns the current snapshot.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let inner = self.inner.lock();
        IoStatsSnapshot {
            counters: inner.counters,
            model: inner.model.params(),
            sim_io: Duration::from_nanos(inner.sim_ns),
        }
    }

    /// Clears every counter, the accumulated simulated time and the head
    /// position.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.counters = IoCounters::default();
        inner.head = None;
        inner.sim_ns = 0;
    }

    /// Parameter view of the configured cost model.
    pub fn model(&self) -> DiskModel {
        self.inner.lock().model.params()
    }

    /// The configured cost model itself (shared), so wrappers like
    /// [`ScopedDevice`](crate::scoped::ScopedDevice) can mirror per-access
    /// costs exactly — including custom models a parameter view cannot
    /// express.
    pub fn device_model(&self) -> Arc<dyn DeviceModel> {
        Arc::clone(&self.inner.lock().model)
    }

    /// Replaces the cost model in force, keeping counters, head position
    /// and accumulated simulated time. This is how
    /// [`StripedDevice`](crate::striped::StripedDevice) wraps each stripe
    /// member's model in a
    /// [`SharedBandwidthModel`](crate::contention::SharedBandwidthModel)
    /// after the member device has already been built.
    pub fn set_model(&self, model: Arc<dyn DeviceModel>) {
        self.inner.lock().model = model;
    }
}

impl Default for IoStats {
    fn default() -> Self {
        IoStats::new(DiskModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_absorbed_by_the_write_cache() {
        let stats = IoStats::new(DiskModel::default());
        stats.record_access(1, 0, 1, true);
        stats.record_access(2, 0, 1, true);
        stats.record_access(1, 5, 1, true);
        let snap = stats.snapshot();
        assert_eq!(snap.counters.pages_written, 3);
        // Writes pay transfer time but never seeks (Appendix A.1).
        assert_eq!(snap.counters.seeks, 0);
    }

    #[test]
    fn interleaved_files_seek_every_time() {
        let stats = IoStats::new(DiskModel::default());
        for i in 0..4 {
            stats.record_access(1, i, 1, false);
            stats.record_access(2, i, 1, false);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.counters.pages_read, 8);
        assert_eq!(snap.counters.seeks, 8);
    }

    #[test]
    fn simulated_time_reflects_model() {
        let model = DiskModel {
            seek_us: 1_000.0,
            rotational_us: 0.0,
            transfer_page_us: 10.0,
        };
        let stats = IoStats::new(model);
        stats.record_access(1, 3, 4, false); // one seek, four pages read
        let snap = stats.snapshot();
        assert_eq!(snap.simulated_time(), Duration::from_micros(1_040));
    }

    #[test]
    fn snapshot_difference() {
        let stats = IoStats::new(DiskModel::default());
        stats.record_access(1, 0, 2, true);
        let first = stats.snapshot();
        stats.record_access(1, 2, 3, false);
        let second = stats.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.counters.pages_written, 0);
        assert_eq!(delta.counters.pages_read, 3);
    }

    #[test]
    fn reset_clears_counters_and_head() {
        let stats = IoStats::new(DiskModel::default());
        stats.record_access(7, 0, 1, false);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.counters, IoCounters::default());
        // After a reset the next read repositions the head again.
        stats.record_access(7, 1, 1, false);
        assert_eq!(stats.snapshot().counters.seeks, 1);
    }

    #[test]
    fn merged_snapshots_sum_every_counter() {
        let a = IoStats::new(DiskModel::default());
        a.record_access(1, 0, 2, false);
        a.record_access(1, 2, 3, true);
        a.record_create();
        let b = IoStats::new(DiskModel::default());
        b.record_access(9, 4, 5, false); // non-adjacent start: one seek
        b.record_remove();
        let sum = a.snapshot().merged(&b.snapshot());
        assert_eq!(sum.counters.pages_read, 7);
        assert_eq!(sum.counters.pages_written, 3);
        assert_eq!(sum.counters.seeks, 2);
        assert_eq!(sum.counters.files_created, 1);
        assert_eq!(sum.counters.files_removed, 1);
    }

    #[test]
    fn zero_is_the_merge_identity() {
        let stats = IoStats::new(DiskModel::default());
        stats.record_access(1, 0, 4, true);
        let snap = stats.snapshot();
        let total = IoStatsSnapshot::zero(snap.model).merged(&snap);
        assert_eq!(total, snap);
    }

    #[test]
    fn set_model_swaps_costs_but_keeps_counters_and_head() {
        let stats = IoStats::new(DiskModel::default());
        stats.record_access(1, 0, 1, false);
        let before = stats.snapshot();
        stats.set_model(ModelId::Pmem.model());
        let snap = stats.snapshot();
        assert_eq!(snap.counters, before.counters);
        assert_eq!(snap.sim_io, before.sim_io);
        assert_eq!(snap.model, ModelId::Pmem.params());
        // The head survives the swap: the next sequential read is seekless.
        stats.record_access(1, 1, 1, false);
        assert_eq!(stats.snapshot().counters.seeks, 1);
    }

    #[test]
    fn seekless_model_only_counts_transfers() {
        let model = DiskModel::seekless();
        assert_eq!(model.elapsed(100, 10), Duration::from_micros(500));
    }
}
