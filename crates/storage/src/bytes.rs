//! Infallible little-endian field extraction for fixed-layout pages and
//! records.
//!
//! `bytes[a..b].try_into().expect(..)` is correct when the caller already
//! length-checked the buffer, but it leaves a panic token on an I/O path
//! and the `no-lib-panic` lint (see `crates/lint/RULES.md`) rightly flags
//! it. These helpers express the same fixed-width reads with a stack copy
//! whose length matches by construction.

/// Copies the `N` bytes starting at `at` into an owned array.
///
/// Callers bound-check the buffer once up front (headers and records are
/// fixed-layout), so the slice here is always in range.
pub fn array_at<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&bytes[at..at + N]);
    out
}

/// Reads a little-endian `u32` at byte offset `at`.
pub fn u32_le_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(array_at(bytes, at))
}

/// Reads a little-endian `u64` at byte offset `at`.
pub fn u64_le_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(array_at(bytes, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_fields_at_offsets() {
        let mut buf = vec![0u8; 16];
        buf[4..8].copy_from_slice(&0xdead_beef_u32.to_le_bytes());
        buf[8..16].copy_from_slice(&0x0123_4567_89ab_cdef_u64.to_le_bytes());
        assert_eq!(u32_le_at(&buf, 4), 0xdead_beef);
        assert_eq!(u64_le_at(&buf, 8), 0x0123_4567_89ab_cdef);
        assert_eq!(array_at::<4>(&buf, 4), 0xdead_beef_u32.to_le_bytes());
    }
}
