//! Storage substrate for the two-way replacement selection reproduction.
//!
//! External sorting performance is dominated by how runs are written to and
//! read back from secondary storage (paper Chapter 2 and Appendix A). The
//! original evaluation ran against a 2010-era SATA disk opened with direct
//! I/O; this crate substitutes that hardware with a small, explicit storage
//! model that preserves the behaviour the algorithms care about:
//!
//! * a page-oriented [`device::StorageDevice`] abstraction with three
//!   implementations —
//!   [`device::FileDevice`] backed by real files in a temporary directory
//!   (for wall-clock benchmarks), [`device::SimDevice`], an in-memory
//!   simulated disk with a pluggable latency model and full I/O accounting
//!   (for deterministic experiments such as the fan-in analysis of §6.1.1),
//!   and [`real_device::RealFileDevice`], a page-aligned backend that opens
//!   files with `O_DIRECT` where the filesystem supports it;
//! * [`model`] — the [`model::DeviceModel`] trait and the named catalog
//!   ([`model::ModelId`]: `hdd-7200`, `sata-ssd`, `nvme`, `pmem`) that
//!   turns page accesses into simulated latency;
//! * [`spec`] — [`spec::DeviceSpec`], the `"sim:nvme"` / `"real:/path"` /
//!   `"striped:2:sim:nvme"` string grammar that is the one way CLIs and
//!   benches obtain a device;
//! * [`striped`] — [`striped::StripedDevice`], N member devices behind one
//!   front with per-file placement ([`striped::StripePolicy`]), independent
//!   per-disk [`io_stats::IoStats`] and shard-pinned views for the parallel
//!   sorter;
//! * [`contention`] — [`contention::SharedBandwidthModel`], the fair-share
//!   slowdown charged while several request streams
//!   ([`contention::IoClientGuard`]) are admitted to one stripe;
//! * [`io_stats::IoStats`] — counters for sequential page transfers and
//!   seeks plus the simulated elapsed time derived from a
//!   [`io_stats::DiskModel`];
//! * [`run_file`] — buffered, forward-sequential run writers and readers for
//!   fixed-size records;
//! * [`reverse_file`] — the Appendix A file format that stores a stream of
//!   *decreasing* records so that the merge phase can still read every file
//!   forward (fixed-size multi-page files written back to front with a
//!   header page);
//! * [`spill`] — naming and lifecycle management for the temporary files of
//!   a run set.
//!
//! Records are serialized through the [`record::FixedSizeRecord`] trait so
//! the workload crate can define its own record layout without this crate
//! depending on it.

#![warn(missing_docs)]

pub mod bytes;
pub mod contention;
pub mod device;
pub mod error;
pub mod io_stats;
pub mod model;
pub mod page;
pub mod real_device;
pub mod record;
pub mod reverse_file;
pub mod run_file;
pub mod scoped;
pub mod spec;
pub mod spill;
pub mod striped;

pub use bytes::{array_at, u32_le_at, u64_le_at};
pub use contention::{ContentionState, IoClientGuard, SharedBandwidthModel};
pub use device::{FileDevice, PageFile, SimDevice, StorageDevice};
pub use error::{Result, StorageError};
pub use io_stats::{DiskModel, IoCounters, IoStats, IoStatsSnapshot};
pub use model::{custom, AccessCost, DeviceModel, ModelId};
pub use page::{PageBuf, DEFAULT_PAGE_SIZE};
pub use real_device::{DirectIoStatus, RealFileDevice};
pub use record::{FixedSizeRecord, SortableRecord};
pub use reverse_file::{ReverseRunReader, ReverseRunWriter};
pub use run_file::{RunReader, RunWriter};
pub use scoped::ScopedDevice;
pub use spec::{AnyDevice, DeviceSpec};
pub use spill::SpillNamer;
pub use striped::{StripePolicy, StripedDevice};
