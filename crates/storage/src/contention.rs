//! Fair-share bandwidth contention for shared spill devices.
//!
//! The paper's cost model charges every access as if the disk served one
//! request stream; that is accurate for the dedicated SATA drive of the
//! experiments but not for a stripe member shared by several concurrent
//! sort jobs. This module adds the missing effect in the style of
//! dslab-storage's shared-disk model: clients *admit* themselves to the
//! device (an [`IoClientGuard`] marks one outstanding request stream) and
//! every access is charged a **proportional slowdown** — the modelled
//! microseconds are multiplied by the number of admitted clients, i.e.
//! each stream gets `1/n` of the device's bandwidth while `n` streams are
//! admitted.
//!
//! The slowdown is driven by the logical admission count, not wall-clock
//! overlap, so simulated latencies stay deterministic: the same job run
//! with the same set of admitted clients always pays the same cost, no
//! matter how the OS schedules the threads. Counters (pages, seeks) are
//! never touched — contention changes *time*, not *behaviour* — which is
//! what keeps baseline-pinned counter sets valid across contention states.

use crate::io_stats::DiskModel;
use crate::model::{AccessCost, DeviceModel};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared admission book-keeping for one device (or one stripe of devices):
/// how many request streams are currently outstanding.
///
/// One state instance is shared by every [`SharedBandwidthModel`] wrapping
/// the members of a stripe, so a client admitted to the stripe slows down
/// all of its disks — the stripe shares one bus, as a multi-disk spill
/// array would.
#[derive(Debug, Default)]
pub struct ContentionState {
    outstanding: AtomicU64,
}

impl ContentionState {
    /// Creates a fresh state with no admitted clients.
    pub fn new() -> Arc<ContentionState> {
        Arc::new(ContentionState::default())
    }

    /// Number of currently admitted request streams.
    pub fn active_clients(&self) -> u64 {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Admits one request stream; the returned guard withdraws it on drop.
    pub fn attach(self: &Arc<Self>) -> IoClientGuard {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        IoClientGuard {
            state: Arc::clone(self),
        }
    }
}

/// RAII admission ticket: while alive, the owning job counts as one
/// outstanding request stream on the device it was attached to.
///
/// Obtained from [`ContentionState::attach`] or, one level up, from
/// [`StorageDevice::attach_io_client`](crate::device::StorageDevice::attach_io_client).
#[derive(Debug)]
pub struct IoClientGuard {
    state: Arc<ContentionState>,
}

impl IoClientGuard {
    /// The admission state this guard is attached to.
    pub fn state(&self) -> &Arc<ContentionState> {
        &self.state
    }
}

impl Drop for IoClientGuard {
    fn drop(&mut self) {
        self.state.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A [`DeviceModel`] decorator that fair-shares the wrapped model's
/// bandwidth among the clients admitted to a shared [`ContentionState`].
///
/// Seek *detection* (and therefore every deterministic counter) delegates
/// unchanged to the inner model; only the charged microseconds scale with
/// the admission count. With zero or one admitted client the decorator is
/// cost-transparent, so single-job runs reproduce the historical simulated
/// times bit for bit.
pub struct SharedBandwidthModel {
    inner: Arc<dyn DeviceModel>,
    state: Arc<ContentionState>,
}

impl SharedBandwidthModel {
    /// Wraps `inner` so its costs are fair-shared under `state`.
    pub fn new(inner: Arc<dyn DeviceModel>, state: Arc<ContentionState>) -> Self {
        SharedBandwidthModel { inner, state }
    }

    /// The multiplicative slowdown currently in force (`max(1, clients)`).
    pub fn slowdown(&self) -> u64 {
        self.state.active_clients().max(1)
    }
}

impl fmt::Debug for SharedBandwidthModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedBandwidthModel")
            .field("inner", &self.inner)
            .field("clients", &self.state.active_clients())
            .finish()
    }
}

impl DeviceModel for SharedBandwidthModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn access_cost(
        &self,
        head: Option<(u64, u64)>,
        file_id: u64,
        page: u64,
        pages: u64,
        write: bool,
    ) -> AccessCost {
        let mut cost = self.inner.access_cost(head, file_id, page, pages, write);
        cost.micros *= self.slowdown() as f64;
        cost
    }

    fn params(&self) -> DiskModel {
        self.inner.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelId;

    #[test]
    fn zero_or_one_client_is_cost_transparent() {
        let state = ContentionState::new();
        let shared = SharedBandwidthModel::new(ModelId::Nvme.model(), Arc::clone(&state));
        let bare = ModelId::Nvme.model();
        let solo = shared.access_cost(None, 1, 0, 4, false);
        assert_eq!(solo, bare.access_cost(None, 1, 0, 4, false));
        let _one = state.attach();
        assert_eq!(shared.access_cost(None, 1, 0, 4, false), solo);
    }

    #[test]
    fn each_admitted_client_scales_the_cost_proportionally() {
        let state = ContentionState::new();
        let shared = SharedBandwidthModel::new(ModelId::Hdd7200.model(), Arc::clone(&state));
        let solo = shared.access_cost(None, 1, 0, 1, false).micros;
        let _a = state.attach();
        let _b = state.attach();
        let contended = shared.access_cost(None, 1, 0, 1, false);
        assert_eq!(contended.micros, solo * 2.0);
        let _c = state.attach();
        assert_eq!(shared.access_cost(None, 1, 0, 1, false).micros, solo * 3.0);
    }

    #[test]
    fn dropping_the_guard_withdraws_the_client() {
        let state = ContentionState::new();
        let guard = state.attach();
        assert_eq!(state.active_clients(), 1);
        drop(guard);
        assert_eq!(state.active_clients(), 0);
    }

    #[test]
    fn contention_never_changes_seek_detection_or_params() {
        let state = ContentionState::new();
        let shared = SharedBandwidthModel::new(ModelId::Hdd7200.model(), Arc::clone(&state));
        let _a = state.attach();
        let _b = state.attach();
        let bare = ModelId::Hdd7200.model();
        let sequence = [
            (None, 1, 0, 1, false),
            (Some((1, 1)), 1, 1, 1, false),
            (Some((1, 2)), 2, 0, 1, false),
            (Some((2, 1)), 2, 5, 1, true),
        ];
        for (head, f, p, n, w) in sequence {
            assert_eq!(
                shared.access_cost(head, f, p, n, w).seek,
                bare.access_cost(head, f, p, n, w).seek
            );
        }
        assert_eq!(shared.params(), bare.params());
        assert_eq!(shared.name(), bare.name());
    }
}
