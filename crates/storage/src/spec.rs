//! Device specs: the one string grammar every layer uses to obtain a device.
//!
//! CLIs, bench configs and service callers describe storage as a spec
//! string and let [`DeviceSpec::build`] construct the backend, instead of
//! hard-wiring a constructor:
//!
//! ```text
//! sim[:<model>[:<page_size>]]     an in-memory simulated disk
//! real[:<path>[:<page_size>]]     real files, O_DIRECT where supported
//! striped:<n>:<spec>              n identical members behind one stripe
//! striped:[<spec>,<spec>,…]       an explicit (possibly mixed) member list
//! ```
//!
//! Examples: `"sim"` (the default `hdd-7200` model), `"sim:nvme"`,
//! `"sim:pmem:8192"`, `"real"` (a self-cleaning temp directory),
//! `"real:/mnt/bench"`, `"real:/mnt/bench:8192"`, `"striped:2:sim:nvme"`,
//! `"striped:[sim:nvme,real:/mnt/a]"`. The model names are the catalog ids
//! of [`ModelId`]; when a `real` spec contains a colon after the path, the
//! final segment must be a page size in bytes. Striped members follow the
//! same grammar recursively, except that stripes do not nest and member
//! paths must not contain commas (the list separator).
//!
//! [`build`](DeviceSpec::build) returns an [`AnyDevice`] — a closed enum
//! over the backends that implements [`StorageDevice`] (and is `Clone +
//! Send + 'static`), so it plugs into `SortJob`/`SortService` like any
//! concrete device.

use crate::contention::IoClientGuard;
use crate::device::{PageFile, SimDevice, StorageDevice};
use crate::error::{Result, StorageError};
use crate::io_stats::{IoStats, IoStatsSnapshot};
use crate::model::ModelId;
use crate::page::DEFAULT_PAGE_SIZE;
use crate::real_device::{DirectIoStatus, RealFileDevice};
use crate::striped::StripedDevice;
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// A parsed device description: which backend, configured how.
///
/// Parse one from a string (`"sim:nvme"`, `"real:/path:8192"`) or build it
/// programmatically; [`DeviceSpec::build`] then constructs the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceSpec {
    /// An in-memory [`SimDevice`] charging costs from a catalog model.
    Sim {
        /// Catalog model the device charges access costs from.
        model: ModelId,
        /// Page size in bytes.
        page_size: usize,
    },
    /// A [`RealFileDevice`]; `path: None` means a self-cleaning temp
    /// directory.
    Real {
        /// Root directory for the device's files (kept on drop); `None`
        /// uses a fresh temp directory removed on drop.
        path: Option<PathBuf>,
        /// Page size in bytes.
        page_size: usize,
    },
    /// A [`StripedDevice`] over the listed member specs (round-robin file
    /// placement; members must agree on the page size and must not
    /// themselves be striped).
    Striped {
        /// The member device specs, in stripe order.
        members: Vec<DeviceSpec>,
    },
}

impl DeviceSpec {
    /// A simulated device with the given catalog model and the default page
    /// size.
    pub fn sim(model: ModelId) -> Self {
        DeviceSpec::Sim {
            model,
            page_size: DEFAULT_PAGE_SIZE,
        }
    }

    /// A stripe of `count` members built from the same spec.
    pub fn striped(count: usize, member: DeviceSpec) -> Self {
        DeviceSpec::Striped {
            members: vec![member; count],
        }
    }

    /// The page size the spec will build with.
    pub fn page_size(&self) -> usize {
        match self {
            DeviceSpec::Sim { page_size, .. } | DeviceSpec::Real { page_size, .. } => *page_size,
            DeviceSpec::Striped { members } => members
                .first()
                .map(DeviceSpec::page_size)
                .unwrap_or(DEFAULT_PAGE_SIZE),
        }
    }

    /// Constructs the described device.
    pub fn build(&self) -> Result<AnyDevice> {
        match self {
            DeviceSpec::Sim { model, page_size } => {
                Ok(AnyDevice::Sim(SimDevice::custom(*page_size, *model)))
            }
            DeviceSpec::Real {
                path: Some(path),
                page_size,
            } => Ok(AnyDevice::Real(RealFileDevice::at(path, *page_size)?)),
            DeviceSpec::Real {
                path: None,
                page_size,
            } => Ok(AnyDevice::Real(RealFileDevice::temp_with_page_size(
                *page_size,
            )?)),
            DeviceSpec::Striped { members } => {
                let built = members
                    .iter()
                    .map(DeviceSpec::build)
                    .collect::<Result<Vec<_>>>()?;
                Ok(AnyDevice::Striped(StripedDevice::new(built)?))
            }
        }
    }
}

impl Default for DeviceSpec {
    /// `sim:hdd-7200` — the historical default backend and model.
    fn default() -> Self {
        DeviceSpec::sim(ModelId::Hdd7200)
    }
}

impl fmt::Display for DeviceSpec {
    /// The canonical spec string, parseable back via [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceSpec::Sim { model, page_size } => {
                if *page_size == DEFAULT_PAGE_SIZE {
                    write!(f, "sim:{model}")
                } else {
                    write!(f, "sim:{model}:{page_size}")
                }
            }
            DeviceSpec::Real { path, page_size } => {
                match path {
                    Some(p) => write!(f, "real:{}", p.display())?,
                    None => write!(f, "real")?,
                }
                if *page_size != DEFAULT_PAGE_SIZE {
                    // `real:<ps>` alone would read as a path; spell the
                    // empty path out so the string round-trips.
                    if path.is_none() {
                        write!(f, ":")?;
                    }
                    write!(f, ":{page_size}")?;
                }
                Ok(())
            }
            DeviceSpec::Striped { members } => {
                // Homogeneous stripes render in the compact count form;
                // mixed ones spell the member list out.
                if let Some(first) = members.first() {
                    if members.iter().all(|m| m == first) {
                        return write!(f, "striped:{}:{first}", members.len());
                    }
                }
                write!(f, "striped:[")?;
                for (index, member) in members.iter().enumerate() {
                    if index > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{member}")?;
                }
                write!(f, "]")
            }
        }
    }
}

fn invalid(spec: &str, reason: impl Into<String>) -> StorageError {
    StorageError::InvalidDeviceSpec {
        spec: spec.to_string(),
        reason: reason.into(),
    }
}

fn parse_page_size(spec: &str, text: &str) -> Result<usize> {
    let size: usize = text
        .parse()
        .map_err(|_| invalid(spec, format!("page size {text:?} is not a number")))?;
    if size == 0 {
        return Err(invalid(spec, "page size must be non-zero"));
    }
    Ok(size)
}

impl FromStr for DeviceSpec {
    type Err = StorageError;

    fn from_str(s: &str) -> Result<DeviceSpec> {
        let (kind, rest) = match s.split_once(':') {
            Some((kind, rest)) => (kind, Some(rest)),
            None => (s, None),
        };
        match kind {
            "sim" => {
                let (model_text, size_text) = match rest.map(|r| r.split_once(':')) {
                    None => ("", None),
                    Some(None) => (rest.unwrap_or(""), None),
                    Some(Some((model, size))) => (model, Some(size)),
                };
                let model = if model_text.is_empty() {
                    ModelId::Hdd7200
                } else {
                    model_text.parse()?
                };
                let page_size = match size_text {
                    Some(text) => parse_page_size(s, text)?,
                    None => DEFAULT_PAGE_SIZE,
                };
                Ok(DeviceSpec::Sim { model, page_size })
            }
            "real" => {
                // The page size, when present, is the segment after the
                // LAST colon (paths themselves must not contain colons).
                let (path_text, size_text) = match rest.map(|r| r.rsplit_once(':')) {
                    None => ("", None),
                    Some(None) => (rest.unwrap_or(""), None),
                    Some(Some((path, size))) => (path, Some(size)),
                };
                let page_size = match size_text {
                    Some(text) => parse_page_size(s, text)?,
                    None => DEFAULT_PAGE_SIZE,
                };
                let path = if path_text.is_empty() {
                    None
                } else {
                    Some(PathBuf::from(path_text))
                };
                Ok(DeviceSpec::Real { path, page_size })
            }
            "striped" => {
                let rest = rest.ok_or_else(|| {
                    invalid(
                        s,
                        "striped needs members: striped:<n>:<spec> or striped:[<spec>,…]",
                    )
                })?;
                let members = if let Some(body) = rest.strip_prefix('[') {
                    let body = body
                        .strip_suffix(']')
                        .ok_or_else(|| invalid(s, "unterminated member list (missing ']')"))?;
                    if body.trim().is_empty() {
                        return Err(invalid(s, "a stripe needs at least one member"));
                    }
                    body.split(',')
                        .map(|member| member.trim().parse::<DeviceSpec>())
                        .collect::<Result<Vec<_>>>()?
                } else {
                    let (count_text, member_text) = rest.split_once(':').ok_or_else(|| {
                        invalid(
                            s,
                            "count form is striped:<n>:<spec>, e.g. striped:2:sim:nvme",
                        )
                    })?;
                    let count: usize = count_text.parse().map_err(|_| {
                        invalid(s, format!("member count {count_text:?} is not a number"))
                    })?;
                    if count == 0 {
                        return Err(invalid(s, "member count must be non-zero"));
                    }
                    vec![member_text.parse::<DeviceSpec>()?; count]
                };
                if members
                    .iter()
                    .any(|m| matches!(m, DeviceSpec::Striped { .. }))
                {
                    return Err(invalid(s, "stripes do not nest"));
                }
                Ok(DeviceSpec::Striped { members })
            }
            other => Err(invalid(
                s,
                format!("unknown backend {other:?} (expected \"sim\", \"real\" or \"striped\")"),
            )),
        }
    }
}

/// The device an evaluated [`DeviceSpec`] produces: a closed enum over the
/// simulated and real backends, delegating [`StorageDevice`] to whichever
/// it holds.
#[derive(Clone)]
pub enum AnyDevice {
    /// An in-memory simulated device.
    Sim(SimDevice),
    /// A real-file device (O_DIRECT where supported).
    Real(RealFileDevice),
    /// A stripe of member devices behind one front.
    Striped(StripedDevice),
}

impl AnyDevice {
    /// The direct-I/O status when the backend is real; `None` for a
    /// simulated or striped device (a stripe may mix backends — ask its
    /// members).
    pub fn direct_io(&self) -> Option<&DirectIoStatus> {
        match self {
            AnyDevice::Sim(_) | AnyDevice::Striped(_) => None,
            AnyDevice::Real(device) => Some(device.direct_io()),
        }
    }

    /// The striped backend, when this device is one.
    pub fn as_striped(&self) -> Option<&StripedDevice> {
        match self {
            AnyDevice::Striped(device) => Some(device),
            _ => None,
        }
    }
}

impl StorageDevice for AnyDevice {
    fn page_size(&self) -> usize {
        match self {
            AnyDevice::Sim(d) => d.page_size(),
            AnyDevice::Real(d) => d.page_size(),
            AnyDevice::Striped(d) => d.page_size(),
        }
    }

    fn create(&self, name: &str) -> Result<Box<dyn PageFile>> {
        match self {
            AnyDevice::Sim(d) => d.create(name),
            AnyDevice::Real(d) => d.create(name),
            AnyDevice::Striped(d) => d.create(name),
        }
    }

    fn open(&self, name: &str) -> Result<Box<dyn PageFile>> {
        match self {
            AnyDevice::Sim(d) => d.open(name),
            AnyDevice::Real(d) => d.open(name),
            AnyDevice::Striped(d) => d.open(name),
        }
    }

    fn remove(&self, name: &str) -> Result<()> {
        match self {
            AnyDevice::Sim(d) => d.remove(name),
            AnyDevice::Real(d) => d.remove(name),
            AnyDevice::Striped(d) => d.remove(name),
        }
    }

    fn exists(&self, name: &str) -> bool {
        match self {
            AnyDevice::Sim(d) => d.exists(name),
            AnyDevice::Real(d) => d.exists(name),
            AnyDevice::Striped(d) => d.exists(name),
        }
    }

    fn list(&self) -> Vec<String> {
        match self {
            AnyDevice::Sim(d) => d.list(),
            AnyDevice::Real(d) => d.list(),
            AnyDevice::Striped(d) => d.list(),
        }
    }

    fn io_stats(&self) -> &IoStats {
        match self {
            AnyDevice::Sim(d) => d.io_stats(),
            AnyDevice::Real(d) => d.io_stats(),
            AnyDevice::Striped(d) => d.io_stats(),
        }
    }

    fn stats(&self) -> IoStatsSnapshot {
        match self {
            AnyDevice::Striped(d) => d.stats(),
            _ => self.io_stats().snapshot(),
        }
    }

    fn reset_stats(&self) {
        match self {
            AnyDevice::Striped(d) => d.reset_stats(),
            _ => self.io_stats().reset(),
        }
    }

    fn stripe_members(&self) -> usize {
        match self {
            AnyDevice::Striped(d) => d.stripe_members(),
            _ => 1,
        }
    }

    fn shard_view(&self, index: usize) -> Self {
        match self {
            AnyDevice::Striped(d) => AnyDevice::Striped(d.shard_view(index)),
            other => other.clone(),
        }
    }

    fn attach_io_client(&self) -> Option<IoClientGuard> {
        match self {
            AnyDevice::Striped(d) => d.attach_io_client(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_specs_parse_with_defaults() {
        assert_eq!("sim".parse::<DeviceSpec>().unwrap(), DeviceSpec::default());
        assert_eq!(
            "sim:nvme".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::sim(ModelId::Nvme)
        );
        assert_eq!(
            "sim:pmem:8192".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Sim {
                model: ModelId::Pmem,
                page_size: 8192
            }
        );
        assert_eq!(
            "sim::8192".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Sim {
                model: ModelId::Hdd7200,
                page_size: 8192
            }
        );
    }

    #[test]
    fn real_specs_parse_paths_and_page_sizes() {
        assert_eq!(
            "real".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Real {
                path: None,
                page_size: DEFAULT_PAGE_SIZE
            }
        );
        assert_eq!(
            "real:/mnt/bench".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Real {
                path: Some(PathBuf::from("/mnt/bench")),
                page_size: DEFAULT_PAGE_SIZE
            }
        );
        assert_eq!(
            "real:/mnt/bench:8192".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Real {
                path: Some(PathBuf::from("/mnt/bench")),
                page_size: 8192
            }
        );
        assert_eq!(
            "real::8192".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::Real {
                path: None,
                page_size: 8192
            }
        );
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for bad in [
            "",
            "disk",
            "sim:floppy",
            "sim:nvme:zero",
            "sim:nvme:0",
            "real:/p:big",
        ] {
            let err = bad.parse::<DeviceSpec>();
            assert!(err.is_err(), "{bad:?} should not parse");
        }
        assert!(matches!(
            "sim:floppy".parse::<DeviceSpec>(),
            Err(StorageError::UnknownDeviceModel(_))
        ));
        assert!(matches!(
            "disk".parse::<DeviceSpec>(),
            Err(StorageError::InvalidDeviceSpec { .. })
        ));
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "sim:hdd-7200",
            "sim:nvme",
            "sim:pmem:8192",
            "real",
            "real:/mnt/bench",
            "real:/mnt/bench:8192",
            "real::8192",
        ] {
            let spec: DeviceSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(spec.to_string().parse::<DeviceSpec>().unwrap(), spec);
        }
        // Non-canonical inputs normalize.
        assert_eq!(
            "sim".parse::<DeviceSpec>().unwrap().to_string(),
            "sim:hdd-7200"
        );
    }

    #[test]
    fn striped_specs_parse_in_both_forms() {
        assert_eq!(
            "striped:2:sim:nvme".parse::<DeviceSpec>().unwrap(),
            DeviceSpec::striped(2, DeviceSpec::sim(ModelId::Nvme))
        );
        assert_eq!(
            "striped:[sim:nvme,sim:hdd-7200]"
                .parse::<DeviceSpec>()
                .unwrap(),
            DeviceSpec::Striped {
                members: vec![
                    DeviceSpec::sim(ModelId::Nvme),
                    DeviceSpec::sim(ModelId::Hdd7200)
                ],
            }
        );
        // Member specs keep their own page-size grammar; whitespace around
        // the list separator is tolerated.
        assert_eq!(
            "striped:[sim:pmem:8192, real:/mnt/a]"
                .parse::<DeviceSpec>()
                .unwrap(),
            DeviceSpec::Striped {
                members: vec![
                    DeviceSpec::Sim {
                        model: ModelId::Pmem,
                        page_size: 8192
                    },
                    DeviceSpec::Real {
                        path: Some(PathBuf::from("/mnt/a")),
                        page_size: DEFAULT_PAGE_SIZE
                    },
                ],
            }
        );
        assert_eq!(
            "striped:4:sim:hdd-7200"
                .parse::<DeviceSpec>()
                .unwrap()
                .page_size(),
            DEFAULT_PAGE_SIZE
        );
    }

    #[test]
    fn striped_specs_round_trip_and_normalize() {
        for text in [
            "striped:2:sim:nvme",
            "striped:4:sim:hdd-7200",
            "striped:[sim:nvme,sim:hdd-7200]",
            "striped:[sim:nvme,real:/mnt/a]",
        ] {
            let spec: DeviceSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(spec.to_string().parse::<DeviceSpec>().unwrap(), spec);
        }
        // A homogeneous member list normalizes to the compact count form.
        assert_eq!(
            "striped:[sim:nvme,sim:nvme]"
                .parse::<DeviceSpec>()
                .unwrap()
                .to_string(),
            "striped:2:sim:nvme"
        );
    }

    #[test]
    fn bad_striped_specs_are_rejected_with_reasons() {
        for bad in [
            "striped",                      // no members at all
            "striped:[]",                   // empty member list
            "striped:[ ]",                  // still empty
            "striped:[sim:nvme",            // missing ']'
            "striped:0:sim:nvme",           // zero count
            "striped:two:sim:nvme",         // non-numeric count
            "striped:2",                    // count without a member
            "striped:2:striped:2:sim:nvme", // nested, count form
            "striped:[striped:2:sim:nvme]", // nested, list form
            "striped:[sim:floppy]",         // bad member model
        ] {
            assert!(
                bad.parse::<DeviceSpec>().is_err(),
                "{bad:?} should not parse"
            );
        }
        assert!(matches!(
            "striped:[striped:2:sim:nvme]".parse::<DeviceSpec>(),
            Err(StorageError::InvalidDeviceSpec { .. })
        ));
        assert!(matches!(
            "striped:[sim:floppy]".parse::<DeviceSpec>(),
            Err(StorageError::UnknownDeviceModel(_))
        ));
    }

    #[test]
    fn striped_build_produces_a_working_stripe() {
        let device = "striped:3:sim:nvme"
            .parse::<DeviceSpec>()
            .unwrap()
            .build()
            .unwrap();
        assert!(device.direct_io().is_none());
        assert_eq!(device.stripe_members(), 3);
        let striped = device.as_striped().expect("striped backend");
        assert_eq!(striped.members(), 3);
        let page = vec![5u8; device.page_size()];
        let mut f = device.create("x").unwrap();
        f.write_page(0, &page).unwrap();
        let mut buf = vec![0u8; device.page_size()];
        device.open("x").unwrap().read_page(0, &mut buf).unwrap();
        assert_eq!(buf, page);
        // Per-member counters fold into the device totals.
        let per_member: u64 = striped.member_stats().iter().map(|s| s.pages_total()).sum();
        assert_eq!(per_member, device.stats().pages_total());
        // Mismatched member page sizes fail at build time.
        assert!(matches!(
            "striped:[sim:nvme:4096,sim:nvme:8192]"
                .parse::<DeviceSpec>()
                .unwrap()
                .build(),
            Err(StorageError::BadStripe(_))
        ));
    }

    #[test]
    fn build_produces_working_devices() {
        let sim = DeviceSpec::sim(ModelId::Nvme).build().unwrap();
        assert!(sim.direct_io().is_none());
        let real = "real".parse::<DeviceSpec>().unwrap().build().unwrap();
        assert!(real.direct_io().is_some());
        for device in [&sim, &real] {
            let page = vec![7u8; device.page_size()];
            let mut f = device.create("x").unwrap();
            f.write_page(0, &page).unwrap();
            let mut buf = vec![0u8; device.page_size()];
            device.open("x").unwrap().read_page(0, &mut buf).unwrap();
            assert_eq!(buf, page);
        }
    }
}
