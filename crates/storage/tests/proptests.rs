//! Property-based tests for the storage substrate: forward and reverse run
//! files must round-trip arbitrary record sequences on both device
//! backends.

use proptest::prelude::*;
use twrs_storage::{
    DiskModel, ReverseRunReader, ReverseRunWriter, RunReader, RunWriter, SimDevice, StorageDevice,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward run files return exactly what was written, in order, for any
    /// page size and record count.
    #[test]
    fn forward_run_files_round_trip(
        values in prop::collection::vec(any::<u64>(), 0..2_000),
        page_size_pow in 5u32..9, // 32..256 bytes per page
    ) {
        let device = SimDevice::custom(1usize << page_size_pow, DiskModel::default());
        let mut writer = RunWriter::<u64>::create(&device, "run").unwrap();
        for v in &values {
            writer.push(v).unwrap();
        }
        prop_assert_eq!(writer.finish().unwrap(), values.len() as u64);

        let mut reader = RunReader::<u64>::open(&device, "run").unwrap();
        prop_assert_eq!(reader.len(), values.len() as u64);
        prop_assert_eq!(reader.read_all().unwrap(), values);
    }

    /// The Appendix A reverse-file format returns a decreasing input stream
    /// in ascending order, for any part-file size.
    #[test]
    fn reverse_run_files_round_trip(
        mut values in prop::collection::vec(any::<u64>(), 0..2_000),
        pages_per_file in 2u64..10,
    ) {
        values.sort_unstable_by(|a, b| b.cmp(a)); // decreasing input stream
        let device = SimDevice::custom(64, DiskModel::default());
        let mut writer =
            ReverseRunWriter::<u64>::with_pages_per_file(&device, "rev", pages_per_file).unwrap();
        for v in &values {
            writer.push(v).unwrap();
        }
        prop_assert_eq!(writer.finish().unwrap(), values.len() as u64);

        let mut reader = ReverseRunReader::<u64>::open(&device, "rev").unwrap();
        let mut expected = values;
        expected.reverse(); // ascending
        prop_assert_eq!(reader.read_all().unwrap(), expected);
    }

    /// Page files behave like an array of pages: the last write to an index
    /// wins and sparse gaps read back as zeroes.
    #[test]
    fn page_files_behave_like_a_page_array(
        writes in prop::collection::vec((0u64..32, any::<u8>()), 1..64),
    ) {
        let page_size = 128;
        let device = SimDevice::custom(page_size, DiskModel::default());
        let mut file = device.create("pages").unwrap();
        let mut expected = std::collections::HashMap::new();
        for (index, fill) in &writes {
            let page = vec![*fill; page_size];
            file.write_page(*index, &page).unwrap();
            expected.insert(*index, *fill);
        }
        let pages = file.num_pages();
        prop_assert_eq!(pages, writes.iter().map(|(i, _)| i + 1).max().unwrap());
        let mut buf = vec![0u8; page_size];
        for index in 0..pages {
            file.read_page(index, &mut buf).unwrap();
            let want = expected.get(&index).copied().unwrap_or(0);
            prop_assert!(buf.iter().all(|b| *b == want), "page {index} mismatch");
        }
    }
}
