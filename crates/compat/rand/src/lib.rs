//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Provides exactly what this workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] over
//! integer ranges. The generator is SplitMix64 — deterministic per seed,
//! statistically solid for workload synthesis and tie-breaking heuristics,
//! and trivially auditable. See `crates/compat/README.md`.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (the high half of a `u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Produces a value from a raw `u64` sample.
    fn from_sample(sample: u64) -> Self;
}

impl Standard for bool {
    fn from_sample(sample: u64) -> Self {
        // Use the high bit: the low bits of some generators are weaker.
        sample >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_sample(sample: u64) -> Self {
                sample as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn from_sample(sample: u64) -> Self {
        // 53 uniform bits in [0, 1).
        (sample >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                if span == 0 {
                    // Only possible when the range covers the whole domain
                    // of a 64-bit type (2^64 wraps to 0).
                    return <$t as Standard>::from_sample(rng.next_u64());
                }
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    return <$t as Standard>::from_sample(rng.next_u64());
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generator methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_sample(self.next_u64())
    }

    /// Returns a uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    ///
    /// Stands in for `rand::rngs::SmallRng`; like the real one it is *not*
    /// cryptographically secure and its output is allowed to differ between
    /// versions.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1i64..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = SmallRng::seed_from_u64(1);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((3_000..7_000).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
