//! Offline stand-in for the `criterion` crate.
//!
//! Source-compatible with the subset of the criterion 0.5 API this
//! workspace's benches use: benchmark groups, `Bencher::iter`,
//! [`BenchmarkId`], [`Throughput`], `criterion_group!` and
//! `criterion_main!`. Instead of criterion's statistical machinery it runs
//! a short calibrated wall-clock loop and prints mean time per iteration
//! (plus throughput when configured) — good enough for smoke runs and for
//! `cargo bench --no-run` compile gating. See `crates/compat/README.md`.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { id: name }
    }
}

/// Times a single benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records mean wall-clock time.
    ///
    /// The routine is warmed up once, then run for a small fixed iteration
    /// budget — a deliberate simplification of criterion's adaptive
    /// sampling that keeps `cargo bench` smoke runs fast.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        // Calibrate: aim for a handful of iterations on slow bodies and a
        // few thousand on fast ones, bounded by a total time budget.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(200);
        let iterations = (budget.as_nanos() / probe.as_nanos()).clamp(1, 2_000) as u64;

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.iterations == 0 {
            println!("{label:<50} (not run)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        let mut line = format!(
            "{label:<50} {:>12} /iter over {} iters",
            format_seconds(per_iter),
            self.iterations
        );
        match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                line.push_str(&format!("  ({:.3e} elem/s)", n as f64 / per_iter));
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                line.push_str(&format!("  ({:.3e} B/s)", n as f64 / per_iter));
            }
            _ => {}
        }
        println!("{line}");
    }
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count. Accepted for API compatibility; the stub's
    /// fixed iteration budget ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches(&label) {
            return self;
        }
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(&label, self.throughput);
        self
    }

    /// Runs `routine` with a borrowed input as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Finishes the group. (No-op in the stub; criterion prints summaries
    /// here.)
    pub fn finish(self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies the substring filter passed on the command line, mirroring
    /// `cargo bench -- <filter>`.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("── {name} ──");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let label = id.into().to_string();
        if self.matches(&label) {
            let mut bencher = Bencher::default();
            routine(&mut bencher);
            bencher.report(&label, None);
        }
        self
    }
}

/// Parses the arguments cargo passes to a `harness = false` bench binary.
///
/// Recognizes a positional substring filter; flags criterion understands
/// (`--bench`, `--test`, `--nocapture`, ...) are accepted and ignored so
/// `cargo bench`/`cargo test` invocations work unchanged.
#[doc(hidden)]
pub fn criterion_from_args() -> Criterion {
    let mut criterion = Criterion::default();
    for arg in std::env::args().skip(1) {
        if !arg.starts_with('-') {
            criterion = criterion.with_filter(arg);
        }
    }
    criterion
}

/// Declares a group function running each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::criterion_from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat");
        group.throughput(Throughput::Elements(16));
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..16u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_end_to_end() {
        let mut criterion = Criterion::default();
        benches(&mut criterion);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion::default().with_filter("no-such-bench");
        // Must not run the body at all: a panicking routine proves skipping.
        criterion
            .benchmark_group("g")
            .bench_function("skipped", |_| panic!("should not run"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
