//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, [`arbitrary::any`], integer range
//! strategies, tuple strategies and [`collection::vec`].
//!
//! Semantics: each property runs for [`test_runner::ProptestConfig::cases`]
//! pseudo-random cases seeded deterministically from the test's module path
//! and name, so failures reproduce across runs. There is **no shrinking** —
//! a failing case reports the panic from the property body directly. See
//! `crates/compat/README.md`.

pub mod test_runner {
    //! Configuration and the deterministic per-case RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of pseudo-random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest default. Properties in this workspace that
            // are expensive override it downward via `with_cases`.
            Self { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from a test identifier and a
    /// case index, so every run of the suite exercises the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test identified by `ident`.
        pub fn for_case(ident: &str, case: u32) -> Self {
            // FNV-1a over the identifier, mixed with the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in ident.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: hash ^ (u64::from(case) << 32) ^ u64::from(case),
            }
        }

        /// Next raw 64-bit sample.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges and tuples.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy simply draws a value from the deterministic case RNG.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Strategy wrapper produced by [`crate::arbitrary::any`].
    #[derive(Debug)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait backing it.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open) and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (plain `assert!` here: failing
/// cases panic immediately instead of being shrunk).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests.
///
/// Supports the header form
/// `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] .. }`
/// and bodies of `#[test] fn name(pattern in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each property item into a
/// test function running `config.cases` seeded cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pattern:pat_param in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut case_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $pattern =
                        $crate::strategy::Strategy::generate(&($strategy), &mut case_rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(value in 10u64..20, signed in -5i64..=5) {
            prop_assert!((10..20).contains(&value));
            prop_assert!((-5..=5).contains(&signed));
        }

        #[test]
        fn vec_lengths_respect_range(values in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&values.len()));
        }

        #[test]
        fn tuples_compose(pair in (0u32..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(value in any::<u8>()) {
            prop_assert!(u16::from(value) < 256);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
