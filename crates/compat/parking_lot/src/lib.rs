//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the one type this workspace uses — [`Mutex`] with a
//! non-poisoning `lock()` — on top of `std::sync::Mutex`. See
//! `crates/compat/README.md` for why this exists.

use std::sync::MutexGuard;

/// A mutual-exclusion primitive whose `lock` does not return a poison
/// `Result`, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std::sync::Mutex::lock` this never fails: a poisoned lock
    /// (a panic while held) is ignored, exactly as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}
