//! Golden deterministic-I/O counters: one small scenario per generator.
//!
//! The CI baseline gate (`bench_suite --check-baseline` against
//! `crates/bench/baseline.json`) pins the whole quick matrix, but it only
//! runs in CI. These tests pin the exact page, seek and run counts of one
//! scenario per run-generation algorithm so a plain `cargo test -q` catches
//! accounting or algorithmic drift too — on any machine, because the
//! simulated device makes the counters pure functions of the scenario.
//!
//! The pinned values are intentionally the same as the corresponding
//! baseline entries: if one of these tests fails, the baseline gate would
//! fail for the same reason, and both must be updated in the same PR
//! (`cargo run --release --bin bench_suite -- --quick --update-baseline`).

use twrs_bench::suite::{
    run_scenario, DeterministicCounters, GeneratorKind, RecordType, Scenario, SinkMode,
};
use twrs_storage::ModelId;
use twrs_workloads::DistributionKind;

fn base_scenario(generator: GeneratorKind, sink: SinkMode) -> Scenario {
    Scenario {
        generator,
        distribution: DistributionKind::RandomUniform,
        records: 6_000,
        memory: 300,
        threads: 1,
        record_type: RecordType::Record,
        sink,
        device: ModelId::Hdd7200,
        disks: 1,
        seed: 42,
    }
}

fn golden(generator: GeneratorKind, sink: SinkMode, expected: DeterministicCounters) {
    let scenario = base_scenario(generator, sink);
    let result = run_scenario(&scenario).expect("scenario runs");
    assert_eq!(
        result.deterministic(),
        expected,
        "deterministic counters drifted for {} — if intentional, update this \
         test AND crates/bench/baseline.json in the same PR",
        scenario.id()
    );
}

#[test]
fn rs_random_counters_are_pinned() {
    golden(
        GeneratorKind::Rs,
        SinkMode::File,
        DeterministicCounters {
            pages_read: 91,
            pages_written: 104,
            final_pass_pages_written: 26,
            runs: 11,
            seeks: Some(45),
        },
    );
}

#[test]
fn lss_random_counters_are_pinned() {
    golden(
        GeneratorKind::Lss,
        SinkMode::File,
        DeterministicCounters {
            pages_read: 111,
            pages_written: 134,
            final_pass_pages_written: 26,
            runs: 20,
            seeks: Some(83),
        },
    );
}

#[test]
fn twrs_random_counters_are_pinned() {
    golden(
        GeneratorKind::Twrs,
        SinkMode::File,
        DeterministicCounters {
            pages_read: 136,
            pages_written: 159,
            final_pass_pages_written: 26,
            runs: 11,
            seeks: Some(81),
        },
    );
}

#[test]
fn streamed_sorts_write_zero_final_pass_pages() {
    // The headline invariant of the sink axis, pinned per generator: a
    // streamed sort never pays the final write pass its file twin pays,
    // and its generation/run structure is identical to the twin's.
    for generator in GeneratorKind::all() {
        let file = run_scenario(&base_scenario(generator, SinkMode::File)).unwrap();
        let stream = run_scenario(&base_scenario(generator, SinkMode::Stream)).unwrap();
        let file_det = file.deterministic();
        let stream_det = stream.deterministic();
        assert_eq!(
            stream_det.final_pass_pages_written, 0,
            "{:?}: streamed final pass must write nothing",
            generator
        );
        assert_eq!(file_det.final_pass_pages_written, 26, "{generator:?}");
        assert_eq!(stream_det.runs, file_det.runs, "{generator:?}");
        // The stream's phase totals stop at the suspension point: exactly
        // the file twin's writes minus the final pass.
        assert_eq!(
            stream_det.pages_written,
            file_det.pages_written - file_det.final_pass_pages_written,
            "{generator:?}"
        );
    }
}

/// The thread count a scenario id encodes (`...-t4`, `...-t1-stream`),
/// or `None` for ids without a `-t<n>` segment (service scenarios).
fn threads_in_id(id: &str) -> Option<u64> {
    for (pos, _) in id.match_indices("-t") {
        let rest = &id[pos + 2..];
        let digits: &str = &rest[..rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit())
            .map_or(rest.len(), |(i, _)| i)];
        let terminated = rest.len() == digits.len() || rest.as_bytes()[digits.len()] == b'-';
        if !digits.is_empty() && terminated {
            return digits.parse().ok();
        }
    }
    None
}

/// The stripe width a scenario id encodes (`...-t4-d4`), or `None` for
/// single-disk ids without a `-d<n>` segment.
fn disks_in_id(id: &str) -> Option<u64> {
    for (pos, _) in id.match_indices("-d") {
        let rest = &id[pos + 2..];
        let digits: &str = &rest[..rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit())
            .map_or(rest.len(), |(i, _)| i)];
        let terminated = rest.len() == digits.len() || rest.as_bytes()[digits.len()] == b'-';
        if !digits.is_empty() && terminated {
            return digits.parse().ok();
        }
    }
    None
}

#[test]
fn striped_twrs_counters_are_pinned() {
    // The striped slice's headline: 4 shards on a 4-disk stripe report
    // concrete seeks again. Pinned to the committed baseline entry for
    // 2wrs-random-record-n6000-m300-t4-d4.
    let scenario = Scenario {
        threads: 4,
        disks: 4,
        ..base_scenario(GeneratorKind::Twrs, SinkMode::File)
    };
    let result = run_scenario(&scenario).expect("scenario runs");
    assert_eq!(
        result.deterministic(),
        DeterministicCounters {
            pages_read: 257,
            pages_written: 309,
            final_pass_pages_written: 26,
            runs: 45,
            seeks: Some(189),
        },
        "deterministic counters drifted for {} — if intentional, update this \
         test AND crates/bench/baseline.json in the same PR",
        scenario.id()
    );
    // The per-disk breakdown folds exactly into those totals.
    assert_eq!(result.per_disk.len(), 4);
    assert_eq!(
        result.per_disk.iter().map(|d| d.seeks).sum::<u64>(),
        189,
        "{}: member seeks fold into the pinned total",
        scenario.id()
    );
}

#[test]
fn baseline_pins_seeks_exactly_for_single_threaded_scenarios() {
    // The `seeks` field is an explicit Option: `null` encodes "not
    // deterministic for this scenario" and nothing else (see the
    // `suite::baseline` docs). Enforce the contract on the committed file:
    // every single-threaded scenario pins a concrete seek count, every
    // multi-threaded single-disk one pins null, every striped scenario
    // (`-d<n>` ids) pins a concrete count again — shard-pinned spills and
    // the per-disk reduction keep every stripe head single-reader — and
    // every service scenario pins a concrete sum (its jobs are
    // single-threaded on private device scopes).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baseline.json");
    let text = std::fs::read_to_string(path).expect("committed baseline exists");
    let baseline = twrs_bench::suite::Json::parse(&text).expect("baseline parses");
    let scenarios = baseline
        .get("scenarios")
        .and_then(|s| s.as_obj())
        .expect("scenarios object");
    let mut single = 0;
    let mut multi = 0;
    let mut striped = 0;
    let mut service = 0;
    for (id, entry) in scenarios {
        let seeks = entry.get("seeks").expect("seeks field is always present");
        let pinned = seeks.as_u64();
        if id.starts_with("service-") {
            service += 1;
            assert!(pinned.is_some(), "{id}: service seeks are deterministic");
            continue;
        }
        if disks_in_id(id).is_some() {
            striped += 1;
            assert!(
                threads_in_id(id).is_some_and(|t| t > 1),
                "{id}: the striped slice exists to pin multi-threaded seeks"
            );
            assert!(
                pinned.is_some(),
                "{id}: striped scenarios keep every stripe head single-reader \
                 and must pin a concrete seek count"
            );
            continue;
        }
        match threads_in_id(id) {
            Some(1) => {
                single += 1;
                assert!(
                    pinned.is_some(),
                    "{id}: single-threaded scenarios must pin a concrete seek count"
                );
            }
            Some(_) => {
                multi += 1;
                assert!(
                    pinned.is_none(),
                    "{id}: multi-threaded seeks are scheduler-dependent and must be null"
                );
            }
            None => panic!("{id}: id encodes no thread count"),
        }
    }
    assert!(
        single > 0 && multi > 0 && striped > 0 && service > 0,
        "all four classes pinned"
    );
}

#[test]
fn golden_scenarios_match_the_committed_baseline() {
    // The values pinned above must agree with crates/bench/baseline.json,
    // so the off-CI golden tests and the CI gate can never drift apart.
    // The baseline lives next to this crate; CARGO_MANIFEST_DIR makes the
    // lookup independent of the test's working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baseline.json");
    let text = std::fs::read_to_string(path).expect("committed baseline exists");
    let baseline = twrs_bench::suite::Json::parse(&text).expect("baseline parses");
    let scenarios = baseline.get("scenarios").expect("scenarios object");
    for (slug, pinned) in [
        ("rs", (91, 104, 11, 45)),
        ("lss", (111, 134, 20, 83)),
        ("2wrs", (136, 159, 11, 81)),
    ] {
        let id = format!("{slug}-random-record-n6000-m300-t1");
        let entry = scenarios.get(&id).unwrap_or_else(|| panic!("{id} pinned"));
        let get = |k: &str| entry.get(k).and_then(|v| v.as_u64()).unwrap();
        assert_eq!(
            (
                get("pages_read"),
                get("pages_written"),
                get("runs"),
                get("seeks")
            ),
            (pinned.0, pinned.1, pinned.2, pinned.3),
            "{id}: golden test and baseline.json disagree"
        );
        assert_eq!(
            get("final_pass_pages_written"),
            26,
            "{id}: final-pass pin and baseline.json disagree"
        );
        // And the stream twin is pinned to zero final-pass pages — the
        // invariant `--check-baseline` gates in CI.
        let stream_entry = scenarios
            .get(&format!("{id}-stream"))
            .unwrap_or_else(|| panic!("{id}-stream pinned"));
        assert_eq!(
            stream_entry
                .get("final_pass_pages_written")
                .and_then(|v| v.as_u64()),
            Some(0),
            "{id}-stream: the baseline must pin zero final-pass pages"
        );
    }
}
