//! Table 2.1 and the merge-phase comparison: polyphase merge scheduling and
//! polyphase vs multi-pass k-way merging on the same run set.

use crate::report::{fmt_duration, Table};
use std::time::Instant;
use twrs_extsort::{
    polyphase_merge, polyphase_schedule, KWayMerger, LoadSortStore, MergeConfig, RunGenerator,
};
use twrs_storage::ModelId;
use twrs_storage::{SimDevice, SpillNamer, StorageDevice};
use twrs_workloads::{Distribution, DistributionKind, Record};

/// Renders the polyphase schedule of Table 2.1 for the paper's example
/// starting distribution `{8, 10, 3, 0, 8, 11}`.
pub fn table_2_1() -> Table {
    let steps = polyphase_schedule(&[8, 10, 3, 0, 8, 11]);
    let mut table = Table::new(
        "Table 2.1 — polyphase merge with 6 tapes",
        &[
            "step", "tape 1", "tape 2", "tape 3", "tape 4", "tape 5", "tape 6",
        ],
    );
    for (i, tapes) in steps.iter().enumerate() {
        let mut row = vec![format!("Step {i}")];
        row.extend(tapes.iter().map(u64::to_string));
        table.row(row);
    }
    table
}

/// One merge-strategy measurement.
#[derive(Debug, Clone, Copy)]
pub struct MergeComparison {
    /// Number of initial runs merged.
    pub runs: usize,
    /// Simulated + CPU time of the multi-pass k-way merge (fan-in 10).
    pub kway_time: std::time::Duration,
    /// Simulated + CPU time of the polyphase merge with 6 tapes.
    pub polyphase_time: std::time::Duration,
    /// Seeks of the k-way merge.
    pub kway_seeks: u64,
    /// Seeks of the polyphase merge.
    pub polyphase_seeks: u64,
}

/// Merges the same run set with both strategies and reports their costs.
pub fn compare(runs: usize, records_per_run: u64) -> MergeComparison {
    let build = |device: &SimDevice, namer: &SpillNamer| {
        let mut generator = LoadSortStore::new(records_per_run as usize);
        let mut input = Distribution::new(
            DistributionKind::RandomUniform,
            records_per_run * runs as u64,
            3,
        )
        .records();
        generator
            .generate(device, namer, &mut input)
            // twrs-lint: allow(no-lib-panic) bench drivers treat device failure as fatal by design
            .expect("run generation succeeds")
            .runs
    };

    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("cmp-kway");
    let run_set = build(&device, &namer);
    device.reset_stats();
    let started = Instant::now();
    KWayMerger::new(MergeConfig {
        fan_in: 10,
        read_ahead_records: 256,
    })
    .merge_into::<_, Record>(&device, &namer, run_set, "kway")
    // twrs-lint: allow(no-lib-panic) bench drivers treat device failure as fatal by design
    .expect("k-way merge succeeds");
    let kway_cpu = started.elapsed();
    let kway_stats = device.stats();

    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("cmp-poly");
    let run_set = build(&device, &namer);
    device.reset_stats();
    let started = Instant::now();
    polyphase_merge::<_, Record>(&device, &namer, run_set, 6, "poly")
        // twrs-lint: allow(no-lib-panic) bench drivers treat device failure as fatal by design
        .expect("polyphase merge succeeds");
    let poly_cpu = started.elapsed();
    let poly_stats = device.stats();

    MergeComparison {
        runs,
        kway_time: kway_stats.simulated_time() + kway_cpu,
        polyphase_time: poly_stats.simulated_time() + poly_cpu,
        kway_seeks: kway_stats.counters.seeks,
        polyphase_seeks: poly_stats.counters.seeks,
    }
}

/// Renders the comparison.
pub fn render_comparison(comparison: &MergeComparison) -> Table {
    let mut table = Table::new(
        format!("Merge strategies over {} runs", comparison.runs),
        &["strategy", "time", "seeks"],
    );
    table.row(vec![
        "k-way (fan-in 10)".into(),
        fmt_duration(comparison.kway_time),
        comparison.kway_seeks.to_string(),
    ]);
    table.row(vec![
        "polyphase (6 tapes)".into(),
        fmt_duration(comparison.polyphase_time),
        comparison.polyphase_seeks.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_1_matches_the_paper() {
        let table = table_2_1();
        let text = table.render();
        // Seven rows: the initial state plus six steps.
        assert_eq!(table.len(), 7);
        assert!(text.contains("Step 0"));
        assert!(text.contains("Step 6"));
    }

    #[test]
    fn both_merge_strategies_run() {
        let comparison = compare(12, 512);
        assert!(comparison.kway_seeks > 0);
        assert!(comparison.polyphase_seeks > 0);
        let table = render_comparison(&comparison);
        assert_eq!(table.len(), 2);
    }
}
