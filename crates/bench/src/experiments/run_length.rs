//! Table 5.13 / conference Table 1: average run length relative to the
//! memory size for RS, Load-Sort-Store and three 2WRS configurations on the
//! six input distributions.

use crate::report::{fmt_relative, Table};
use crate::scale::Scale;
use twrs_analysis::theory;
use twrs_core::{TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::{LoadSortStore, ReplacementSelection, RunGenerator, RunSet};
use twrs_storage::ModelId;
use twrs_storage::{SimDevice, SpillNamer};
use twrs_workloads::{Distribution, DistributionKind};

/// One measured cell of the table.
#[derive(Debug, Clone)]
pub struct RunLengthRow {
    /// Input distribution.
    pub kind: DistributionKind,
    /// Relative run length of Load-Sort-Store (always ≈ 1).
    pub lss: f64,
    /// Relative run length of classic replacement selection.
    pub rs: f64,
    /// Relative run length of 2WRS configuration 1 (input buffer, 0.02 %).
    pub twrs_cfg1: f64,
    /// Relative run length of 2WRS configuration 2 (both buffers, 20 %).
    pub twrs_cfg2: f64,
    /// Relative run length of 2WRS configuration 3 (both buffers, 2 %,
    /// the recommended configuration).
    pub twrs_cfg3: f64,
    /// The paper's analytical expectation for RS.
    pub rs_expected: f64,
    /// The paper's analytical expectation for a good 2WRS configuration.
    pub twrs_expected: f64,
}

fn measure<G: RunGenerator>(
    mut generator: G,
    kind: DistributionKind,
    scale: Scale,
    seed: u64,
) -> f64 {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("runlen");
    let mut input = Distribution::new(kind, scale.records, seed).records();
    let set: RunSet = generator
        .generate(&device, &namer, &mut input)
        // twrs-lint: allow(no-lib-panic) bench drivers treat device failure as fatal by design
        .expect("run generation succeeds");
    set.relative_run_length(generator.memory_records())
}

/// Runs the whole table at the given scale.
pub fn measure_table(scale: Scale) -> Vec<RunLengthRow> {
    DistributionKind::paper_set()
        .into_iter()
        .map(|kind| measure_row(kind, scale))
        .collect()
}

/// Runs one row (one input distribution) of Table 5.13.
pub fn measure_row(kind: DistributionKind, scale: Scale) -> RunLengthRow {
    let seed = 42;
    let memory = scale.memory;
    RunLengthRow {
        kind,
        lss: measure(LoadSortStore::new(memory), kind, scale, seed),
        rs: measure(ReplacementSelection::new(memory), kind, scale, seed),
        twrs_cfg1: measure(
            TwoWayReplacementSelection::new(TwrsConfig::table_5_13_cfg1(memory)),
            kind,
            scale,
            seed,
        ),
        twrs_cfg2: measure(
            TwoWayReplacementSelection::new(TwrsConfig::table_5_13_cfg2(memory)),
            kind,
            scale,
            seed,
        ),
        twrs_cfg3: measure(
            TwoWayReplacementSelection::new(TwrsConfig::table_5_13_cfg3(memory)),
            kind,
            scale,
            seed,
        ),
        rs_expected: theory::rs_expected_relative_run_length(kind, scale.records, memory)
            .relative_run_length(scale.records, memory),
        twrs_expected: theory::twrs_expected_relative_run_length(kind, scale.records, memory)
            .relative_run_length(scale.records, memory),
    }
}

/// Renders the measured rows as the paper-style table.
pub fn render(rows: &[RunLengthRow], scale: Scale) -> Table {
    let mut table = Table::new(
        format!(
            "Table 5.13 — average run length / memory ({} records, {} memory)",
            scale.records, scale.memory
        ),
        &[
            "input",
            "LSS",
            "RS",
            "2WRS cfg1",
            "2WRS cfg2",
            "2WRS cfg3",
            "RS paper",
            "2WRS paper",
        ],
    );
    for row in rows {
        table.row(vec![
            row.kind.label().to_string(),
            fmt_relative(row.lss),
            fmt_relative(row.rs),
            fmt_relative(row.twrs_cfg1),
            fmt_relative(row.twrs_cfg2),
            fmt_relative(row.twrs_cfg3),
            fmt_relative(row.rs_expected),
            fmt_relative(row.twrs_expected),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_the_paper_at_quick_scale() {
        let scale = Scale::quick();
        let rows = measure_table(scale);
        assert_eq!(rows.len(), 6);
        let by_kind = |label: &str| {
            rows.iter()
                .find(|r| r.kind.label() == label)
                .expect("row present")
        };

        // Sorted: every algorithm based on replacement selection produces a
        // single run (LSS stays at 1).
        let sorted = by_kind("sorted");
        assert!(sorted.rs > 10.0);
        assert!(sorted.twrs_cfg3 > 10.0);
        assert!((sorted.lss - 1.0).abs() < 0.05);

        // Reverse sorted: the headline result — RS collapses to 1.0 while
        // 2WRS produces a single run.
        let reverse = by_kind("reverse-sorted");
        assert!((reverse.rs - 1.0).abs() < 0.1);
        assert!(reverse.twrs_cfg3 > 10.0);

        // Random: RS and 2WRS are equivalent at about twice the memory.
        let random = by_kind("random");
        assert!((1.5..2.5).contains(&random.rs));
        assert!((1.4..2.5).contains(&random.twrs_cfg3));

        // Mixed: 2WRS with the victim buffer beats RS by a wide margin.
        let mixed = by_kind("mixed");
        assert!(mixed.twrs_cfg3 > 2.0 * mixed.rs);
        let imbalanced = by_kind("mixed-imbalanced");
        assert!(imbalanced.twrs_cfg3 > 2.0 * imbalanced.rs);

        let table = render(&rows, scale);
        assert_eq!(table.len(), 6);
    }
}
