//! Figure 3.8: numerical solution of the replacement-selection model.
//!
//! The density of the memory contents starts uniform (`m(x, 0) = 1`) and
//! converges to the stable profile `2 − 2x` within a few runs; the run
//! length converges to twice the memory. The experiment prints the density
//! sampled at a handful of positions after each run, which is the tabular
//! equivalent of the four panels of Figure 3.8.

use crate::report::Table;
use twrs_analysis::model::{density_rms_distance, SnowplowModel, SnowplowSnapshot};

/// Runs the model for `runs` runs on a `cells`-cell grid.
pub fn simulate(cells: usize, runs: usize) -> Vec<SnowplowSnapshot> {
    SnowplowModel::uniform(cells).simulate(runs)
}

/// Renders the snapshots: one row per run with the density at a few sample
/// points, the run length and the distance to the stable profile.
pub fn render(snapshots: &[SnowplowSnapshot]) -> Table {
    let mut table = Table::new(
        "Figure 3.8 — density of memory contents after each run (uniform input)",
        &[
            "run",
            "m(0.1)",
            "m(0.3)",
            "m(0.5)",
            "m(0.7)",
            "m(0.9)",
            "run length",
            "rms dist to 2-2x",
        ],
    );
    let cells = snapshots
        .first()
        .map(|s| s.density.len())
        .unwrap_or_default();
    let model = SnowplowModel::uniform(cells.max(8));
    let stable = model.stable_profile();
    for snapshot in snapshots {
        let at = |x: f64| snapshot.density[((x * cells as f64) as usize).min(cells - 1)];
        table.row(vec![
            snapshot.run.to_string(),
            format!("{:.2}", at(0.1)),
            format!("{:.2}", at(0.3)),
            format!("{:.2}", at(0.5)),
            format!("{:.2}", at(0.7)),
            format!("{:.2}", at(0.9)),
            format!("{:.2}", snapshot.run_length),
            format!("{:.3}", density_rms_distance(&snapshot.density, &stable)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_converge_and_render() {
        let snapshots = simulate(128, 3);
        assert_eq!(snapshots.len(), 4);
        let table = render(&snapshots);
        assert_eq!(table.len(), 4);
        // The density near x = 0.1 grows toward 1.8 and near x = 0.9 falls
        // toward 0.2 (the 2 − 2x profile).
        let last = snapshots.last().unwrap();
        let low = last.density[12];
        let high = last.density[115];
        assert!(
            low > high,
            "profile should decrease with x ({low} vs {high})"
        );
    }
}
