//! The experiment implementations, one module per paper artefact family.

pub mod anova;
pub mod buffer_sweep;
pub mod fan_in;
pub mod merge_phase;
pub mod model;
pub mod run_length;
pub mod timing;

use twrs_workloads::DistributionKind;

/// Parses a distribution name as used by the experiment binaries.
pub fn parse_distribution(name: &str) -> Option<DistributionKind> {
    Some(match name {
        "sorted" => DistributionKind::Sorted,
        "reverse" | "reverse-sorted" => DistributionKind::ReverseSorted,
        "alternating" => DistributionKind::Alternating { sections: 50 },
        "random" => DistributionKind::RandomUniform,
        "mixed" | "mixed-balanced" => DistributionKind::MixedBalanced,
        "mixed-imbalanced" => DistributionKind::MixedImbalanced {
            descending_per_ascending: 3,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_names_round_trip() {
        for kind in DistributionKind::paper_set() {
            let parsed = parse_distribution(kind.label()).unwrap();
            assert_eq!(parsed.label(), kind.label());
        }
        assert!(parse_distribution("bogus").is_none());
    }
}
