//! Figure 5.4: run length relative to memory as a function of the buffer
//! size, for random input.
//!
//! The paper finds a linear correlation: dedicating x % of the memory to
//! the buffers reduces the run length by about x %, because for random
//! input the buffers cannot help and only shrink the heaps.

use crate::report::{fmt_relative, Table};
use crate::scale::Scale;
use twrs_core::{BufferSetup, TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::RunGenerator;
use twrs_storage::ModelId;
use twrs_storage::{SimDevice, SpillNamer};
use twrs_workloads::{Distribution, DistributionKind};

/// One measured buffer-size point.
#[derive(Debug, Clone, Copy)]
pub struct BufferSweepPoint {
    /// Fraction of memory dedicated to the buffers.
    pub buffer_fraction: f64,
    /// Measured relative run length on random input.
    pub relative_run_length: f64,
}

/// The buffer fractions of the paper's factor β (§5.2) plus a finer sweep up
/// to 20 %.
pub fn paper_fractions() -> Vec<f64> {
    vec![0.0002, 0.002, 0.01, 0.02, 0.05, 0.1, 0.2]
}

/// Measures the sweep at the given scale.
pub fn measure(scale: Scale, fractions: &[f64]) -> Vec<BufferSweepPoint> {
    fractions
        .iter()
        .map(|fraction| {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let namer = SpillNamer::new("bufsweep");
            let config =
                TwrsConfig::recommended(scale.memory).with_buffers(BufferSetup::Both, *fraction);
            let mut generator = TwoWayReplacementSelection::new(config);
            let mut input =
                Distribution::new(DistributionKind::RandomUniform, scale.records, 5).records();
            let set = generator
                .generate(&device, &namer, &mut input)
                // twrs-lint: allow(no-lib-panic) bench drivers treat device failure as fatal by design
                .expect("run generation succeeds");
            BufferSweepPoint {
                buffer_fraction: *fraction,
                relative_run_length: set.relative_run_length(scale.memory),
            }
        })
        .collect()
}

/// Renders the sweep as a table.
pub fn render(points: &[BufferSweepPoint]) -> Table {
    let mut table = Table::new(
        "Figure 5.4 — run length vs buffer size (random input)",
        &["buffer size (% of memory)", "run length / memory"],
    );
    for p in points {
        table.row(vec![
            format!("{:.2}%", p.buffer_fraction * 100.0),
            fmt_relative(p.relative_run_length),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_buffers_do_not_help_random_input() {
        let scale = Scale::quick();
        let points = measure(scale, &[0.002, 0.2]);
        assert_eq!(points.len(), 2);
        let small = points[0].relative_run_length;
        let large = points[1].relative_run_length;
        // Figure 5.4: the run length decreases as the buffers grow (the
        // heaps shrink); allow a little measurement noise.
        assert!(
            large <= small * 1.05,
            "20% buffers ({large:.2}) should not beat 0.2% buffers ({small:.2})"
        );
        // And both stay in the replacement-selection ballpark.
        assert!(small > 1.2 && large > 1.0);
        let table = render(&points);
        assert_eq!(table.len(), 2);
    }
}
