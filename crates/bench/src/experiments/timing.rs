//! Figures 6.2–6.7: run-generation and total sorting time of RS vs 2WRS.
//!
//! The paper plots, for each input distribution, the time of the
//! run-generation phase and of the whole sort (run generation plus merge) as
//! the available memory or the input size grows. The experiments here use
//! the simulated device, so the reported time is the modelled I/O time plus
//! the measured CPU time of each phase — deterministic across machines and
//! faithful to the paper's trends (who wins and by how much), though not to
//! its absolute seconds.

use crate::report::{fmt_duration, Table};
use std::time::Duration;
use twrs_core::{TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::{ExternalSorter, MergeConfig, ReplacementSelection, RunGenerator, SorterConfig};
use twrs_storage::ModelId;
use twrs_storage::SimDevice;
use twrs_workloads::{Distribution, DistributionKind};

/// Which figure of Chapter 6 to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingFigure {
    /// Figure 6.2: random input, sweep the memory size.
    RandomVsMemory,
    /// Figure 6.3: random input, sweep the input size.
    RandomVsInput,
    /// Figure 6.4: mixed input, sweep the memory size.
    MixedVsMemory,
    /// Figure 6.5: mixed input, sweep the input size.
    MixedVsInput,
    /// Figure 6.6: alternating input, sweep the number of sections.
    AlternatingSections,
    /// Figure 6.7: reverse-sorted input, sweep the input size.
    ReverseVsInput,
}

impl TimingFigure {
    /// All figures, in paper order.
    pub fn all() -> [TimingFigure; 6] {
        [
            TimingFigure::RandomVsMemory,
            TimingFigure::RandomVsInput,
            TimingFigure::MixedVsMemory,
            TimingFigure::MixedVsInput,
            TimingFigure::AlternatingSections,
            TimingFigure::ReverseVsInput,
        ]
    }

    /// The paper figure number.
    pub fn figure_number(&self) -> &'static str {
        match self {
            TimingFigure::RandomVsMemory => "6.2",
            TimingFigure::RandomVsInput => "6.3",
            TimingFigure::MixedVsMemory => "6.4",
            TimingFigure::MixedVsInput => "6.5",
            TimingFigure::AlternatingSections => "6.6",
            TimingFigure::ReverseVsInput => "6.7",
        }
    }

    /// Parses `6.2`..`6.7`.
    pub fn parse(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|f| f.figure_number() == name)
    }
}

/// One point of a timing figure: both algorithms measured at one x value.
#[derive(Debug, Clone, Copy)]
pub struct TimingPoint {
    /// The x axis value (memory in records, input size in records, or the
    /// number of sections, depending on the figure).
    pub x: u64,
    /// RS run-generation time.
    pub rs_run: Duration,
    /// RS total sorting time.
    pub rs_total: Duration,
    /// 2WRS run-generation time.
    pub twrs_run: Duration,
    /// 2WRS total sorting time.
    pub twrs_total: Duration,
    /// Number of runs RS generated.
    pub rs_runs: usize,
    /// Number of runs 2WRS generated.
    pub twrs_runs: usize,
}

impl TimingPoint {
    /// The total-time speedup of 2WRS over RS (>1 means 2WRS is faster).
    pub fn speedup(&self) -> f64 {
        self.rs_total.as_secs_f64() / self.twrs_total.as_secs_f64().max(1e-9)
    }
}

fn sort_with<G: RunGenerator>(
    generator: G,
    kind: DistributionKind,
    records: u64,
    fan_in: usize,
) -> (Duration, Duration, usize) {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let config = SorterConfig {
        merge: MergeConfig {
            fan_in,
            // A generous per-run read-ahead (16 KiB per run), mirroring the
            // paper's per-run input buffers, so the simulated merge is not
            // artificially seek-bound.
            read_ahead_records: 1_024,
        },
        verify: false,
    };
    let mut sorter = ExternalSorter::with_config(generator, config);
    let mut input = Distribution::new(kind, records, 11).records();
    let report = sorter
        .sort_iter(&device, &mut input, "sorted")
        // twrs-lint: allow(no-lib-panic) bench drivers treat device failure as fatal by design
        .expect("sort succeeds");
    (
        report.run_generation.modelled_total(),
        report.total_modelled(),
        report.num_runs,
    )
}

fn measure_point(kind: DistributionKind, records: u64, memory: usize, x: u64) -> TimingPoint {
    // The fan-in of 10 found optimal in §6.1.1 is used for every timing
    // experiment, as in the paper.
    let fan_in = 10;
    let (rs_run, rs_total, rs_runs) =
        sort_with(ReplacementSelection::new(memory), kind, records, fan_in);
    let (twrs_run, twrs_total, twrs_runs) = sort_with(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(memory)),
        kind,
        records,
        fan_in,
    );
    TimingPoint {
        x,
        rs_run,
        rs_total,
        twrs_run,
        twrs_total,
        rs_runs,
        twrs_runs,
    }
}

/// Runs one timing figure. `records` and `memory` set the baseline scale;
/// the figure's own sweep multiplies or divides them as the paper does
/// (memory swept over three orders of magnitude, input size over one).
pub fn measure(figure: TimingFigure, records: u64, memory: usize) -> Vec<TimingPoint> {
    match figure {
        TimingFigure::RandomVsMemory | TimingFigure::MixedVsMemory => {
            let kind = if figure == TimingFigure::RandomVsMemory {
                DistributionKind::RandomUniform
            } else {
                DistributionKind::MixedBalanced
            };
            // Memory from records/1000 to records/10 (the paper's 1 GB with
            // 1k–1M records of memory).
            [1_000u64, 250, 100, 25, 10]
                .into_iter()
                .map(|divisor| {
                    let mem = ((records / divisor) as usize).max(16);
                    measure_point(kind, records, mem, mem as u64)
                })
                .collect()
        }
        TimingFigure::RandomVsInput | TimingFigure::MixedVsInput | TimingFigure::ReverseVsInput => {
            let kind = match figure {
                TimingFigure::RandomVsInput => DistributionKind::RandomUniform,
                TimingFigure::MixedVsInput => DistributionKind::MixedBalanced,
                _ => DistributionKind::ReverseSorted,
            };
            // Input from 25 % to 100 % of the configured size (the paper's
            // 100 MB – 1 GB).
            [25u64, 50, 100]
                .into_iter()
                .map(|percent| {
                    let n = (records * percent / 100).max(1_000);
                    measure_point(kind, n, memory, n)
                })
                .collect()
        }
        TimingFigure::AlternatingSections => {
            // Figure 6.6 sweeps the number of sorted/reverse-sorted sections
            // at fixed input and memory.
            [1u32, 2, 5, 10, 25, 50, 100]
                .into_iter()
                .map(|sections| {
                    measure_point(
                        DistributionKind::Alternating { sections },
                        records,
                        memory,
                        u64::from(sections),
                    )
                })
                .collect()
        }
    }
}

/// Renders a timing figure as a table.
pub fn render(figure: TimingFigure, points: &[TimingPoint]) -> Table {
    let x_label = match figure {
        TimingFigure::RandomVsMemory | TimingFigure::MixedVsMemory => "memory (records)",
        TimingFigure::AlternatingSections => "sections",
        _ => "input (records)",
    };
    let mut table = Table::new(
        format!("Figure {} — RS vs 2WRS timing", figure.figure_number()),
        &[
            x_label,
            "RS run",
            "RS total",
            "2WRS run",
            "2WRS total",
            "RS runs",
            "2WRS runs",
            "speedup",
        ],
    );
    for p in points {
        table.row(vec![
            p.x.to_string(),
            fmt_duration(p.rs_run),
            fmt_duration(p.rs_total),
            fmt_duration(p.twrs_run),
            fmt_duration(p.twrs_total),
            p.rs_runs.to_string(),
            p.twrs_runs.to_string(),
            format!("{:.2}x", p.speedup()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_sorted_shows_the_paper_speedup() {
        // Figure 6.7: 2WRS is clearly faster than RS on reverse-sorted
        // input (the paper measures ~2.5× at its input-to-memory ratios).
        let points = measure(TimingFigure::ReverseVsInput, 40_000, 400);
        let last = points.last().unwrap();
        assert!(
            last.twrs_runs < last.rs_runs,
            "2WRS must generate fewer runs"
        );
        assert!(
            last.speedup() > 1.3,
            "expected a clear speedup at full input, got {:.2}",
            last.speedup()
        );
        // Every point keeps 2WRS at least competitive.
        assert!(points.iter().all(|p| p.speedup() > 0.9));
    }

    #[test]
    fn random_input_is_roughly_a_tie() {
        // Figures 6.2/6.3: the paper finds both algorithms equivalent on
        // random input. At laptop scale 2WRS pays a visible per-run overhead
        // for storing each run as several stream files (every extra file is
        // an extra merge-phase seek), which amortises away at the paper's
        // run sizes; see EXPERIMENTS.md. Here we only require 2WRS to stay
        // within a small constant factor and to generate the same number of
        // runs.
        let points = measure(TimingFigure::RandomVsInput, 40_000, 400);
        let last = points.last().unwrap();
        assert!(
            (0.3..1.7).contains(&last.speedup()),
            "speedup {:.2} out of the expected band",
            last.speedup()
        );
        let ratio = last.twrs_runs as f64 / last.rs_runs as f64;
        assert!((0.8..1.25).contains(&ratio), "run counts diverge: {ratio}");
    }

    #[test]
    fn mixed_input_favors_twrs() {
        // Figures 6.4/6.5: 2WRS is clearly faster on mixed input.
        let points = measure(TimingFigure::MixedVsInput, 40_000, 400);
        let last = points.last().unwrap();
        assert!(last.speedup() > 1.3, "speedup {:.2}", last.speedup());
    }

    #[test]
    fn alternating_speedup_decreases_with_more_sections() {
        // Figure 6.6: with few sections 2WRS wins big; with many sections
        // the input approaches random and the two algorithms converge.
        let points = measure(TimingFigure::AlternatingSections, 20_000, 200);
        let few = points.iter().find(|p| p.x == 2).unwrap();
        let many = points.iter().find(|p| p.x == 100).unwrap();
        assert!(few.speedup() > many.speedup());
        assert!(few.speedup() > 1.2);
    }

    #[test]
    fn figures_parse_and_render() {
        assert_eq!(
            TimingFigure::parse("6.4"),
            Some(TimingFigure::MixedVsMemory)
        );
        assert_eq!(TimingFigure::parse("9.9"), None);
        let points = measure(TimingFigure::RandomVsMemory, 5_000, 100);
        let table = render(TimingFigure::RandomVsMemory, &points);
        assert_eq!(table.len(), points.len());
    }
}
