//! Figure 6.1: merge time as a function of the fan-in.
//!
//! The paper merges 400 pre-sorted runs of 16 MB with fan-ins from 2 to 18
//! and finds a U-shaped curve with the optimum around 10: a small fan-in
//! needs many merge passes, a large fan-in makes the disk head seek between
//! many run files. The experiment is reproduced on the simulated device,
//! whose seek/transfer cost model produces the same trade-off; the reported
//! time is the modelled I/O time plus measured CPU time.

use crate::report::{fmt_duration, Table};
use std::time::{Duration, Instant};
use twrs_extsort::{KWayMerger, LoadSortStore, MergeConfig, RunGenerator, RunHandle};
use twrs_storage::{DiskModel, SimDevice, SpillNamer, StorageDevice};
use twrs_workloads::{Distribution, DistributionKind, Record};

/// One measured fan-in point.
#[derive(Debug, Clone, Copy)]
pub struct FanInPoint {
    /// Fan-in used for the merge.
    pub fan_in: usize,
    /// Number of k-way merge steps that were needed.
    pub merge_steps: u32,
    /// Seeks performed during the merge.
    pub seeks: u64,
    /// Pages transferred during the merge.
    pub pages: u64,
    /// Modelled merge time (simulated I/O plus measured CPU).
    pub time: Duration,
}

/// Configuration of the fan-in experiment.
#[derive(Debug, Clone)]
pub struct FanInExperiment {
    /// Number of pre-sorted runs to merge (the paper uses 400).
    pub runs: usize,
    /// Records per run.
    pub records_per_run: u64,
    /// Total read-ahead memory shared by the merge inputs, in records. As
    /// in the paper's implementation the budget is fixed and divided by the
    /// fan-in, so a larger fan-in means a smaller buffer — and more seeks —
    /// per run.
    pub total_read_ahead_records: usize,
    /// Fan-ins to evaluate.
    pub fan_ins: std::ops::RangeInclusive<usize>,
}

impl Default for FanInExperiment {
    fn default() -> Self {
        FanInExperiment {
            runs: 64,
            records_per_run: 4_096,
            total_read_ahead_records: 8_192,
            fan_ins: 2..=18,
        }
    }
}

/// Disk model used by the fan-in experiment: the seek cost is scaled down
/// by the same factor as the data volume (the paper merges 6.4 GB per pass,
/// the laptop-scale default here merges a few MB), so the experiment sits in
/// the same transfer-versus-seek regime as the original measurement and the
/// U-shape of Figure 6.1 is preserved.
pub fn scaled_disk_model() -> DiskModel {
    DiskModel {
        seek_us: 500.0,
        rotational_us: 250.0,
        transfer_page_us: 50.0,
    }
}

/// Builds the pre-sorted runs once and merges them with every fan-in.
pub fn measure(experiment: FanInExperiment) -> Vec<FanInPoint> {
    let mut points = Vec::new();
    for fan_in in experiment.fan_ins.clone() {
        // A fresh device per fan-in so every measurement starts from the
        // same on-disk layout.
        let device = SimDevice::custom(twrs_storage::DEFAULT_PAGE_SIZE, scaled_disk_model());
        let namer = SpillNamer::new("fanin");
        let runs = build_runs(&device, &namer, experiment.runs, experiment.records_per_run);
        device.reset_stats();
        let merger = KWayMerger::new(MergeConfig {
            fan_in,
            read_ahead_records: (experiment.total_read_ahead_records / fan_in).max(32),
        });
        let started = Instant::now();
        let report = merger
            .merge_into::<_, Record>(&device, &namer, runs, "sorted")
            // twrs-lint: allow(no-lib-panic) bench drivers treat device failure as fatal by design
            .expect("merge succeeds");
        let cpu = started.elapsed();
        let stats = device.stats();
        points.push(FanInPoint {
            fan_in,
            merge_steps: report.merge_steps,
            seeks: stats.counters.seeks,
            pages: stats.pages_total(),
            time: stats.simulated_time() + cpu,
        });
    }
    points
}

fn build_runs(
    device: &SimDevice,
    namer: &SpillNamer,
    runs: usize,
    records_per_run: u64,
) -> Vec<RunHandle> {
    // Load-Sort-Store with memory equal to the run size produces exactly one
    // sorted run per memory load.
    let mut generator = LoadSortStore::new(records_per_run as usize);
    let mut input = Distribution::new(
        DistributionKind::RandomUniform,
        records_per_run * runs as u64,
        7,
    )
    .records();
    let set = generator
        .generate(device, namer, &mut input)
        // twrs-lint: allow(no-lib-panic) bench drivers treat device failure as fatal by design
        .expect("run generation succeeds");
    assert_eq!(set.num_runs(), runs);
    set.runs
}

/// Renders the fan-in curve.
pub fn render(points: &[FanInPoint]) -> Table {
    let mut table = Table::new(
        "Figure 6.1 — merge time vs fan-in",
        &["fan-in", "merge steps", "seeks", "pages", "merge time"],
    );
    for p in points {
        table.row(vec![
            p.fan_in.to_string(),
            p.merge_steps.to_string(),
            p.seeks.to_string(),
            p.pages.to_string(),
            fmt_duration(p.time),
        ]);
    }
    table
}

/// The fan-in with the smallest modelled merge time.
pub fn optimum(points: &[FanInPoint]) -> Option<usize> {
    points
        .iter()
        .min_by(|a, b| a.time.cmp(&b.time))
        .map(|p| p.fan_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_u_shaped_with_an_interior_optimum() {
        let points = measure(FanInExperiment {
            runs: 32,
            records_per_run: 2_048,
            total_read_ahead_records: 4_096,
            fan_ins: 2..=16,
        });
        assert_eq!(points.len(), 15);
        let best = optimum(&points).unwrap();
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        let best_point = points.iter().find(|p| p.fan_in == best).unwrap();
        // The defining property of Figure 6.1: neither extreme is optimal.
        assert!(
            best_point.time < first.time,
            "fan-in 2 should not be optimal"
        );
        assert!(
            best_point.time < last.time,
            "the largest fan-in should not be optimal"
        );
        assert!(best > *points.first().map(|p| &p.fan_in).unwrap());
        // Larger fan-ins seek more per pass than the optimum.
        assert!(last.seeks > best_point.seeks);
        // Fewer merge passes as the fan-in grows.
        assert!(first.merge_steps > last.merge_steps);
    }

    #[test]
    fn render_includes_every_fan_in() {
        let points = measure(FanInExperiment {
            runs: 8,
            records_per_run: 512,
            total_read_ahead_records: 1_024,
            fan_ins: 2..=5,
        });
        let table = render(&points);
        assert_eq!(table.len(), 4);
    }
}
