//! Chapter 5 statistical experiments: the full crossed factorial design and
//! its ANOVA models (Tables 5.2–5.12, Figures 5.2–5.12).

use crate::report::Table;
use twrs_analysis::anova::{AnovaTable, FactorialAnova, FactorialData};
use twrs_analysis::doe::{paper_factorial_experiment, ExperimentPoint, PaperFactors};
use twrs_analysis::stats;
use twrs_workloads::DistributionKind;

/// Results of the Chapter 5 analysis for one input distribution.
#[derive(Debug, Clone)]
pub struct AnovaExperiment {
    /// The input distribution analysed.
    pub kind: DistributionKind,
    /// The raw factorial data (response: number of runs).
    pub data: FactorialData,
    /// The raw per-execution observations.
    pub points: Vec<ExperimentPoint>,
    /// The main-effects model (Tables 5.2/5.3 style).
    pub main_effects: AnovaTable,
    /// The model with first-order interactions (Tables 5.5/5.6 style),
    /// fitted with WLS weights per buffer-size level as in §5.2.5.
    pub interactions_wls: AnovaTable,
}

/// Runs the factorial experiment and fits the paper's models for one input
/// distribution.
pub fn run(
    kind: DistributionKind,
    records: u64,
    memory: usize,
    factors: &PaperFactors,
) -> AnovaExperiment {
    let (data, points) = paper_factorial_experiment(kind, records, memory, factors);

    // Model 1: main effects only (the model of Table 5.2).
    let main_terms: Vec<Vec<usize>> = (0..4).map(|f| vec![f]).collect();
    let main_effects = FactorialAnova::fit(&data, &main_terms);

    // Model 2: main effects plus every first-order interaction, fitted with
    // WLS weights derived from the per-buffer-size variance (§5.2.5).
    let mut weighted = data.clone();
    weighted.weight_by_factor_variance(1);
    let mut interaction_terms = main_terms.clone();
    for a in 0..4 {
        for b in (a + 1)..4 {
            interaction_terms.push(vec![a, b]);
        }
    }
    let interactions_wls = FactorialAnova::fit(&weighted, &interaction_terms);

    AnovaExperiment {
        kind,
        data,
        points,
        main_effects,
        interactions_wls,
    }
}

/// Figure 5.2: the distribution of the number of runs per input dataset.
/// Returns per-dataset (min, mean, max) summaries.
pub fn figure_5_2(records: u64, memory: usize, factors: &PaperFactors) -> Table {
    let mut table = Table::new(
        "Figure 5.2 — number of runs by input dataset (over all configurations)",
        &["input", "min", "mean", "max"],
    );
    for kind in DistributionKind::paper_set() {
        let (_, points) = paper_factorial_experiment(kind, records, memory, factors);
        let runs: Vec<f64> = points.iter().map(|p| p.runs).collect();
        table.row(vec![
            kind.label().to_string(),
            format!("{:.0}", runs.iter().cloned().fold(f64::INFINITY, f64::min)),
            format!("{:.1}", stats::mean(&runs)),
            format!("{:.0}", runs.iter().cloned().fold(0.0, f64::max)),
        ]);
    }
    table
}

/// Tukey pairwise comparison table for one factor (Tables 5.7/5.8 style).
pub fn tukey_table(experiment: &AnovaExperiment, factor: usize) -> Table {
    let comparisons = FactorialAnova::tukey(&experiment.data, factor, &experiment.main_effects);
    let mut table = Table::new(
        format!(
            "Tukey pairwise comparisons — factor {}",
            experiment.data.factor_name(factor)
        ),
        &["level A", "level B", "mean diff", "q", "significance"],
    );
    for c in comparisons {
        table.row(vec![
            experiment.data.levels_of(factor)[c.level_a].clone(),
            experiment.data.levels_of(factor)[c.level_b].clone(),
            format!("{:.2}", c.mean_difference),
            format!("{:.2}", c.q_statistic),
            format!("{:.3}", c.significance),
        ]);
    }
    table
}

/// Renders an ANOVA table with the experiment's headline statistics.
pub fn render_model(title: &str, table: &AnovaTable) -> String {
    format!("== {title} ==\n{}", table.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_factors() -> PaperFactors {
        PaperFactors::reduced()
    }

    #[test]
    fn random_input_is_dominated_by_buffer_size() {
        // Tables 5.2/5.3: for random input the only factor that matters is
        // the fraction of memory taken away from the heaps.
        let experiment = run(
            DistributionKind::RandomUniform,
            8_000,
            200,
            &quick_factors(),
        );
        let buffer_size_term = &experiment.main_effects.terms[1];
        for (i, term) in experiment.main_effects.terms.iter().enumerate() {
            if i != 1 {
                assert!(
                    buffer_size_term.sum_of_squares >= term.sum_of_squares,
                    "buffer size should dominate, but {} has SS {} > {}",
                    term.name,
                    term.sum_of_squares,
                    buffer_size_term.sum_of_squares
                );
            }
        }
    }

    #[test]
    fn mixed_input_buffer_setup_matters() {
        // §5.2.5/Figure 5.5: on mixed input the configurations without the
        // victim buffer behave very differently, so the buffer-setup factor
        // carries real variance.
        let experiment = run(
            DistributionKind::MixedBalanced,
            8_000,
            200,
            &quick_factors(),
        );
        let setup_term = &experiment.main_effects.terms[0];
        assert!(setup_term.sum_of_squares > 0.0);
        assert!(experiment.main_effects.total_sum_of_squares > 0.0);
        // The WLS interaction model explains at least as much as the main
        // effects model explains of its own (weighted) data.
        assert!(experiment.interactions_wls.r_squared >= 0.0);
    }

    #[test]
    fn tukey_and_figure_tables_render() {
        let experiment = run(
            DistributionKind::MixedBalanced,
            4_000,
            100,
            &quick_factors(),
        );
        let tukey = tukey_table(&experiment, 2);
        assert!(!tukey.is_empty());
        let fig = figure_5_2(2_000, 100, &quick_factors());
        assert_eq!(fig.len(), 6);
        let text = render_model("main effects", &experiment.main_effects);
        assert!(text.contains("R^2"));
    }
}
