//! Regenerates Figure 3.8: the numerical solution of the replacement
//! selection model converging to the stable 2 − 2x density.
//!
//! ```text
//! cargo run -p twrs-bench --release --bin snowplow_model -- [--runs N] [--cells C]
//! ```

use twrs_bench::experiments::model;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let runs = get("--runs", 4);
    let cells = get("--cells", 256);
    let snapshots = model::simulate(cells, runs);
    print!("{}", model::render(&snapshots).render());
}
