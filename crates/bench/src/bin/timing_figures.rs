//! Regenerates the timing figures of Chapter 6 (Figures 6.2–6.7): run
//! generation and total sorting time of RS vs 2WRS.
//!
//! ```text
//! cargo run -p twrs-bench --release --bin timing_figures -- [--figure 6.2|...|6.7] [--scale ...]
//! ```
//!
//! Without `--figure` every figure is produced.

use twrs_bench::experiments::timing::{self, TimingFigure};
use twrs_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let requested: Vec<TimingFigure> = args
        .iter()
        .position(|a| a == "--figure")
        .and_then(|i| args.get(i + 1))
        .and_then(|name| TimingFigure::parse(name))
        .map(|f| vec![f])
        .unwrap_or_else(|| TimingFigure::all().to_vec());

    for figure in requested {
        eprintln!(
            "figure {}: {} records, {} memory ...",
            figure.figure_number(),
            scale.records,
            scale.memory
        );
        let points = timing::measure(figure, scale.records, scale.memory);
        print!("{}", timing::render(figure, &points).render());
        println!();
    }
}
