//! Runs every experiment at a reduced scale and prints the full set of
//! paper-style tables — the quickest way to regenerate the material of
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p twrs-bench --release --bin all_experiments -- [--scale laptop|quick|paper]
//! ```

use twrs_analysis::doe::PaperFactors;
use twrs_bench::experiments::{
    anova, buffer_sweep, fan_in, merge_phase, model, run_length, timing,
};
use twrs_bench::Scale;
use twrs_workloads::DistributionKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);

    println!(
        "# 2WRS reproduction — all experiments ({} records, {} memory)\n",
        scale.records, scale.memory
    );

    // Table 2.1.
    print!("{}", merge_phase::table_2_1().render());
    println!();

    // Figure 3.8.
    print!("{}", model::render(&model::simulate(256, 4)).render());
    println!();

    // Table 5.13.
    let rows = run_length::measure_table(scale);
    print!("{}", run_length::render(&rows, scale).render());
    println!();

    // Figure 5.4.
    let points = buffer_sweep::measure(scale, &buffer_sweep::paper_fractions());
    print!("{}", buffer_sweep::render(&points).render());
    println!();

    // Chapter 5 ANOVA (reduced factor grid, mixed input — the interesting
    // case).
    let factors = PaperFactors::reduced();
    let experiment = anova::run(
        DistributionKind::MixedBalanced,
        scale.records.min(20_000),
        scale.memory.min(500),
        &factors,
    );
    println!(
        "{}",
        anova::render_model(
            "Chapter 5 main-effects model (mixed input, reduced grid)",
            &experiment.main_effects
        )
    );

    // Figure 6.1.
    let fan_points = fan_in::measure(Default::default());
    print!("{}", fan_in::render(&fan_points).render());
    if let Some(best) = fan_in::optimum(&fan_points) {
        println!("optimal fan-in: {best}");
    }
    println!();

    // Figures 6.2–6.7.
    for figure in timing::TimingFigure::all() {
        let points = timing::measure(figure, scale.records, scale.memory);
        print!("{}", timing::render(figure, &points).render());
        println!();
    }
}
