//! Regenerates the Chapter 5 statistical analysis: the crossed factorial
//! experiment, its ANOVA models (Tables 5.2–5.11), the Tukey pairwise
//! comparisons and the Figure 5.2 summary.
//!
//! ```text
//! cargo run -p twrs-bench --release --bin anova_experiments -- \
//!     [--input random|mixed|mixed-imbalanced|...] [--full] [--figure-5-2] [--scale ...]
//! ```
//!
//! `--full` uses the paper's complete factor grid (360 configurations × 5
//! seeds); the default reduced grid finishes in seconds.

use twrs_analysis::doe::PaperFactors;
use twrs_bench::experiments::{anova, parse_distribution};
use twrs_bench::Scale;
use twrs_workloads::DistributionKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let factors = if args.iter().any(|a| a == "--full") {
        PaperFactors::default()
    } else {
        PaperFactors::reduced()
    };
    let kind = args
        .iter()
        .position(|a| a == "--input")
        .and_then(|i| args.get(i + 1))
        .and_then(|name| parse_distribution(name))
        .unwrap_or(DistributionKind::RandomUniform);

    if args.iter().any(|a| a == "--figure-5-2") {
        print!(
            "{}",
            anova::figure_5_2(scale.records, scale.memory, &factors).render()
        );
        return;
    }

    eprintln!(
        "factorial experiment on {} input: {} executions of {} records / {} memory ...",
        kind.label(),
        factors.executions(),
        scale.records,
        scale.memory
    );
    let experiment = anova::run(kind, scale.records, scale.memory, &factors);
    println!(
        "{}",
        anova::render_model(
            &format!("Main-effects model ({} input)", kind.label()),
            &experiment.main_effects
        )
    );
    println!(
        "{}",
        anova::render_model(
            &format!(
                "First-order interaction model with WLS weights ({} input)",
                kind.label()
            ),
            &experiment.interactions_wls
        )
    );
    // Tukey comparisons for the two heuristic factors, as in §5.2.5.
    print!("{}", anova::tukey_table(&experiment, 2).render());
    print!("{}", anova::tukey_table(&experiment, 3).render());
}
