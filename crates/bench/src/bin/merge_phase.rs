//! Regenerates Table 2.1 (polyphase merge scheduling) and compares the
//! polyphase and multi-pass k-way merge strategies on the same run set.
//!
//! ```text
//! cargo run -p twrs-bench --release --bin merge_phase -- [--runs N] [--records-per-run M]
//! ```

use twrs_bench::experiments::merge_phase;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    print!("{}", merge_phase::table_2_1().render());
    println!();
    let runs = get("--runs", 40) as usize;
    let records_per_run = get("--records-per-run", 2_048);
    let comparison = merge_phase::compare(runs, records_per_run);
    print!("{}", merge_phase::render_comparison(&comparison).render());
}
