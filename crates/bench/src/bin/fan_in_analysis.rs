//! Regenerates Figure 6.1 (merge time as a function of the fan-in).
//!
//! ```text
//! cargo run -p twrs-bench --release --bin fan_in_analysis -- [--runs N] [--records-per-run M]
//! ```

use twrs_bench::experiments::fan_in::{self, FanInExperiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = FanInExperiment::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" if i + 1 < args.len() => {
                if let Ok(n) = args[i + 1].parse() {
                    experiment.runs = n;
                }
                i += 1;
            }
            "--records-per-run" if i + 1 < args.len() => {
                if let Ok(n) = args[i + 1].parse() {
                    experiment.records_per_run = n;
                }
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    eprintln!(
        "merging {} runs of {} records with fan-ins {:?} ...",
        experiment.runs, experiment.records_per_run, experiment.fan_ins
    );
    let points = fan_in::measure(experiment);
    print!("{}", fan_in::render(&points).render());
    if let Some(best) = fan_in::optimum(&points) {
        println!("optimal fan-in: {best} (the paper measured 10 on its hardware)");
    }
}
