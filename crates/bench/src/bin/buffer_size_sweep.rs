//! Regenerates Figure 5.4: run length as a function of the buffer size for
//! random input.
//!
//! ```text
//! cargo run -p twrs-bench --release --bin buffer_size_sweep -- [--scale ...]
//! ```

use twrs_bench::experiments::buffer_sweep;
use twrs_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    eprintln!(
        "sweeping buffer sizes at {} records / {} memory ...",
        scale.records, scale.memory
    );
    let points = buffer_sweep::measure(scale, &buffer_sweep::paper_fractions());
    print!("{}", buffer_sweep::render(&points).render());
}
