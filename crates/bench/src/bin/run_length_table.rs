//! Regenerates Table 5.13 (average run length relative to memory for RS,
//! LSS and three 2WRS configurations on the six input distributions).
//!
//! ```text
//! cargo run -p twrs-bench --release --bin run_length_table -- [--scale laptop|quick|paper]
//! ```

use twrs_bench::experiments::run_length;
use twrs_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    eprintln!(
        "measuring run lengths at {} records / {} memory records ...",
        scale.records, scale.memory
    );
    let rows = run_length::measure_table(scale);
    print!("{}", run_length::render(&rows, scale).render());
}
