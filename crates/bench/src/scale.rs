//! Experiment scales.
//!
//! The paper sorts 100 MB–1 GB of 4-byte integers with 1 K–1 M records of
//! memory. The experiments here default to a laptop scale that preserves
//! the input-to-memory ratios (the quantity the run-length and timing
//! results depend on) while finishing in seconds; the paper scale is
//! available behind a flag for long runs.

/// The size of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of records in the input dataset.
    pub records: u64,
    /// Memory budget of the run-generation algorithms, in records.
    pub memory: usize,
    /// Seeds used to replicate stochastic experiments.
    pub replicates: u64,
}

impl Scale {
    /// Laptop scale: 200 K records with 2 K memory (ratio 100:1, same order
    /// as the paper's 25 M : 100 K).
    pub fn laptop() -> Self {
        Scale {
            records: 200_000,
            memory: 2_000,
            replicates: 3,
        }
    }

    /// Quick scale for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Scale {
            records: 20_000,
            memory: 400,
            replicates: 2,
        }
    }

    /// The paper's run-length experiment scale (§5.2): 25 M records,
    /// 100 K memory, five replicates. Minutes of runtime.
    pub fn paper() -> Self {
        Scale {
            records: 25_000_000,
            memory: 100_000,
            replicates: 5,
        }
    }

    /// Parses `--scale laptop|quick|paper` plus optional
    /// `--records N --memory M` overrides from command-line arguments.
    pub fn from_args(args: &[String]) -> Self {
        let mut scale = Scale::laptop();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    scale = match args[i + 1].as_str() {
                        "quick" => Scale::quick(),
                        "paper" => Scale::paper(),
                        _ => Scale::laptop(),
                    };
                    i += 1;
                }
                "--records" if i + 1 < args.len() => {
                    if let Ok(n) = args[i + 1].parse() {
                        scale.records = n;
                    }
                    i += 1;
                }
                "--memory" if i + 1 < args.len() => {
                    if let Ok(n) = args[i + 1].parse() {
                        scale.memory = n;
                    }
                    i += 1;
                }
                "--replicates" if i + 1 < args.len() => {
                    if let Ok(n) = args[i + 1].parse() {
                        scale.replicates = n;
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// Input-to-memory ratio.
    pub fn ratio(&self) -> f64 {
        self.records as f64 / self.memory as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_preserve_the_paper_ratio_order() {
        assert!(Scale::laptop().ratio() >= 50.0);
        assert!(Scale::paper().ratio() >= 100.0);
        assert!(Scale::quick().ratio() >= 20.0);
    }

    #[test]
    fn argument_parsing() {
        let args: Vec<String> = ["--scale", "quick", "--records", "1234", "--replicates", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let scale = Scale::from_args(&args);
        assert_eq!(scale.records, 1_234);
        assert_eq!(scale.memory, Scale::quick().memory);
        assert_eq!(scale.replicates, 7);
    }

    #[test]
    fn unknown_arguments_are_ignored() {
        let args: Vec<String> = ["--whatever", "--scale", "paper"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(Scale::from_args(&args), Scale::paper());
    }
}
