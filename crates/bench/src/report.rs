//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified already).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, cell) in self.header.iter().enumerate() {
            let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(columns) {
                let _ = write!(line, "{:>width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats a `std::time::Duration` compactly (ms below 10 s, seconds above).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 10.0 {
        format!("{:.1} ms", secs * 1_000.0)
    } else {
        format!("{secs:.2} s")
    }
}

/// Formats a float with limited precision, using `inf`-style notation for
/// very large relative run lengths (single-run results).
pub fn fmt_relative(value: f64) -> String {
    if value > 10_000.0 {
        "inf".to_string()
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = Table::new("Demo", &["name", "value"]);
        table.row(vec!["alpha".into(), "1".into()]);
        table.row(vec!["b".into(), "12345".into()]);
        let text = table.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("alpha"));
        assert!(text.contains("12345"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(std::time::Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(std::time::Duration::from_secs(12)).contains('s'));
    }

    #[test]
    fn relative_formatting() {
        assert_eq!(fmt_relative(2.0), "2.00");
        assert_eq!(fmt_relative(1e9), "inf");
    }
}
