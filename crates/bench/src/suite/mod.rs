//! The scenario-matrix bench suite: machine-readable `BENCH_<id>.json`
//! reports and the deterministic-I/O regression gate.
//!
//! The criterion benches under `benches/` give wall-clock numbers and the
//! experiment binaries reproduce the paper's tables, but neither persists
//! a comparable result. This module is the measurement backbone that does:
//!
//! 1. [`matrix`] declares *what* to measure — run-generation algorithm ×
//!    input distribution × memory budget × thread count × record type,
//!    with a reduced [`ScenarioMatrix::quick`] for PR CI and a
//!    [`ScenarioMatrix::full`] evaluation matrix;
//! 2. [`runner`] executes each scenario through the `SortJob` front door
//!    on a fresh `SimDevice` and captures throughput, run counts (measured
//!    vs. the `twrs-analysis` closed-form prediction) and per-phase pages,
//!    seeks and simulated I/O time;
//! 3. [`report`] serializes the results as `BENCH_<id>.json` (schema
//!    `twrs-bench-suite/v1`) plus a markdown summary table;
//! 4. [`baseline`] compares the machine-independent counters against the
//!    committed `crates/bench/baseline.json` and reports any drift — the
//!    CI regression gate;
//! 5. [`json`] is the self-contained JSON writer/parser underneath (the
//!    offline build has no `serde`; see `crates/compat/`);
//! 6. [`cli`] is the `bench_suite` binary's argument handling and flow;
//! 7. [`service`] is the multi-job slice: each matrix replays a seeded
//!    arrival trace against a `SortService` under a contended global
//!    memory budget, reporting queue/sort latency percentiles
//!    (wall-clock, ungated) and aggregate per-job I/O counters
//!    (deterministic, baseline-gated). `bench_suite --service` runs only
//!    this slice.
//!
//! ```no_run
//! use twrs_bench::suite::{BenchReport, ScenarioMatrix};
//!
//! let report = BenchReport::run(&ScenarioMatrix::quick(), "demo", |_| {}).unwrap();
//! std::fs::write("BENCH_demo.json", report.to_json().render()).unwrap();
//! println!("{}", report.to_markdown());
//! ```

pub mod baseline;
pub mod cli;
pub mod json;
pub mod matrix;
pub mod report;
pub mod runner;
pub mod service;

pub use baseline::{baseline_from_report, compare, Drift, BASELINE_SCHEMA};
pub use json::Json;
pub use matrix::{GeneratorKind, RecordType, Scenario, ScenarioMatrix, SinkMode};
pub use report::{BenchReport, SCHEMA};
pub use runner::{run_scenario, DeterministicCounters, PhaseMetrics, ScenarioResult};
pub use service::{run_service_scenario, service_slice, ServiceScenario, ServiceScenarioResult};
