//! The deterministic-metrics regression gate.
//!
//! Under the simulated device, pages read/written, run counts and (on the
//! sequential path) seeks are pure functions of the scenario — identical on
//! every machine. `crates/bench/baseline.json` pins them for the quick
//! matrix; CI re-runs the matrix and fails on any drift, so an accounting
//! or algorithmic regression cannot land silently. Intentional changes
//! update the baseline in the same PR via `bench_suite --update-baseline`.
//!
//! Baseline schema (`"schema": "twrs-bench-baseline/v1"`): a `scenarios`
//! object keyed by scenario id — single-sort ids and `service-`-prefixed
//! multi-job ids share the namespace — each value the scenario's
//! `deterministic` block from the bench report.
//!
//! ## `seeks` semantics
//!
//! The `seeks` field is an explicit `Option`: `null` **only** encodes "not
//! deterministic for this scenario", never "zero" or "unknown". Seek counts
//! depend on the order reads pass through the device's disk head, so:
//!
//! * **single-threaded scenarios** (`-t1` ids) always pin a concrete
//!   number — a `null` there would silently drop coverage and is itself a
//!   drift (`counter_drift` treats a `Some`/`None` disagreement between
//!   baseline and measurement as a failure, in both directions);
//! * **multi-threaded scenarios** (`-t4` ids) pin `null`, because the
//!   interleaving of generation and prefetch threads through the shared
//!   head is scheduler-dependent;
//! * **striped scenarios** (`-d<n>` ids, `disks > 1`) pin a concrete
//!   number again even at `-t4`: each shard spills to its own stripe
//!   member and the per-disk reduction keeps every member head
//!   single-reader, so no scheduler-dependent interleaving ever reaches a
//!   head (the per-member breakdown also rides in the bench report);
//! * **service scenarios** (`service-` ids) pin a concrete sum even though
//!   jobs run concurrently: every job is single-threaded on its own
//!   [`ScopedDevice`](twrs_storage::ScopedDevice) scope (a private head),
//!   so the per-job counts — and their order-independent sum — stay
//!   deterministic.
//!
//! The `baseline_pins_seeks_exactly_for_single_threaded_scenarios` test in
//! `tests/golden_counters.rs` enforces this contract on the committed file.

use super::json::Json;
use super::report::{deterministic_json, BenchReport};
use super::runner::DeterministicCounters;

/// Identifier of the baseline format.
pub const BASELINE_SCHEMA: &str = "twrs-bench-baseline/v1";

/// One divergence between the baseline and a fresh run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Scenario id the drift belongs to.
    pub scenario: String,
    /// Human-readable description of what changed.
    pub detail: String,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.scenario, self.detail)
    }
}

/// Serializes the deterministic subset of `report` as a baseline document.
pub fn baseline_from_report(report: &BenchReport) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(BASELINE_SCHEMA.into())),
        ("matrix", Json::Str(report.matrix.into())),
        (
            "scenarios",
            Json::Obj(
                report
                    .results
                    .iter()
                    .map(|r| (r.scenario.id(), deterministic_json(&r.deterministic())))
                    .chain(
                        report
                            .service_results
                            .iter()
                            .map(|r| (r.scenario.id(), deterministic_json(&r.deterministic()))),
                    )
                    .collect(),
            ),
        ),
    ])
}

fn counter_drift(
    drifts: &mut Vec<Drift>,
    scenario: &str,
    field: &str,
    baseline: Option<&Json>,
    measured: Option<u64>,
) {
    let pinned = baseline.and_then(Json::as_u64);
    // A null (or absent) field on either side means "not comparable here"
    // — that is itself a drift unless both sides agree it is absent.
    match (pinned, measured) {
        (Some(p), Some(m)) if p == m => {}
        (None, None) => {}
        (Some(p), Some(m)) => drifts.push(Drift {
            scenario: scenario.to_string(),
            detail: format!("{field}: baseline {p}, measured {m}"),
        }),
        (Some(p), None) => drifts.push(Drift {
            scenario: scenario.to_string(),
            detail: format!("{field}: baseline {p}, but no longer measured"),
        }),
        (None, Some(m)) => drifts.push(Drift {
            scenario: scenario.to_string(),
            detail: format!("{field}: measured {m}, but not pinned in the baseline"),
        }),
    }
}

/// Compares a fresh report against a parsed baseline document. Returns
/// every drift found: counter mismatches, scenarios missing from the
/// baseline, stale baseline entries the matrix no longer produces, and
/// matrix/schema mismatches.
pub fn compare(baseline: &Json, report: &BenchReport) -> Vec<Drift> {
    let mut drifts = Vec::new();
    if baseline.get("schema").and_then(Json::as_str) != Some(BASELINE_SCHEMA) {
        drifts.push(Drift {
            scenario: "<baseline>".into(),
            detail: format!("unrecognized schema (expected {BASELINE_SCHEMA})"),
        });
        return drifts;
    }
    if baseline.get("matrix").and_then(Json::as_str) != Some(report.matrix) {
        drifts.push(Drift {
            scenario: "<baseline>".into(),
            detail: format!(
                "baseline pins matrix {:?}, report ran {:?}",
                baseline.get("matrix").and_then(Json::as_str).unwrap_or("?"),
                report.matrix
            ),
        });
        return drifts;
    }
    let empty = Json::Obj(vec![]);
    let pinned = baseline.get("scenarios").unwrap_or(&empty);

    // Single-sort and multi-job service scenarios share the namespace and
    // the deterministic-block shape, so one pass gates both.
    let measured: Vec<(String, DeterministicCounters)> = report
        .results
        .iter()
        .map(|r| (r.scenario.id(), r.deterministic()))
        .chain(
            report
                .service_results
                .iter()
                .map(|r| (r.scenario.id(), r.deterministic())),
        )
        .collect();

    for (id, det) in &measured {
        let Some(entry) = pinned.get(id) else {
            drifts.push(Drift {
                scenario: id.clone(),
                detail: "scenario not in the baseline (run `bench_suite --update-baseline`)".into(),
            });
            continue;
        };
        counter_drift(
            &mut drifts,
            id,
            "pages_read",
            entry.get("pages_read"),
            Some(det.pages_read),
        );
        counter_drift(
            &mut drifts,
            id,
            "pages_written",
            entry.get("pages_written"),
            Some(det.pages_written),
        );
        // For stream scenarios this pins the headline invariant: zero
        // final-pass pages, forever.
        counter_drift(
            &mut drifts,
            id,
            "final_pass_pages_written",
            entry.get("final_pass_pages_written"),
            Some(det.final_pass_pages_written),
        );
        counter_drift(&mut drifts, id, "runs", entry.get("runs"), Some(det.runs));
        counter_drift(&mut drifts, id, "seeks", entry.get("seeks"), det.seeks);
    }

    // Baseline entries whose scenario the matrix no longer produces.
    if let Some(pairs) = pinned.as_obj() {
        for (id, _) in pairs {
            if !measured.iter().any(|(m, _)| m == id) {
                drifts.push(Drift {
                    scenario: id.clone(),
                    detail: "stale baseline entry: scenario not in the current matrix".into(),
                });
            }
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::matrix::{GeneratorKind, RecordType, Scenario, ScenarioMatrix, SinkMode};
    use twrs_storage::ModelId;
    use twrs_workloads::DistributionKind;

    fn report() -> BenchReport {
        let matrix = ScenarioMatrix {
            name: "quick",
            scenarios: vec![
                Scenario {
                    generator: GeneratorKind::Lss,
                    distribution: DistributionKind::Sorted,
                    records: 1_000,
                    memory: 100,
                    threads: 1,
                    record_type: RecordType::Record,
                    sink: SinkMode::File,
                    device: ModelId::Hdd7200,
                    disks: 1,
                    seed: 42,
                },
                Scenario {
                    generator: GeneratorKind::Lss,
                    distribution: DistributionKind::Sorted,
                    records: 1_000,
                    memory: 100,
                    threads: 4,
                    record_type: RecordType::Record,
                    sink: SinkMode::File,
                    device: ModelId::Hdd7200,
                    disks: 1,
                    seed: 42,
                },
            ],
        };
        BenchReport::run(&matrix, "test", |_| {}).unwrap()
    }

    #[test]
    fn fresh_baseline_has_no_drift() {
        let report = report();
        let baseline = baseline_from_report(&report);
        // Through a render/parse round trip, exactly like CI reads the
        // committed file.
        let parsed = Json::parse(&baseline.render()).unwrap();
        assert_eq!(compare(&parsed, &report), Vec::new());
    }

    #[test]
    fn perturbed_counter_is_detected() {
        let report = report();
        let mut baseline = baseline_from_report(&report);
        // Perturb one pinned pages_written value.
        let Json::Obj(ref mut pairs) = baseline else {
            panic!()
        };
        let scenarios = pairs.iter_mut().find(|(k, _)| k == "scenarios").unwrap();
        let Json::Obj(ref mut entries) = scenarios.1 else {
            panic!()
        };
        let Json::Obj(ref mut first) = entries[0].1 else {
            panic!()
        };
        let pw = first
            .iter_mut()
            .find(|(k, _)| k == "pages_written")
            .unwrap();
        pw.1 = Json::counter(999_999);
        let drifts = compare(&baseline, &report);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].detail.contains("pages_written"));
        assert!(drifts[0].detail.contains("999999"));
    }

    #[test]
    fn missing_and_stale_scenarios_are_detected() {
        let mut report = report();
        let baseline = baseline_from_report(&report);
        // Drop one scenario from the report: its baseline entry is stale.
        let removed = report.results.pop().unwrap();
        let drifts = compare(&baseline, &report);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].scenario, removed.scenario.id());
        assert!(drifts[0].detail.contains("stale"));
        // And an empty baseline reports every scenario as missing.
        let empty = Json::obj(vec![
            ("schema", Json::Str(BASELINE_SCHEMA.into())),
            ("matrix", Json::Str("quick".into())),
            ("scenarios", Json::Obj(vec![])),
        ]);
        let drifts = compare(&empty, &report);
        assert_eq!(
            drifts.len(),
            report.results.len() + report.service_results.len(),
            "service scenarios are gated too"
        );
        assert!(drifts[0].detail.contains("not in the baseline"));
    }

    #[test]
    fn matrix_and_schema_mismatches_short_circuit() {
        let report = report();
        let wrong_matrix = Json::obj(vec![
            ("schema", Json::Str(BASELINE_SCHEMA.into())),
            ("matrix", Json::Str("full".into())),
            ("scenarios", Json::Obj(vec![])),
        ]);
        let drifts = compare(&wrong_matrix, &report);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].detail.contains("matrix"));
        let wrong_schema = Json::obj(vec![("schema", Json::Str("nope/v0".into()))]);
        let drifts = compare(&wrong_schema, &report);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].detail.contains("schema"));
    }
}
