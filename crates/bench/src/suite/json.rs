//! A minimal JSON document model with a writer and a parser.
//!
//! The build environment resolves every external dependency to an in-tree
//! stand-in (see `crates/compat/`), so there is no `serde`; the bench suite
//! needs exactly one serialization format — the `BENCH_<id>.json` report
//! and the committed baseline it is compared against — and this module is
//! that format's complete implementation. Objects preserve insertion order
//! so reports are stable and diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs (keys stay in insertion
    /// order; duplicate keys are not rejected, first match wins on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from any integer that fits f64's exact range.
    pub fn num(value: impl Into<f64>) -> Json {
        Json::Num(value.into())
    }

    /// A u64 counter; panics in debug builds if the value would lose
    /// precision (counters in this workspace stay far below 2^53).
    pub fn counter(value: u64) -> Json {
        debug_assert!(
            value < (1u64 << 53),
            "counter {value} exceeds f64 precision"
        );
        Json::Num(value as f64)
    }

    /// Member lookup on an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact unsigned counter, if it is a non-negative
    /// integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline), the format of `BENCH_<id>.json` and the baseline file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; the suite never produces them, but a
        // null is a safer sentinel than an unparsable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for the suite's
                            // ASCII identifiers; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_a_nested_document() {
        let doc = Json::obj(vec![
            ("schema", Json::Str("twrs-bench-suite/v1".into())),
            ("count", Json::counter(3)),
            ("ratio", Json::Num(2.5)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::counter(1), Json::Str("a\"b\\c\n".into())]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("round trip");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(Json::counter(42).render(), "42\n");
        assert_eq!(Json::Num(2.5).render(), "2.5\n");
    }

    #[test]
    fn lookup_and_typed_accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": "x", "c": [true, null], "d": 1.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("d").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("d").and_then(Json::as_u64), None);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse(r#"{"unterminated": "x"#).is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = Json::parse(r#""aA\n\t\"\\ä""#).unwrap();
        assert_eq!(doc.as_str(), Some("aA\n\t\"\\ä"));
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::parse("2e3").unwrap().as_f64(), Some(2000.0));
    }
}
