//! Argument parsing and top-level flow of the `bench_suite` binary.
//!
//! Lives in the library so the whole flow — including flag handling and
//! exit codes — is unit-testable; the binary is a one-line wrapper around
//! [`run`].

use super::baseline::{baseline_from_report, compare};
use super::json::Json;
use super::matrix::ScenarioMatrix;
use super::report::BenchReport;
use super::service::service_slice;
use std::path::Path;

/// Default location of the committed baseline, relative to the workspace
/// root (where both CI and `cargo run` execute).
pub const DEFAULT_BASELINE: &str = "crates/bench/baseline.json";

const USAGE: &str = "\
bench_suite — run the scenario-matrix bench suite

USAGE:
    bench_suite [OPTIONS]

OPTIONS:
    --quick                Run the reduced PR-CI matrix (default: full matrix)
    --service              Run only the multi-job service slice of the selected
                           matrix (queue-latency percentiles; skips the
                           single-sort scenarios and the baseline gate)
    --id <ID>              Report id, used in the default output name [default: local]
    --out <PATH>           Write the JSON report here [default: BENCH_<id>.json]
    --markdown <PATH>      Also write a markdown summary table
    --baseline <PATH>      Baseline file for the deterministic-metrics gate
                           [default: crates/bench/baseline.json]
    --check-baseline       Compare deterministic counters against the baseline;
                           exit 1 on any drift
    --update-baseline      Rewrite the baseline from this run (commit the result)
    --list                 Print the scenario ids of the selected matrix and exit
    --smoke <SPEC>         Run one small end-to-end sort on the device described
                           by SPEC (e.g. \"real:\" for an O_DIRECT-capable temp
                           directory, \"sim:nvme\", or a stripe such as
                           \"striped:[sim:nvme,real:]\"), report the direct-I/O
                           status — plus per-member counters for stripes — and
                           exit. Skips the matrix and the baseline.
    -h, --help             Print this help
";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Run the reduced matrix.
    pub quick: bool,
    /// Run only the service slice of the selected matrix.
    pub service: bool,
    /// Report id.
    pub id: String,
    /// JSON output path (defaults to `BENCH_<id>.json`).
    pub out: String,
    /// Optional markdown output path.
    pub markdown: Option<String>,
    /// Baseline path.
    pub baseline: String,
    /// Compare against the baseline and fail on drift.
    pub check_baseline: bool,
    /// Rewrite the baseline from this run.
    pub update_baseline: bool,
    /// Only list scenario ids.
    pub list: bool,
    /// Run one small sort on the device described by this spec and exit.
    pub smoke: Option<String>,
    /// Print usage and exit.
    pub help: bool,
}

impl Options {
    /// Parses the argument list (without the program name).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut options = Options {
            quick: false,
            service: false,
            id: "local".to_string(),
            out: String::new(),
            markdown: None,
            baseline: DEFAULT_BASELINE.to_string(),
            check_baseline: false,
            update_baseline: false,
            list: false,
            smoke: None,
            help: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--service" => options.service = true,
                "--id" => options.id = value("--id")?,
                "--out" => options.out = value("--out")?,
                "--markdown" => options.markdown = Some(value("--markdown")?),
                "--baseline" => options.baseline = value("--baseline")?,
                "--check-baseline" => options.check_baseline = true,
                "--update-baseline" => options.update_baseline = true,
                "--list" => options.list = true,
                "--smoke" => options.smoke = Some(value("--smoke")?),
                "-h" | "--help" => options.help = true,
                other => return Err(format!("unknown option {other} (see --help)")),
            }
        }
        if options.out.is_empty() {
            options.out = format!("BENCH_{}.json", options.id);
        }
        if options.check_baseline && options.update_baseline {
            return Err("--check-baseline and --update-baseline are mutually exclusive".into());
        }
        if options.smoke.is_some() && (options.check_baseline || options.update_baseline) {
            return Err(
                "--smoke runs one standalone scenario outside the matrix; the baseline \
                 gate only applies to matrix runs"
                    .into(),
            );
        }
        if options.service && (options.check_baseline || options.update_baseline) {
            return Err(
                "--service runs only the service slice; the baseline covers the whole \
                 matrix, so gate or update it with a plain --quick / full run (the slice \
                 is always included there)"
                    .into(),
            );
        }
        Ok(options)
    }

    fn matrix(&self) -> ScenarioMatrix {
        let mut matrix = if self.quick {
            ScenarioMatrix::quick()
        } else {
            ScenarioMatrix::full()
        };
        if self.service {
            // Keep the matrix name (it selects the service slice) but drop
            // the single-sort scenarios.
            matrix.scenarios.clear();
        }
        matrix
    }
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Runs one small end-to-end sort on the device a spec string describes —
/// the CI `real-device-smoke` step. Reports the backend's direct-I/O
/// decision (`O_DIRECT` or the fallback reason) and fails if the sort or
/// its verification fails, so the real-file path is exercised on every CI
/// run even though its wall-clock numbers are machine-dependent.
pub fn run_smoke(spec_text: &str) -> Result<i32, String> {
    use twrs_extsort::{ReplacementSelection, SortJob};
    use twrs_storage::{DeviceSpec, StorageDevice};
    use twrs_workloads::Distribution;
    use twrs_workloads::DistributionKind;

    let spec: DeviceSpec = spec_text
        .parse()
        .map_err(|e| format!("--smoke {spec_text}: {e}"))?;
    let device = spec
        .build()
        .map_err(|e| format!("--smoke {spec_text}: {e}"))?;
    match device.direct_io() {
        Some(status) => println!("smoke device `{spec}`: real files, {status}"),
        None => println!("smoke device `{spec}`: simulated"),
    }
    if let Some(stripe) = device.as_striped() {
        println!(
            "smoke device `{spec}`: stripe of {} members",
            stripe.members()
        );
    }

    let records = 3_000u64;
    let input = Distribution::new(
        DistributionKind::RandomUniform,
        records,
        super::matrix::MATRIX_SEED,
    );
    let report = SortJob::new(ReplacementSelection::new(200))
        .on(&device)
        .verify(true)
        .run_iter(input.records(), "smoke-sorted")
        .map_err(|e| format!("smoke sort failed on `{spec}`: {e}"))?;
    let stats = device.stats();
    if report.report.records != records {
        return Err(format!(
            "smoke sort on `{spec}`: {} of {records} records",
            report.report.records
        ));
    }
    if stats.counters.pages_written == 0 || stats.counters.pages_read == 0 {
        return Err(format!(
            "smoke sort on `{spec}` moved no pages (written {}, read {})",
            stats.counters.pages_written, stats.counters.pages_read
        ));
    }
    if let Some(stripe) = device.as_striped() {
        let members = stripe.member_stats();
        let mut folded = (0u64, 0u64, 0u64);
        for (index, member) in members.iter().enumerate() {
            println!(
                "  disk {index}: {} pages written / {} read, {} seeks",
                member.counters.pages_written, member.counters.pages_read, member.counters.seeks
            );
            folded.0 += member.counters.pages_written;
            folded.1 += member.counters.pages_read;
            folded.2 += member.counters.seeks;
        }
        if folded
            != (
                stats.counters.pages_written,
                stats.counters.pages_read,
                stats.counters.seeks,
            )
        {
            return Err(format!(
                "smoke sort on `{spec}`: member counters {folded:?} do not fold into \
                 the stripe totals ({}, {}, {})",
                stats.counters.pages_written, stats.counters.pages_read, stats.counters.seeks
            ));
        }
    }
    println!(
        "smoke ok: {} records in {} runs, {} pages written / {} read, {} seeks",
        report.report.records,
        report.num_runs(),
        stats.counters.pages_written,
        stats.counters.pages_read,
        stats.counters.seeks
    );
    Ok(0)
}

/// Runs the suite for the given arguments. Returns the process exit code
/// (`0` success, `1` baseline drift); hard failures come back as `Err` and
/// also exit `1`.
pub fn run(args: &[String]) -> Result<i32, String> {
    let options = Options::parse(args)?;
    if options.help {
        println!("{USAGE}");
        return Ok(0);
    }
    if let Some(spec) = &options.smoke {
        return run_smoke(spec);
    }
    let matrix = options.matrix();
    if options.list {
        for scenario in &matrix.scenarios {
            println!("{}", scenario.id());
        }
        for scenario in service_slice(matrix.name) {
            println!("{}", scenario.id());
        }
        return Ok(0);
    }

    eprintln!(
        "running {} matrix: {} scenarios + {} service scenarios",
        matrix.name,
        matrix.len(),
        service_slice(matrix.name).len()
    );
    let report = BenchReport::run(&matrix, options.id.clone(), |id| eprintln!("  done {id}"))?;

    write_file(&options.out, &report.to_json().render())?;
    eprintln!("wrote {}", options.out);
    if let Some(markdown) = &options.markdown {
        write_file(markdown, &report.to_markdown())?;
        eprintln!("wrote {markdown}");
    }
    print!("{}", report.to_table().render());
    if let Some(service_table) = report.service_table() {
        print!("{}", service_table.render());
    }

    if options.update_baseline {
        write_file(&options.baseline, &baseline_from_report(&report).render())?;
        eprintln!("baseline updated: {}", options.baseline);
        return Ok(0);
    }
    if options.check_baseline {
        if !Path::new(&options.baseline).exists() {
            return Err(format!(
                "baseline {} not found; run with --update-baseline first",
                options.baseline
            ));
        }
        let text = std::fs::read_to_string(&options.baseline)
            .map_err(|e| format!("cannot read {}: {e}", options.baseline))?;
        let baseline =
            Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", options.baseline))?;
        let drifts = compare(&baseline, &report);
        if drifts.is_empty() {
            eprintln!(
                "baseline gate: {} scenarios match {}",
                report.results.len() + report.service_results.len(),
                options.baseline
            );
        } else {
            eprintln!(
                "baseline gate FAILED: {} drift(s) against {}",
                drifts.len(),
                options.baseline
            );
            for drift in &drifts {
                eprintln!("  {drift}");
            }
            eprintln!(
                "if the change is intentional, refresh the baseline in this PR:\n  \
                 cargo run --release --bin bench_suite -- --quick --update-baseline"
            );
            return Ok(1);
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&owned)
    }

    #[test]
    fn defaults_and_derived_output_name() {
        let options = parse(&[]).unwrap();
        assert!(!options.quick);
        assert_eq!(options.out, "BENCH_local.json");
        assert_eq!(options.baseline, DEFAULT_BASELINE);
        let options = parse(&["--id", "pr4"]).unwrap();
        assert_eq!(options.out, "BENCH_pr4.json");
        let options = parse(&["--quick", "--out", "x.json"]).unwrap();
        assert!(options.quick);
        assert_eq!(options.out, "x.json");
    }

    #[test]
    fn rejects_unknown_flags_missing_values_and_conflicts() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--out"]).is_err());
        assert!(parse(&["--check-baseline", "--update-baseline"]).is_err());
        // The service slice is gated as part of the full/quick runs; a
        // slice-only run cannot meaningfully face the whole-matrix baseline.
        assert!(parse(&["--service", "--check-baseline"]).is_err());
        assert!(parse(&["--service", "--update-baseline"]).is_err());
    }

    #[test]
    fn service_mode_keeps_the_slice_and_drops_the_single_sorts() {
        let options = parse(&["--quick", "--service"]).unwrap();
        assert!(options.service);
        let matrix = options.matrix();
        assert_eq!(matrix.name, "quick");
        assert!(matrix.is_empty(), "single-sort scenarios dropped");
        assert!(!service_slice(matrix.name).is_empty());
    }

    #[test]
    fn smoke_runs_on_a_striped_spec_and_folds_member_counters() {
        // Simulated members keep this fast; the fold check inside
        // `run_smoke` is the real assertion.
        assert_eq!(run_smoke("striped:2:sim:nvme").unwrap(), 0);
    }

    #[test]
    fn list_and_help_short_circuit_without_running_the_matrix() {
        // Running the whole matrix is the binary's job (and CI's); here we
        // only exercise the flows that must not touch the filesystem.
        assert_eq!(
            run(&["--quick".to_string(), "--list".to_string()]).unwrap(),
            0
        );
        assert_eq!(run(&["--help".to_string()]).unwrap(), 0);
    }
}
