//! The declarative scenario matrix: which sorts the suite measures.
//!
//! A [`Scenario`] is one fully specified sort — run-generation algorithm ×
//! input distribution × memory budget × generation threads × record type ×
//! output sink (file or stream) — always executed on a fresh simulated
//! device with a fixed seed, so every scenario is deterministic and its I/O
//! counters are machine-independent.
//! [`ScenarioMatrix::quick`] is the reduced matrix PR CI runs on every
//! change; [`ScenarioMatrix::full`] is the on-demand evaluation matrix.

use twrs_storage::ModelId;
use twrs_workloads::DistributionKind;

/// The run-generation algorithm of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Classic replacement selection (Algorithm 1).
    Rs,
    /// Load-Sort-Store (§2.1.1).
    Lss,
    /// Two-way replacement selection with the recommended configuration.
    Twrs,
}

impl GeneratorKind {
    /// All generators, in the order the paper introduces them.
    pub fn all() -> [GeneratorKind; 3] {
        [GeneratorKind::Rs, GeneratorKind::Lss, GeneratorKind::Twrs]
    }

    /// The label the sorting pipeline reports for this generator.
    pub fn label(&self) -> &'static str {
        match self {
            GeneratorKind::Rs => "RS",
            GeneratorKind::Lss => "LSS",
            GeneratorKind::Twrs => "2WRS",
        }
    }

    /// A lowercase slug used in scenario ids.
    pub fn slug(&self) -> &'static str {
        match self {
            GeneratorKind::Rs => "rs",
            GeneratorKind::Lss => "lss",
            GeneratorKind::Twrs => "2wrs",
        }
    }
}

/// The record type a scenario sorts. The input distribution is always
/// generated as the paper's `Record` stream and mapped monotonically onto
/// the requested type, so the distribution shape is identical across types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordType {
    /// The paper's 16-byte key + payload record.
    Record,
    /// The 32-byte `UserEvent` (string-prefix key) record.
    UserEvent,
    /// A bare `u64` key (8 bytes, the smallest sortable record).
    U64,
}

impl RecordType {
    /// A lowercase slug used in scenario ids and reports.
    pub fn slug(&self) -> &'static str {
        match self {
            RecordType::Record => "record",
            RecordType::UserEvent => "user-event",
            RecordType::U64 => "u64",
        }
    }

    /// The on-device size of one record, in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            RecordType::Record => 16,
            RecordType::UserEvent => 32,
            RecordType::U64 => 8,
        }
    }
}

/// Where the final merge pass of a scenario delivers its output: the
/// classic named output file, or a lazy `SortedStream` consumed by the
/// runner (zero final-pass page writes — the saving the suite attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinkMode {
    /// `SortJob::run_iter` — final merge drains into a device file.
    #[default]
    File,
    /// `SortJob::stream_iter` — final merge suspended and drained through
    /// the iterator; the runner counts and order-checks the records.
    Stream,
}

impl SinkMode {
    /// A lowercase slug used in scenario ids and reports.
    pub fn slug(&self) -> &'static str {
        match self {
            SinkMode::File => "file",
            SinkMode::Stream => "stream",
        }
    }
}

/// One fully specified sort of the matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Run-generation algorithm.
    pub generator: GeneratorKind,
    /// Input distribution shape.
    pub distribution: DistributionKind,
    /// Number of input records.
    pub records: u64,
    /// Memory budget of the generator, in records.
    pub memory: usize,
    /// Generation threads (1 = sequential pipeline).
    pub threads: usize,
    /// Record type the sort runs on.
    pub record_type: RecordType,
    /// Output shape of the final merge pass.
    pub sink: SinkMode,
    /// Device model the scenario's simulated disk charges costs from.
    /// Page/seek *counts* are identical across models (the catalog shares
    /// one seek-detection rule); only simulated I/O time differs.
    pub device: ModelId,
    /// Number of simulated disks the scenario spills across. `1` runs on a
    /// plain `SimDevice`; `>1` builds a `striped:<disks>:sim:<model>`
    /// stripe, where each generation shard spills to its own member and
    /// per-disk seek counts stay deterministic even at `threads > 1`.
    pub disks: usize,
    /// Seed of the input distribution.
    pub seed: u64,
}

impl Scenario {
    /// A stable, human-readable identifier, unique within a matrix; the key
    /// the baseline gate matches scenarios by. Scenarios on the historical
    /// `hdd-7200` model keep the pre-device-axis id shape; other models
    /// carry their catalog id as a segment (before any `-stream` suffix).
    pub fn id(&self) -> String {
        let device = match self.device {
            ModelId::Hdd7200 => String::new(),
            other => format!("-{}", other.name()),
        };
        let disks = match self.disks {
            0 | 1 => String::new(),
            n => format!("-d{n}"),
        };
        let sink = match self.sink {
            SinkMode::File => "",
            SinkMode::Stream => "-stream",
        };
        format!(
            "{}-{}-{}-n{}-m{}-t{}{}{}{}",
            self.generator.slug(),
            self.distribution.label(),
            self.record_type.slug(),
            self.records,
            self.memory,
            self.threads,
            device,
            disks,
            sink
        )
    }

    /// The [`twrs_storage::DeviceSpec`] string the runner builds this
    /// scenario's device from: `sim:<model>` for a single disk,
    /// `striped:<disks>:sim:<model>` for a stripe.
    pub fn device_spec(&self) -> String {
        if self.disks > 1 {
            format!("striped:{}:sim:{}", self.disks, self.device.name())
        } else {
            format!("sim:{}", self.device.name())
        }
    }
}

/// The distributions of the scenario matrix: the uniform/sorted/reverse
/// trio plus the two workload shapes beyond the paper set (bounded
/// displacement and low cardinality).
pub fn matrix_distributions() -> [DistributionKind; 5] {
    [
        DistributionKind::RandomUniform,
        DistributionKind::Sorted,
        DistributionKind::ReverseSorted,
        DistributionKind::AlmostSorted {
            max_displacement: 100,
        },
        DistributionKind::DuplicateHeavy { distinct: 16 },
    ]
}

/// The seed every scenario uses (one fixed seed keeps reports comparable
/// across runs and machines).
pub const MATRIX_SEED: u64 = 42;

/// A named list of scenarios.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// `"quick"` or `"full"`; recorded in the report and the baseline so a
    /// baseline is never compared against the wrong matrix.
    pub name: &'static str,
    /// The scenarios, in execution order.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioMatrix {
    /// The reduced matrix PR CI runs on every change: every generator ×
    /// the five matrix distributions × both thread counts on the default
    /// record, record-type coverage on the random and duplicate-heavy
    /// inputs, plus the stream-sink slice (every generator × both thread
    /// counts through `stream_iter`) and the multi-disk slice (every
    /// generator across two stripe shapes). 62 scenarios, each small enough
    /// that the whole matrix runs in seconds.
    pub fn quick() -> Self {
        let mut scenarios = Vec::new();
        let records = 6_000;
        let memory = 300;
        for generator in GeneratorKind::all() {
            for distribution in matrix_distributions() {
                for threads in [1, 4] {
                    scenarios.push(Scenario {
                        generator,
                        distribution,
                        records,
                        memory,
                        threads,
                        record_type: RecordType::Record,
                        sink: SinkMode::File,
                        device: ModelId::Hdd7200,
                        disks: 1,
                        seed: MATRIX_SEED,
                    });
                }
            }
        }
        // Record-type coverage: the wider and the narrower record through
        // every generator on random input, both thread counts.
        for generator in GeneratorKind::all() {
            for record_type in [RecordType::UserEvent, RecordType::U64] {
                for threads in [1, 4] {
                    scenarios.push(Scenario {
                        generator,
                        distribution: DistributionKind::RandomUniform,
                        records,
                        memory,
                        threads,
                        record_type,
                        sink: SinkMode::File,
                        device: ModelId::Hdd7200,
                        disks: 1,
                        seed: MATRIX_SEED,
                    });
                }
            }
        }
        // Duplicate-heavy input on the bare-key record: maximal tie
        // density, since equal keys have no payload tie-breaker.
        for threads in [1, 4] {
            scenarios.push(Scenario {
                generator: GeneratorKind::Twrs,
                distribution: DistributionKind::DuplicateHeavy { distinct: 16 },
                records,
                memory,
                threads,
                record_type: RecordType::U64,
                sink: SinkMode::File,
                device: ModelId::Hdd7200,
                disks: 1,
                seed: MATRIX_SEED,
            });
        }
        // Sink axis: the same random/record slice through `stream_iter`,
        // pinning that a streamed sort writes zero final-pass pages while
        // its generation and intermediate-merge counters match the file
        // scenarios above.
        scenarios.extend(Self::stream_slice(records, memory));
        // Device axis: the random/record slice re-costed under the nvme
        // model. The pinned counters are identical to the hdd-7200 twins
        // (same pages, runs and seeks — the catalog shares one
        // seek-detection rule); only simulated I/O time drops, re-testing
        // the paper's seek-dominated conclusion under a near-seek-free
        // device.
        scenarios.extend(Self::device_slice(records, memory, [ModelId::Nvme]));
        // Multi-disk axis: the random/record slice spilling across a
        // stripe. Shard-pinned spills make the per-disk seek counts
        // deterministic, so — unlike the plain `-t4` scenarios — these
        // multi-threaded runs pin concrete seek totals in the baseline.
        scenarios.extend(Self::striped_slice(records, memory));
        ScenarioMatrix {
            name: "quick",
            scenarios,
        }
    }

    /// The multi-disk slice: every generator sorting the random/record
    /// input at four threads, once on a four-disk hdd stripe (one shard per
    /// member) and once on a two-disk nvme stripe (two shards per member) —
    /// exercising both the shard↔disk bijection and the folded case.
    fn striped_slice(records: u64, memory: usize) -> Vec<Scenario> {
        let mut scenarios = Vec::new();
        for (disks, device) in [(4, ModelId::Hdd7200), (2, ModelId::Nvme)] {
            for generator in GeneratorKind::all() {
                scenarios.push(Scenario {
                    generator,
                    distribution: DistributionKind::RandomUniform,
                    records,
                    memory,
                    threads: 4,
                    record_type: RecordType::Record,
                    sink: SinkMode::File,
                    device,
                    disks,
                    seed: MATRIX_SEED,
                });
            }
        }
        scenarios
    }

    /// The device-axis slice: every generator on random input, both thread
    /// counts, default record, once per requested non-default model.
    fn device_slice(
        records: u64,
        memory: usize,
        models: impl IntoIterator<Item = ModelId>,
    ) -> Vec<Scenario> {
        let mut scenarios = Vec::new();
        for device in models {
            for generator in GeneratorKind::all() {
                for threads in [1, 4] {
                    scenarios.push(Scenario {
                        generator,
                        distribution: DistributionKind::RandomUniform,
                        records,
                        memory,
                        threads,
                        record_type: RecordType::Record,
                        sink: SinkMode::File,
                        device,
                        disks: 1,
                        seed: MATRIX_SEED,
                    });
                }
            }
        }
        scenarios
    }

    /// The stream-sink slice shared by both matrices: every generator on
    /// random input, both thread counts, default record.
    fn stream_slice(records: u64, memory: usize) -> Vec<Scenario> {
        let mut scenarios = Vec::new();
        for generator in GeneratorKind::all() {
            for threads in [1, 4] {
                scenarios.push(Scenario {
                    generator,
                    distribution: DistributionKind::RandomUniform,
                    records,
                    memory,
                    threads,
                    record_type: RecordType::Record,
                    sink: SinkMode::Stream,
                    device: ModelId::Hdd7200,
                    disks: 1,
                    seed: MATRIX_SEED,
                });
            }
        }
        scenarios
    }

    /// The full evaluation matrix: the five matrix distributions plus the
    /// paper's alternating and mixed shapes, two memory budgets, both
    /// thread counts on the default record, and full record-type coverage
    /// at the small budget.
    pub fn full() -> Self {
        let mut scenarios = Vec::new();
        let records = 20_000;
        let mut distributions: Vec<DistributionKind> = matrix_distributions().to_vec();
        distributions.push(DistributionKind::Alternating { sections: 10 });
        distributions.push(DistributionKind::MixedBalanced);
        for generator in GeneratorKind::all() {
            for &distribution in &distributions {
                for memory in [300, 1_200] {
                    for threads in [1, 4] {
                        scenarios.push(Scenario {
                            generator,
                            distribution,
                            records,
                            memory,
                            threads,
                            record_type: RecordType::Record,
                            sink: SinkMode::File,
                            device: ModelId::Hdd7200,
                            disks: 1,
                            seed: MATRIX_SEED,
                        });
                    }
                }
            }
        }
        for generator in GeneratorKind::all() {
            for distribution in matrix_distributions() {
                for record_type in [RecordType::UserEvent, RecordType::U64] {
                    for threads in [1, 4] {
                        scenarios.push(Scenario {
                            generator,
                            distribution,
                            records,
                            memory: 300,
                            threads,
                            record_type,
                            sink: SinkMode::File,
                            device: ModelId::Hdd7200,
                            disks: 1,
                            seed: MATRIX_SEED,
                        });
                    }
                }
            }
        }
        scenarios.extend(Self::stream_slice(records, 300));
        // Full device coverage: every non-default catalog model.
        scenarios.extend(Self::device_slice(
            records,
            300,
            [ModelId::SataSsd, ModelId::Nvme, ModelId::Pmem],
        ));
        scenarios.extend(Self::striped_slice(records, 300));
        ScenarioMatrix {
            name: "full",
            scenarios,
        }
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` when the matrix has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn coverage(matrix: &ScenarioMatrix) -> (BTreeSet<&str>, BTreeSet<&str>, BTreeSet<usize>) {
        let generators = matrix
            .scenarios
            .iter()
            .map(|s| s.generator.label())
            .collect();
        let distributions = matrix
            .scenarios
            .iter()
            .map(|s| s.distribution.label())
            .collect();
        let threads = matrix.scenarios.iter().map(|s| s.threads).collect();
        (generators, distributions, threads)
    }

    #[test]
    fn quick_matrix_covers_the_acceptance_floor() {
        let quick = ScenarioMatrix::quick();
        let (generators, distributions, threads) = coverage(&quick);
        assert_eq!(generators.len(), 3, "all three generators");
        assert!(distributions.len() >= 4, "at least four distributions");
        assert_eq!(threads, BTreeSet::from([1, 4]), "both thread counts");
        // Record-type coverage beyond the default record.
        let record_types: BTreeSet<&str> = quick
            .scenarios
            .iter()
            .map(|s| s.record_type.slug())
            .collect();
        assert_eq!(record_types.len(), 3);
    }

    #[test]
    fn scenario_ids_are_unique_within_each_matrix() {
        for matrix in [ScenarioMatrix::quick(), ScenarioMatrix::full()] {
            let ids: BTreeSet<String> = matrix.scenarios.iter().map(Scenario::id).collect();
            assert_eq!(ids.len(), matrix.len(), "duplicate id in {}", matrix.name);
            assert!(!matrix.is_empty());
        }
    }

    #[test]
    fn full_matrix_is_a_superset_of_quick_coverage() {
        let quick = ScenarioMatrix::quick();
        let full = ScenarioMatrix::full();
        let (qg, qd, qt) = coverage(&quick);
        let (fg, fd, ft) = coverage(&full);
        assert!(qg.is_subset(&fg));
        assert!(qd.is_subset(&fd));
        assert!(qt.is_subset(&ft));
        assert!(ScenarioMatrix::full().len() > ScenarioMatrix::quick().len());
    }

    #[test]
    fn ids_are_stable() {
        let scenario = Scenario {
            generator: GeneratorKind::Twrs,
            distribution: DistributionKind::AlmostSorted {
                max_displacement: 100,
            },
            records: 6_000,
            memory: 300,
            threads: 4,
            record_type: RecordType::UserEvent,
            sink: SinkMode::File,
            device: ModelId::Hdd7200,
            disks: 1,
            seed: MATRIX_SEED,
        };
        // File-sink ids keep the pre-sink-axis shape, so the historical
        // baseline entries stay addressable.
        assert_eq!(scenario.id(), "2wrs-almost-sorted-user-event-n6000-m300-t4");
        let stream = Scenario {
            sink: SinkMode::Stream,
            ..scenario
        };
        assert_eq!(
            stream.id(),
            "2wrs-almost-sorted-user-event-n6000-m300-t4-stream"
        );
        // Striped scenarios carry a `-d<n>` segment after the device
        // segment, and build from a `striped:` device spec.
        let striped = Scenario {
            record_type: RecordType::Record,
            disks: 4,
            ..scenario
        };
        assert_eq!(striped.id(), "2wrs-almost-sorted-record-n6000-m300-t4-d4");
        assert_eq!(striped.device_spec(), "striped:4:sim:hdd-7200");
        let striped_nvme = Scenario {
            device: ModelId::Nvme,
            disks: 2,
            ..striped
        };
        assert_eq!(
            striped_nvme.id(),
            "2wrs-almost-sorted-record-n6000-m300-t4-nvme-d2"
        );
        assert_eq!(striped_nvme.device_spec(), "striped:2:sim:nvme");
        assert_eq!(scenario.device_spec(), "sim:hdd-7200");
    }

    #[test]
    fn both_matrices_cover_the_multi_disk_axis() {
        for matrix in [ScenarioMatrix::quick(), ScenarioMatrix::full()] {
            let striped: Vec<&Scenario> = matrix.scenarios.iter().filter(|s| s.disks > 1).collect();
            let generators: BTreeSet<&str> = striped.iter().map(|s| s.generator.label()).collect();
            assert_eq!(
                generators.len(),
                3,
                "{}: every generator stripes",
                matrix.name
            );
            let shapes: BTreeSet<usize> = striped.iter().map(|s| s.disks).collect();
            assert_eq!(shapes, BTreeSet::from([2, 4]), "{}", matrix.name);
            for scenario in striped {
                assert!(
                    scenario.threads > 1,
                    "{}: the slice exists to pin multi-threaded per-disk seeks",
                    matrix.name
                );
                assert!(scenario.id().contains(&format!("-d{}", scenario.disks)));
                assert!(scenario.device_spec().starts_with("striped:"));
            }
        }
    }

    #[test]
    fn both_matrices_cover_the_sink_axis() {
        for matrix in [ScenarioMatrix::quick(), ScenarioMatrix::full()] {
            let streams: Vec<&Scenario> = matrix
                .scenarios
                .iter()
                .filter(|s| s.sink == SinkMode::Stream)
                .collect();
            let generators: BTreeSet<&str> = streams.iter().map(|s| s.generator.label()).collect();
            let threads: BTreeSet<usize> = streams.iter().map(|s| s.threads).collect();
            assert_eq!(
                generators.len(),
                3,
                "{}: every generator streams",
                matrix.name
            );
            assert_eq!(threads, BTreeSet::from([1, 4]), "{}", matrix.name);
            // Every stream scenario has a file twin with identical inputs,
            // so the report can attribute the saved final pass directly.
            for stream in streams {
                let twin = Scenario {
                    sink: SinkMode::File,
                    ..*stream
                };
                assert!(
                    matrix.scenarios.contains(&twin),
                    "{}: file twin of {}",
                    matrix.name,
                    stream.id()
                );
            }
        }
    }
}
