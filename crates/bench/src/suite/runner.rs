//! Executes one [`Scenario`] through the `SortJob` front door on a fresh
//! simulated device and captures everything the report needs: wall-clock
//! and throughput, run counts (measured vs. the `twrs-analysis`
//! prediction), and per-phase pages, seeks and simulated I/O time.

use super::matrix::{GeneratorKind, RecordType, Scenario, SinkMode};
use twrs_analysis::theory::expected_relative_run_length;
use twrs_core::{TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::{
    FinalPassKind, LoadSortStore, PhaseReport, ReplacementSelection, ShardableGenerator, SortJob,
    SortJobReport,
};
use twrs_storage::{AnyDevice, DeviceSpec, DiskModel, ModelId, SortableRecord, StorageDevice};
use twrs_workloads::{Distribution, UserEvent};

/// One phase's metrics, flattened for serialization. Pages and seeks are
/// deterministic on the simulated device; the wall clock is not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseMetrics {
    /// Wall-clock time of the phase, in microseconds.
    pub wall_us: u64,
    /// Pages read during the phase.
    pub pages_read: u64,
    /// Pages written during the phase.
    pub pages_written: u64,
    /// Seeks performed during the phase.
    pub seeks: u64,
    /// Simulated I/O time under the device's disk model, in microseconds.
    pub simulated_io_us: u64,
}

impl From<&PhaseReport> for PhaseMetrics {
    fn from(phase: &PhaseReport) -> Self {
        PhaseMetrics {
            wall_us: phase.wall.as_micros() as u64,
            pages_read: phase.pages_read,
            pages_written: phase.pages_written,
            seeks: phase.seeks,
            simulated_io_us: phase.simulated_io.as_micros() as u64,
        }
    }
}

/// The deterministic subset of a scenario's counters: identical on every
/// machine, which is what the CI baseline gate compares. Seeks are only
/// deterministic when every disk head sees one reader at a time: on the
/// sequential path, and on striped scenarios (`disks > 1`), where each
/// shard spills to its own stripe member and the per-disk reduction keeps
/// every head single-reader. Plain multi-threaded scenarios interleave
/// prefetch reads through one shared head, so they report `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicCounters {
    /// Total pages read across all phases (including verification).
    pub pages_read: u64,
    /// Total pages written across all phases.
    pub pages_written: u64,
    /// Pages the final merge pass alone wrote. Deterministically **zero**
    /// for stream scenarios — the invariant the baseline gate pins: a
    /// streamed sort must never regress into paying a final write pass.
    pub final_pass_pages_written: u64,
    /// Number of runs the generation phase produced.
    pub runs: u64,
    /// Total seeks across all phases; `None` when the scenario ran with
    /// more than one thread on a single disk.
    pub seeks: Option<u64>,
}

/// Deterministic counters for one stripe member of a striped scenario —
/// the per-disk breakdown the report serializes next to the totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskCounters {
    /// Pages this member read across the whole run.
    pub pages_read: u64,
    /// Pages this member wrote across the whole run.
    pub pages_written: u64,
    /// Seeks this member's head performed across the whole run.
    pub seeks: u64,
}

/// Everything measured for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Wall-clock time across all phases, in microseconds.
    pub wall_us: u64,
    /// Simulated I/O time across all phases, in microseconds.
    pub simulated_io_us: u64,
    /// Input records per wall-clock second.
    pub records_per_sec: f64,
    /// Number of runs the generation phase produced.
    pub num_runs: u64,
    /// Measured average run length, in records.
    pub average_run_length: f64,
    /// Measured average run length relative to the memory budget.
    pub relative_run_length: f64,
    /// The analytical expectation for [`relative_run_length`] from
    /// `twrs-analysis`, when the theory covers this scenario.
    ///
    /// [`relative_run_length`]: ScenarioResult::relative_run_length
    pub predicted_relative_run_length: Option<f64>,
    /// Run-generation phase metrics.
    pub run_generation: PhaseMetrics,
    /// Merge phase metrics.
    pub merge: PhaseMetrics,
    /// Verification-scan metrics. The suite verifies file outputs with the
    /// pipeline's scan; stream scenarios are order- and count-checked
    /// inline while draining (no separate phase), so this is `None` there.
    pub verify: Option<PhaseMetrics>,
    /// How the scenario's final merge pass delivered its output.
    pub final_pass: FinalPassKind,
    /// Pages the final pass alone wrote (`0` for stream scenarios).
    pub final_pass_pages_written: u64,
    /// Whether the report's I/O accounting reconciled (shard sums vs.
    /// aggregated phases).
    pub io_consistent: bool,
    /// Per-member counters for striped scenarios, in stripe order; empty
    /// when the scenario ran on a single disk. The runner verifies the
    /// member fold against the device totals before reporting.
    pub per_disk: Vec<DiskCounters>,
}

impl ScenarioResult {
    /// The machine-independent counters the baseline gate compares.
    pub fn deterministic(&self) -> DeterministicCounters {
        let phases = [
            Some(&self.run_generation),
            Some(&self.merge),
            self.verify.as_ref(),
        ];
        let sum = |f: fn(&PhaseMetrics) -> u64| phases.iter().flatten().map(|p| f(p)).sum();
        DeterministicCounters {
            pages_read: sum(|p| p.pages_read),
            pages_written: sum(|p| p.pages_written),
            final_pass_pages_written: self.final_pass_pages_written,
            runs: self.num_runs,
            seeks: (self.scenario.threads == 1 || self.scenario.disks > 1)
                .then(|| sum(|p| p.seeks)),
        }
    }

    /// Ratio of measured to predicted relative run length; `None` without a
    /// prediction.
    pub fn prediction_ratio(&self) -> Option<f64> {
        let predicted = self.predicted_relative_run_length?;
        (predicted > 0.0).then(|| self.relative_run_length / predicted)
    }
}

/// The disk model scenarios run under by default (the `hdd-7200` catalog
/// entry; recorded in the report header so numbers are interpretable —
/// scenarios on another catalog model carry it in their id and their own
/// `device` report field).
pub fn suite_disk_model() -> DiskModel {
    ModelId::Hdd7200.params()
}

/// Reads the per-member counters off a striped device and checks they
/// fold into the device totals exactly; `[]` for single-disk devices.
/// Call only once all I/O has happened (for streams: after the drain).
fn per_disk_counters(device: &AnyDevice, scenario: &Scenario) -> Result<Vec<DiskCounters>, String> {
    let Some(stripe) = device.as_striped() else {
        return Ok(Vec::new());
    };
    let members: Vec<DiskCounters> = stripe
        .member_stats()
        .iter()
        .map(|snapshot| DiskCounters {
            pages_read: snapshot.counters.pages_read,
            pages_written: snapshot.counters.pages_written,
            seeks: snapshot.counters.seeks,
        })
        .collect();
    let totals = device.stats().counters;
    let fold = members.iter().fold([0u64; 3], |acc, m| {
        [
            acc[0] + m.pages_read,
            acc[1] + m.pages_written,
            acc[2] + m.seeks,
        ]
    });
    if fold != [totals.pages_read, totals.pages_written, totals.seeks] {
        return Err(format!(
            "scenario {}: stripe member counters {fold:?} do not fold into \
             the device totals [{}, {}, {}]",
            scenario.id(),
            totals.pages_read,
            totals.pages_written,
            totals.seeks
        ));
    }
    Ok(members)
}

fn run_job<R, I>(
    scenario: &Scenario,
    input: I,
) -> Result<(SortJobReport, Vec<DiskCounters>), String>
where
    R: SortableRecord,
    I: Iterator<Item = R>,
{
    fn go<G, R, I>(
        generator: G,
        scenario: &Scenario,
        input: I,
    ) -> Result<(SortJobReport, Vec<DiskCounters>), String>
    where
        G: ShardableGenerator,
        R: SortableRecord,
        I: Iterator<Item = R>,
    {
        let device = scenario
            .device_spec()
            .parse::<DeviceSpec>()
            .and_then(|spec| spec.build())
            .map_err(|e| format!("scenario {}: bad device spec: {e}", scenario.id()))?;
        let job = SortJob::new(generator)
            .on(&device)
            .threads(scenario.threads)
            .verify(true);
        let report = match scenario.sink {
            SinkMode::File => job
                .run_iter(input, "sorted")
                .map_err(|e| format!("scenario {} failed: {e}", scenario.id()))?,
            SinkMode::Stream => {
                // Drain the lazy stream, verifying order and completeness
                // inline (the pipeline's verify pass is file-specific).
                let stream = job
                    .stream_iter(input)
                    .map_err(|e| format!("scenario {} failed: {e}", scenario.id()))?;
                let report = stream.report().clone();
                let expected = stream.expected_records();
                let mut drained = 0u64;
                let mut previous: Option<R> = None;
                for record in stream {
                    let record = record.map_err(|e| format!("scenario {}: {e}", scenario.id()))?;
                    if previous.as_ref().is_some_and(|prev| prev > &record) {
                        return Err(format!(
                            "scenario {}: stream output not sorted at record {drained}",
                            scenario.id()
                        ));
                    }
                    previous = Some(record);
                    drained += 1;
                }
                if drained != expected {
                    return Err(format!(
                        "scenario {}: stream yielded {drained} of {expected} records",
                        scenario.id()
                    ));
                }
                if !device.list().is_empty() {
                    return Err(format!(
                        "scenario {}: drained stream left files on the device",
                        scenario.id()
                    ));
                }
                report
            }
        };
        let per_disk = per_disk_counters(&device, scenario)?;
        Ok((report, per_disk))
    }

    match scenario.generator {
        GeneratorKind::Rs => go(ReplacementSelection::new(scenario.memory), scenario, input),
        GeneratorKind::Lss => go(LoadSortStore::new(scenario.memory), scenario, input),
        GeneratorKind::Twrs => go(
            TwoWayReplacementSelection::new(TwrsConfig::recommended(scenario.memory)),
            scenario,
            input,
        ),
    }
}

/// Runs one scenario to completion and returns its measurements.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, String> {
    let input = Distribution::new(scenario.distribution, scenario.records, scenario.seed);
    let (job, per_disk) = match scenario.record_type {
        RecordType::Record => run_job(scenario, input.records())?,
        RecordType::UserEvent => run_job(scenario, input.records().map(UserEvent::from))?,
        RecordType::U64 => run_job(scenario, input.records().map(|r| r.key))?,
    };

    // The closed-form expectations describe the sequential pipeline. A
    // parallel run deals the input round-robin across `threads` shards with
    // the budget divided evenly, which preserves each shard's distribution
    // shape while scaling both its input and its memory by 1/threads — so
    // every expectation, relative to the *total* memory, divides by the
    // thread count.
    let predicted = expected_relative_run_length(
        job.report.generator,
        scenario.distribution,
        scenario.records,
        scenario.memory,
    )
    .map(|e| e.relative_run_length(scenario.records, scenario.memory) / scenario.threads as f64);

    Ok(ScenarioResult {
        scenario: *scenario,
        wall_us: job.total_wall().as_micros() as u64,
        simulated_io_us: job.total_simulated_io().as_micros() as u64,
        records_per_sec: job.records_per_second(),
        num_runs: job.num_runs() as u64,
        average_run_length: job.average_run_length(),
        relative_run_length: job.report.relative_run_length,
        predicted_relative_run_length: predicted,
        run_generation: (&job.report.run_generation).into(),
        merge: (&job.report.merge).into(),
        verify: job.report.verify.as_ref().map(PhaseMetrics::from),
        final_pass: job.final_pass,
        final_pass_pages_written: job.final_pass_pages_written(),
        io_consistent: job.io_is_consistent(),
        per_disk,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twrs_workloads::DistributionKind;

    fn scenario(generator: GeneratorKind, threads: usize) -> Scenario {
        Scenario {
            generator,
            distribution: DistributionKind::RandomUniform,
            records: 3_000,
            memory: 200,
            threads,
            record_type: RecordType::Record,
            sink: SinkMode::File,
            device: ModelId::Hdd7200,
            disks: 1,
            seed: 7,
        }
    }

    #[test]
    fn runs_are_deterministic_across_invocations() {
        for generator in GeneratorKind::all() {
            let s = scenario(generator, 1);
            let a = run_scenario(&s).unwrap();
            let b = run_scenario(&s).unwrap();
            assert_eq!(a.deterministic(), b.deterministic(), "{}", s.id());
            assert!(a.io_consistent);
            assert!(a.num_runs > 0);
        }
    }

    #[test]
    fn parallel_scenarios_omit_seeks_from_the_deterministic_set() {
        let seq = run_scenario(&scenario(GeneratorKind::Rs, 1)).unwrap();
        let par = run_scenario(&scenario(GeneratorKind::Rs, 4)).unwrap();
        assert!(seq.deterministic().seeks.is_some());
        assert!(par.deterministic().seeks.is_none());
        // Page counts stay deterministic on the parallel path too: the
        // round-robin deal and the budget split are fixed, so a repeat run
        // reproduces the exact same spill structure.
        let par_again = run_scenario(&scenario(GeneratorKind::Rs, 4)).unwrap();
        assert_eq!(par.deterministic(), par_again.deterministic());
    }

    #[test]
    fn prediction_matches_measurement_on_random_input() {
        // RS on random input: the snowplow argument says 2× memory.
        let result = run_scenario(&scenario(GeneratorKind::Rs, 1)).unwrap();
        let predicted = result.predicted_relative_run_length.expect("rs prediction");
        assert!((predicted - 2.0).abs() < 1e-9);
        let ratio = result.prediction_ratio().expect("ratio");
        assert!((0.7..1.3).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn parallel_prediction_scales_by_the_thread_count() {
        // Four shards, each with a quarter of the budget and a quarter of
        // the (still random) input: the expectation divides by 4 and still
        // tracks the measurement.
        let result = run_scenario(&scenario(GeneratorKind::Rs, 4)).unwrap();
        let predicted = result.predicted_relative_run_length.expect("rs prediction");
        assert!((predicted - 0.5).abs() < 1e-9);
        let ratio = result.prediction_ratio().expect("ratio");
        assert!((0.7..1.3).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn stream_scenarios_write_zero_final_pass_pages() {
        for generator in GeneratorKind::all() {
            for threads in [1, 4] {
                let file = scenario(generator, threads);
                let stream = Scenario {
                    sink: SinkMode::Stream,
                    ..file
                };
                let file_result = run_scenario(&file).unwrap();
                let stream_result = run_scenario(&stream).unwrap();
                // The file path pays a final write pass; the stream never
                // does — and the saving is exactly that pass.
                assert!(file_result.deterministic().final_pass_pages_written > 0);
                assert_eq!(
                    stream_result.deterministic().final_pass_pages_written,
                    0,
                    "{}",
                    stream.id()
                );
                assert_eq!(stream_result.final_pass, FinalPassKind::Streamed);
                // Generation cost is identical across the sink axis: same
                // input, same shards, same runs.
                assert_eq!(
                    stream_result.run_generation.pages_written,
                    file_result.run_generation.pages_written,
                    "{}",
                    stream.id()
                );
                assert_eq!(stream_result.num_runs, file_result.num_runs);
                // And a repeat run reproduces the stream counters exactly.
                let again = run_scenario(&stream).unwrap();
                assert_eq!(stream_result.deterministic(), again.deterministic());
            }
        }
    }

    #[test]
    fn device_models_change_simulated_time_but_not_counters() {
        // The device axis re-tests the paper's seek-dominated conclusion:
        // a near-seek-free nvme model must reproduce the hdd scenario's
        // page/seek counts exactly while its simulated I/O time collapses.
        for generator in GeneratorKind::all() {
            for threads in [1, 4] {
                let hdd = scenario(generator, threads);
                let nvme = Scenario {
                    device: ModelId::Nvme,
                    ..hdd
                };
                let hdd_result = run_scenario(&hdd).unwrap();
                let nvme_result = run_scenario(&nvme).unwrap();
                assert_eq!(
                    hdd_result.deterministic(),
                    nvme_result.deterministic(),
                    "{}",
                    nvme.id()
                );
                assert!(
                    nvme_result.simulated_io_us < hdd_result.simulated_io_us,
                    "{}: nvme {}µs !< hdd {}µs",
                    nvme.id(),
                    nvme_result.simulated_io_us,
                    hdd_result.simulated_io_us
                );
            }
        }
    }

    #[test]
    fn striped_scenarios_pin_concrete_per_disk_seeks() {
        // The whole point of the striped slice: at 4 threads on 4 disks
        // every head is single-reader again, so seeks return to the
        // deterministic set — with a per-member breakdown that folds
        // exactly into the phase totals.
        let s = Scenario {
            disks: 4,
            ..scenario(GeneratorKind::Twrs, 4)
        };
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        let det = a.deterministic();
        assert_eq!(det, b.deterministic(), "{}", s.id());
        assert!(det.seeks.is_some(), "{}: striped runs pin seeks", s.id());
        assert!(a.io_consistent);
        assert_eq!(a.per_disk.len(), 4);
        assert_eq!(a.per_disk, b.per_disk, "{}: per-disk repeatable", s.id());
        assert!(a.per_disk.iter().all(|d| d.pages_written > 0));
        // File sinks route every page through the reported phases, so the
        // member fold reproduces the deterministic totals.
        assert_eq!(
            a.per_disk.iter().map(|d| d.seeks).sum::<u64>(),
            det.seeks.unwrap()
        );
        assert_eq!(
            a.per_disk.iter().map(|d| d.pages_read).sum::<u64>(),
            det.pages_read
        );
        assert_eq!(
            a.per_disk.iter().map(|d| d.pages_written).sum::<u64>(),
            det.pages_written
        );
    }

    #[test]
    fn single_disk_scenarios_report_no_per_disk_breakdown() {
        let result = run_scenario(&scenario(GeneratorKind::Rs, 1)).unwrap();
        assert!(result.per_disk.is_empty());
    }

    #[test]
    fn contention_raises_simulated_latency_but_not_counters() {
        // A second admitted I/O client halves the stripe's fair-share
        // bandwidth for the whole run: simulated latency strictly grows
        // while every deterministic counter stays put.
        let run = |hold_extra_client: bool| {
            let device = "striped:2:sim:hdd-7200"
                .parse::<DeviceSpec>()
                .unwrap()
                .build()
                .unwrap();
            let _extra = hold_extra_client.then(|| {
                device
                    .attach_io_client()
                    .expect("striped devices admit clients")
            });
            let input = Distribution::new(DistributionKind::RandomUniform, 3_000, 7);
            SortJob::new(ReplacementSelection::new(200))
                .on(&device)
                .threads(2)
                .verify(true)
                .run_iter(input.records(), "sorted")
                .map(|report| {
                    let stats = device.stats();
                    (stats.counters, stats.sim_io, report.num_runs())
                })
                .unwrap()
        };
        let (solo_counters, solo_io, solo_runs) = run(false);
        let (contended_counters, contended_io, contended_runs) = run(true);
        assert_eq!(solo_counters, contended_counters);
        assert_eq!(solo_runs, contended_runs);
        assert!(
            contended_io > solo_io,
            "contended {contended_io:?} !> solo {solo_io:?}"
        );
    }

    #[test]
    fn record_types_sort_the_same_distribution() {
        for record_type in [RecordType::Record, RecordType::UserEvent, RecordType::U64] {
            let s = Scenario {
                record_type,
                ..scenario(GeneratorKind::Twrs, 1)
            };
            let result = run_scenario(&s).unwrap();
            assert!(result.io_consistent, "{}", s.id());
            assert!(result.verify.is_some());
            // Wider records move more pages for the same record count.
            assert!(result.deterministic().pages_written > 0);
        }
    }
}
