//! Multi-job sort-service scenarios: queue-latency percentiles and
//! deterministic aggregate I/O under memory contention.
//!
//! A [`ServiceScenario`] replays a seeded [`ArrivalTrace`] against a
//! [`SortService`] whose global budget is smaller than the sum of the
//! budgets the jobs request, so admission genuinely contends. Grants use
//! [`GrantPolicy::FixedShare`] with one share per worker and every job runs
//! single-threaded on its own scope of a shared device — which makes the
//! per-job grant, and therefore each job's page/seek/run counters, a pure
//! function of the scenario. Their *sums* are deterministic no matter how
//! the workers interleave, so the baseline gate can pin them; the queue and
//! sort latency percentiles are wall-clock and are reported, never gated.

use super::matrix::MATRIX_SEED;
use super::runner::DeterministicCounters;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use twrs_core::{TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::service::{GrantPolicy, JobStatus, Priority, ServiceConfig, SortService};
use twrs_extsort::{
    JobHandle, LatencyPercentiles, LoadSortStore, ReplacementSelection, SortError, SortJob,
    SortJobReport,
};
use twrs_storage::ModelId;
use twrs_storage::SimDevice;
use twrs_workloads::{ArrivalTrace, Distribution, DistributionKind};

/// The tenant [`ArrivalTrace::synthetic`] always names first; priority
/// scenarios elevate it.
const PRIORITY_TENANT: &str = "tenant-0";

/// Running jobs canceled per scenario to measure request→Canceled
/// latency (reported, never gated — a probe may photo-finish `Ok`).
const CANCEL_PROBES: usize = 2;

/// One multi-job service scenario: a synthetic arrival trace replayed
/// against a `SortService` under a contended global memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceScenario {
    /// Number of jobs in the trace.
    pub jobs: usize,
    /// Number of tenants the jobs are dealt over.
    pub tenants: usize,
    /// Service worker threads (= jobs in flight at once).
    pub workers: usize,
    /// Global memory budget of the arbiter, in records. Scenarios keep
    /// this *below* `jobs * memory` so admission actually contends.
    pub global_memory: usize,
    /// Input records per job.
    pub records: u64,
    /// Memory budget each job requests, in records.
    pub memory: usize,
    /// Seed of the arrival trace (and, derived, of each job's input).
    pub seed: u64,
    /// Priority weight of `tenant-0` (1 = every tenant equal). A weighted
    /// scenario checks that the heavy tenant's fixed-share grant is at
    /// least twice any other tenant's.
    pub high_weight: usize,
}

impl ServiceScenario {
    /// A stable identifier, disjoint from the single-sort scenario ids
    /// (always `service-` prefixed; `service-prio-` when one tenant is
    /// weighted), used as the baseline key.
    pub fn id(&self) -> String {
        if self.high_weight > 1 {
            format!(
                "service-prio-j{}-x{}-w{}-g{}-n{}-m{}-hw{}",
                self.jobs,
                self.tenants,
                self.workers,
                self.global_memory,
                self.records,
                self.memory,
                self.high_weight
            )
        } else {
            format!(
                "service-j{}-x{}-w{}-g{}-n{}-m{}",
                self.jobs,
                self.tenants,
                self.workers,
                self.global_memory,
                self.records,
                self.memory
            )
        }
    }
}

/// The service scenarios a matrix runs, by matrix name. Both matrices
/// include the slice by default, so the unchanged CI invocation gates it;
/// `bench_suite --service` runs only this slice.
pub fn service_slice(matrix_name: &str) -> Vec<ServiceScenario> {
    let contended = ServiceScenario {
        jobs: 8,
        tenants: 2,
        workers: 3,
        global_memory: 250,
        records: 1_500,
        memory: 120,
        seed: MATRIX_SEED,
        high_weight: 1,
    };
    // Two tenants at fixed-share weights 3:1 over four shares of 240
    // records: tenant-0 is capped at 180, tenant-1 at 60, so the grant
    // ratio — and every counter downstream of it — is deterministic.
    let prioritized = ServiceScenario {
        jobs: 8,
        tenants: 2,
        workers: 4,
        global_memory: 240,
        records: 1_500,
        memory: 200,
        seed: MATRIX_SEED,
        high_weight: 3,
    };
    match matrix_name {
        "quick" => vec![contended, prioritized],
        "full" => vec![
            contended,
            prioritized,
            ServiceScenario {
                jobs: 12,
                tenants: 3,
                workers: 4,
                global_memory: 400,
                records: 4_000,
                memory: 200,
                seed: MATRIX_SEED,
                high_weight: 1,
            },
        ],
        _ => Vec::new(),
    }
}

/// Everything measured for one service scenario.
#[derive(Debug, Clone)]
pub struct ServiceScenarioResult {
    /// The scenario that was run.
    pub scenario: ServiceScenario,
    /// Jobs that completed (must equal `scenario.jobs`; cancellation
    /// probes are counted separately).
    pub jobs_completed: usize,
    /// The smallest deterministic per-tenant memory grant under the
    /// fixed-share policy (grants are identical within a tenant; in an
    /// unweighted scenario they are identical across tenants too).
    pub granted_memory: usize,
    /// The deterministic fixed-share grant of each tenant, in tenant-name
    /// order.
    pub tenant_grants: Vec<(String, usize)>,
    /// High-water mark of simultaneously leased memory (wall-clock
    /// dependent; reported, not gated).
    pub max_leased: usize,
    /// Cancellation probes that actually ended `Canceled` (a probe may
    /// photo-finish `Ok`; wall-clock dependent, reported, not gated).
    pub jobs_canceled: usize,
    /// Queue + admission latency percentiles (submission → lease held).
    pub queue_latency: LatencyPercentiles,
    /// Sort execution latency percentiles.
    pub sort_latency: LatencyPercentiles,
    /// Cancellation latency percentiles (cancel request → the job
    /// completing as Canceled), from the scenario's cancellation probes.
    pub cancel_latency: LatencyPercentiles,
    /// Wall-clock of the whole scenario (submit → last job done), in
    /// microseconds.
    pub wall_us: u64,
    /// Aggregate deterministic counters, summed over every job.
    pub counters: DeterministicCounters,
}

impl ServiceScenarioResult {
    /// The machine-independent counters the baseline gate compares: the
    /// sum of every job's counters, which is interleaving-independent
    /// because each job runs on its own device scope with a deterministic
    /// grant.
    pub fn deterministic(&self) -> DeterministicCounters {
        self.counters
    }
}

fn job_counters(report: &SortJobReport) -> DeterministicCounters {
    let phases = [
        Some(&report.report.run_generation),
        Some(&report.report.merge),
        report.report.verify.as_ref(),
    ];
    let sum = |f: fn(&twrs_extsort::PhaseReport) -> u64| -> u64 {
        phases.iter().flatten().map(|p| f(p)).sum()
    };
    DeterministicCounters {
        pages_read: sum(|p| p.pages_read),
        pages_written: sum(|p| p.pages_written),
        final_pass_pages_written: report.report.final_pass_pages_written,
        runs: report.report.num_runs as u64,
        seeks: Some(sum(|p| p.seeks)),
    }
}

/// Runs one service scenario to completion and returns its measurements.
/// Fails on any job error, on a lost job, and on any violation of the
/// arbiter invariant `sum(leases) <= global` in the rebalance audit trail.
pub fn run_service_scenario(scenario: &ServiceScenario) -> Result<ServiceScenarioResult, String> {
    let id = scenario.id();
    let trace = ArrivalTrace::synthetic(
        scenario.tenants,
        scenario.jobs,
        scenario.records as usize,
        scenario.memory,
        Duration::ZERO,
        scenario.seed,
    );
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let mut config = ServiceConfig::new(scenario.global_memory)
        .workers(scenario.workers)
        .grant_policy(GrantPolicy::FixedShare {
            shares: scenario.workers,
        });
    if scenario.high_weight > 1 {
        config =
            config.tenant_priority(PRIORITY_TENANT, Priority::with_weight(scenario.high_weight));
    }
    let service = SortService::new(config).map_err(|e| format!("{id}: {e}"))?;

    let started = Instant::now();
    let handles: Vec<JobHandle> = trace
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, arrival)| {
            let input =
                Distribution::new(arrival.distribution, arrival.records as u64, arrival.seed)
                    .records();
            let output = format!("svc-{i}");
            // Cycle the generator families so the slice contends RS, LSS
            // and 2WRS jobs against each other, all verified inline.
            match i % 3 {
                0 => service.submit(
                    arrival.tenant.clone(),
                    SortJob::new(ReplacementSelection::new(arrival.memory_records))
                        .on(&device)
                        .verify(true),
                    input,
                    output,
                ),
                1 => service.submit(
                    arrival.tenant.clone(),
                    SortJob::new(LoadSortStore::new(arrival.memory_records))
                        .on(&device)
                        .verify(true),
                    input,
                    output,
                ),
                _ => service.submit(
                    arrival.tenant.clone(),
                    SortJob::new(TwoWayReplacementSelection::new(TwrsConfig::recommended(
                        arrival.memory_records,
                    )))
                    .on(&device)
                    .verify(true),
                    input,
                    output,
                ),
            }
            .map_err(|e| format!("{id}: submit {i} failed: {e}"))
        })
        .collect::<Result<_, String>>()?;

    let mut counters = DeterministicCounters {
        pages_read: 0,
        pages_written: 0,
        final_pass_pages_written: 0,
        runs: 0,
        seeks: Some(0),
    };
    let mut tenant_grants: BTreeMap<String, usize> = BTreeMap::new();
    for (i, handle) in handles.into_iter().enumerate() {
        let done = handle
            .wait()
            .map_err(|e| format!("{id}: job {i} failed: {e}"))?;
        if done.report.report.records != scenario.records {
            return Err(format!(
                "{id}: job {i} sorted {} of {} records",
                done.report.report.records, scenario.records
            ));
        }
        // The fixed-share grant is the same for every job of a tenant;
        // pin that here so the reported grants are meaningful.
        match tenant_grants.get(&done.tenant) {
            None => {
                tenant_grants.insert(done.tenant.clone(), done.granted_memory);
            }
            Some(&g) if g != done.granted_memory => {
                return Err(format!(
                    "{id}: fixed-share grants diverged for {} ({g} vs {})",
                    done.tenant, done.granted_memory
                ));
            }
            Some(_) => {}
        }
        let job = job_counters(&done.report);
        counters.pages_read += job.pages_read;
        counters.pages_written += job.pages_written;
        counters.final_pass_pages_written += job.final_pass_pages_written;
        counters.runs += job.runs;
        counters.seeks = counters.seeks.zip(job.seeks).map(|(a, b)| a + b);
    }
    let wall_us = started.elapsed().as_micros() as u64;

    // A weighted scenario must actually deliver the priority: the heavy
    // tenant's grant is at least twice every other tenant's.
    if scenario.high_weight > 1 {
        let high = *tenant_grants
            .get(PRIORITY_TENANT)
            .ok_or_else(|| format!("{id}: no jobs completed for {PRIORITY_TENANT}"))?;
        for (tenant, &grant) in &tenant_grants {
            if tenant != PRIORITY_TENANT && high < 2 * grant {
                return Err(format!(
                    "{id}: priority tenant granted {high}, not ≥ 2× {tenant}'s {grant}"
                ));
            }
        }
    }

    // Cancellation probes: preempt a couple of running jobs to sample the
    // request→Canceled latency. Their counters are never summed, so the
    // baseline-gated numbers stay untouched whatever the timing.
    let mut probes_completed = 0usize;
    let mut probes_canceled = 0usize;
    for probe in 0..CANCEL_PROBES {
        let input = Distribution::new(
            DistributionKind::RandomUniform,
            scenario.records * 8,
            scenario.seed ^ (0xCA0 + probe as u64),
        );
        let job = SortJob::new(ReplacementSelection::new(scenario.memory)).on(&device);
        let handle = service
            .submit("probe", job, input.records(), format!("probe-{probe}"))
            .map_err(|e| format!("{id}: probe {probe} submit failed: {e}"))?;
        let deadline = Instant::now() + Duration::from_secs(30);
        while matches!(handle.try_status(), JobStatus::Queued | JobStatus::Admitted) {
            if Instant::now() > deadline {
                return Err(format!("{id}: probe {probe} never started running"));
            }
            std::thread::yield_now();
        }
        handle.cancel();
        match handle.wait() {
            Ok(_) => probes_completed += 1,
            Err(SortError::Canceled(_)) => probes_canceled += 1,
            Err(e) => return Err(format!("{id}: probe {probe} failed: {e}")),
        }
    }

    let report = service.shutdown();
    let jobs_completed = report.jobs_completed - probes_completed;
    if jobs_completed != scenario.jobs || report.jobs_failed != 0 {
        return Err(format!(
            "{id}: {jobs_completed} of {} jobs completed ({} failed)",
            scenario.jobs, report.jobs_failed
        ));
    }
    if report.jobs_canceled != probes_canceled {
        return Err(format!(
            "{id}: {} jobs canceled, expected the {probes_canceled} probes",
            report.jobs_canceled
        ));
    }
    for event in &report.rebalances {
        if event.leased_after > scenario.global_memory {
            return Err(format!(
                "{id}: rebalance violated the global budget: {event:?}"
            ));
        }
    }
    let granted_memory = tenant_grants.values().copied().min().unwrap_or(0);
    Ok(ServiceScenarioResult {
        scenario: *scenario,
        jobs_completed,
        granted_memory,
        tenant_grants: tenant_grants.into_iter().collect(),
        max_leased: report.max_leased,
        jobs_canceled: probes_canceled,
        queue_latency: report.queue_latency,
        sort_latency: report.sort_latency,
        cancel_latency: report.cancel_latency,
        wall_us,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_contend_and_have_unique_ids() {
        for name in ["quick", "full"] {
            let slice = service_slice(name);
            assert!(!slice.is_empty(), "{name} includes the service slice");
            for scenario in &slice {
                assert!(scenario.jobs >= 8, "{}", scenario.id());
                assert!(scenario.tenants >= 2, "{}", scenario.id());
                assert!(
                    scenario.global_memory < scenario.jobs * scenario.memory,
                    "{}: global budget must be under the sum of solo budgets",
                    scenario.id()
                );
            }
            let ids: std::collections::BTreeSet<String> =
                slice.iter().map(ServiceScenario::id).collect();
            assert_eq!(ids.len(), slice.len());
        }
        assert!(service_slice("nope").is_empty());
    }

    #[test]
    fn service_counters_are_deterministic_across_runs() {
        let scenario = ServiceScenario {
            jobs: 8,
            tenants: 2,
            workers: 3,
            global_memory: 200,
            records: 800,
            memory: 100,
            seed: 7,
            high_weight: 1,
        };
        let a = run_service_scenario(&scenario).unwrap();
        let b = run_service_scenario(&scenario).unwrap();
        assert_eq!(a.deterministic(), b.deterministic());
        assert_eq!(a.granted_memory, b.granted_memory);
        assert_eq!(a.tenant_grants, b.tenant_grants);
        assert_eq!(a.jobs_completed, 8);
        assert!(a.counters.pages_written > 0);
        assert!(a.counters.seeks.unwrap() > 0, "single-threaded jobs seek");
        assert!(a.max_leased <= scenario.global_memory);
        assert!(a.queue_latency.p50 <= a.queue_latency.max);
    }

    #[test]
    fn weighted_scenario_grants_are_deterministic_and_proportional() {
        let scenario = service_slice("quick")
            .into_iter()
            .find(|s| s.high_weight > 1)
            .expect("quick matrix includes the priority scenario");
        assert!(scenario.id().starts_with("service-prio-"));
        let a = run_service_scenario(&scenario).unwrap();
        let b = run_service_scenario(&scenario).unwrap();
        assert_eq!(a.deterministic(), b.deterministic());
        assert_eq!(a.tenant_grants, b.tenant_grants);
        // 3 of 4 shares of 240 vs 1 of 4: 180 vs 60.
        assert_eq!(
            a.tenant_grants,
            vec![("tenant-0".to_string(), 180), ("tenant-1".to_string(), 60)]
        );
        assert_eq!(a.granted_memory, 60);
        // A probe may photo-finish Ok, but never more cancels than probes.
        assert!(a.jobs_canceled <= CANCEL_PROBES);
        assert!(a.cancel_latency.p50 <= a.cancel_latency.max);
    }
}
