//! The machine-readable `BENCH_<id>.json` report and its markdown summary.
//!
//! Schema (`"schema": "twrs-bench-suite/v1"`):
//!
//! ```json
//! {
//!   "schema": "twrs-bench-suite/v1",
//!   "id": "pr4",
//!   "matrix": "quick",
//!   "scenario_count": 50,
//!   "disk_model": { "seek_us": 8000, "rotational_us": 4200, "transfer_page_us": 50 },
//!   "scenarios": [
//!     {
//!       "id": "rs-random-record-n6000-m300-t1",
//!       "generator": "RS", "distribution": "random", "record_type": "record",
//!       "sink": "file", "device": "hdd-7200", "disks": 1,
//!       "final_pass_pages_written": 97,
//!       "records": 6000, "memory_records": 300, "threads": 1, "seed": 42,
//!       "wall_us": 1234, "simulated_io_us": 56789, "records_per_sec": 4861448.2,
//!       "runs": 10, "avg_run_length": 600.0,
//!       "relative_run_length": 2.0, "predicted_relative_run_length": 2.0,
//!       "phases": {
//!         "run_generation": { "wall_us": 1, "pages_read": 0, "pages_written": 24, "seeks": 0, "simulated_io_us": 1200 },
//!         "merge": { "..." : "same shape" },
//!         "verify": { "..." : "same shape, or null for sink/stream scenarios" }
//!       },
//!       "deterministic": { "pages_read": 48, "pages_written": 48, "final_pass_pages_written": 97, "runs": 10, "seeks": 13 },
//!       "per_disk": [ { "pages_read": 24, "pages_written": 24, "seeks": 7 } ],
//!       "io_consistent": true
//!     }
//!   ]
//! }
//! ```
//!
//! Wall-clock fields vary by machine; everything under `deterministic` is
//! identical everywhere (`seeks` is `null` for multi-threaded scenarios,
//! where read interleaving through the one shared disk head is
//! scheduler-dependent — except on striped scenarios, `"disks" > 1`, where
//! shard-pinned spills and the per-disk reduction keep every member head
//! single-reader and seeks concrete again) and is what the CI baseline
//! gate pins. `per_disk` lists each stripe member's counters in stripe
//! order (empty on single-disk scenarios); the runner verifies the fold
//! against the device totals before reporting. `"sink": "stream"` scenarios run through
//! `SortJob::stream_iter`; their pinned `final_pass_pages_written` is `0` —
//! the gated "stream writes zero final-pass pages" invariant — and their
//! phase metrics cover generation plus the intermediate merge passes only
//! (the suspended final merge happens while the runner drains the stream).

use super::json::Json;
use super::matrix::ScenarioMatrix;
use super::runner::{run_scenario, suite_disk_model, PhaseMetrics, ScenarioResult};
use super::service::{run_service_scenario, service_slice, ServiceScenarioResult};
use crate::report::Table;
use twrs_extsort::LatencyPercentiles;

/// Identifier of the report format, bumped on breaking schema changes.
pub const SCHEMA: &str = "twrs-bench-suite/v1";

/// A fully executed scenario matrix.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Caller-chosen report id (e.g. the PR number or CI run id).
    pub id: String,
    /// Name of the matrix that was run (`"quick"` / `"full"`).
    pub matrix: &'static str,
    /// Per-scenario measurements, in matrix order.
    pub results: Vec<ScenarioResult>,
    /// Multi-job service scenario measurements (the matrix's service
    /// slice; empty for matrices without one).
    pub service_results: Vec<ServiceScenarioResult>,
}

impl BenchReport {
    /// Runs every scenario of `matrix` and collects the results. The
    /// optional `progress` callback receives each scenario id as it
    /// finishes (the CLI prints them; tests pass `None`-like no-ops).
    pub fn run(
        matrix: &ScenarioMatrix,
        id: impl Into<String>,
        mut progress: impl FnMut(&str),
    ) -> Result<Self, String> {
        let mut results = Vec::with_capacity(matrix.len());
        for scenario in &matrix.scenarios {
            let result = run_scenario(scenario)?;
            if !result.io_consistent {
                return Err(format!(
                    "scenario {}: I/O accounting did not reconcile",
                    scenario.id()
                ));
            }
            progress(&scenario.id());
            results.push(result);
        }
        let mut service_results = Vec::new();
        for scenario in service_slice(matrix.name) {
            let result = run_service_scenario(&scenario)?;
            progress(&scenario.id());
            service_results.push(result);
        }
        Ok(BenchReport {
            id: id.into(),
            matrix: matrix.name,
            results,
            service_results,
        })
    }

    /// Serializes the full report.
    pub fn to_json(&self) -> Json {
        let model = suite_disk_model();
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.into())),
            ("id", Json::Str(self.id.clone())),
            ("matrix", Json::Str(self.matrix.into())),
            ("scenario_count", Json::counter(self.results.len() as u64)),
            (
                "disk_model",
                Json::obj(vec![
                    ("seek_us", Json::Num(model.seek_us)),
                    ("rotational_us", Json::Num(model.rotational_us)),
                    ("transfer_page_us", Json::Num(model.transfer_page_us)),
                ]),
            ),
            (
                "scenarios",
                Json::Arr(self.results.iter().map(scenario_json).collect()),
            ),
            (
                "service_scenario_count",
                Json::counter(self.service_results.len() as u64),
            ),
            (
                "service_scenarios",
                Json::Arr(self.service_results.iter().map(service_json).collect()),
            ),
        ])
    }

    /// Renders the human-facing summary table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# Bench suite report `{}` ({} matrix, {} scenarios)\n\n",
            self.id,
            self.matrix,
            self.results.len()
        ));
        out.push_str(
            "| scenario | krec/s | runs | avg run len | rel (meas/pred) | pages R | pages W | final W | seeks | sim I/O ms |\n",
        );
        out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
        for result in &self.results {
            let det = result.deterministic();
            let predicted = result
                .predicted_relative_run_length
                .map_or("—".to_string(), |p| format!("{p:.2}"));
            out.push_str(&format!(
                "| {} | {:.0} | {} | {:.1} | {:.2} / {} | {} | {} | {} | {} | {:.1} |\n",
                result.scenario.id(),
                result.records_per_sec / 1_000.0,
                det.runs,
                result.average_run_length,
                result.relative_run_length,
                predicted,
                det.pages_read,
                det.pages_written,
                det.final_pass_pages_written,
                det.seeks.map_or("—".to_string(), |s| s.to_string()),
                result.simulated_io_us as f64 / 1_000.0,
            ));
        }
        if !self.service_results.is_empty() {
            out.push_str(
                "\n## Service scenarios\n\n\
                 Queue latency is submission → memory lease held; sort latency is\n\
                 execution only; cancel latency is cancel request → the probe job\n\
                 completing as Canceled. All three are wall-clock (reported, not\n\
                 gated); the page/run/seek sums are deterministic and\n\
                 baseline-gated. `grants` lists each tenant's fixed-share memory\n\
                 grant — in a `service-prio-` scenario the weighted tenant's share\n\
                 is proportionally larger.\n\n",
            );
            out.push_str(
                "| scenario | jobs | grants | queue p50 ms | queue p99 ms | sort p50 ms | sort p99 ms | cancel p50 ms | cancel p95 ms | pages R | pages W | runs | seeks |\n",
            );
            out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
            for result in &self.service_results {
                let det = result.deterministic();
                let grants = result
                    .tenant_grants
                    .iter()
                    .map(|(_, grant)| grant.to_string())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push_str(&format!(
                    "| {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {} | {} | {} | {} |\n",
                    result.scenario.id(),
                    result.jobs_completed,
                    grants,
                    result.queue_latency.p50.as_secs_f64() * 1_000.0,
                    result.queue_latency.p99.as_secs_f64() * 1_000.0,
                    result.sort_latency.p50.as_secs_f64() * 1_000.0,
                    result.sort_latency.p99.as_secs_f64() * 1_000.0,
                    result.cancel_latency.p50.as_secs_f64() * 1_000.0,
                    result.cancel_latency.p95.as_secs_f64() * 1_000.0,
                    det.pages_read,
                    det.pages_written,
                    det.runs,
                    det.seeks.map_or("—".to_string(), |s| s.to_string()),
                ));
            }
        }
        out
    }

    /// The plain-text summary of the service slice, in the CLI table
    /// style; `None` when the matrix had no service scenarios.
    pub fn service_table(&self) -> Option<Table> {
        if self.service_results.is_empty() {
            return None;
        }
        let mut table = Table::new(
            format!("service scenarios — {} matrix", self.matrix),
            &[
                "scenario", "jobs", "grants", "q p50", "q p99", "s p50", "s p99", "c p50", "c p95",
                "pR", "pW", "runs", "seeks",
            ],
        );
        for result in &self.service_results {
            let det = result.deterministic();
            let grants = result
                .tenant_grants
                .iter()
                .map(|(_, grant)| grant.to_string())
                .collect::<Vec<_>>()
                .join("/");
            table.row(vec![
                result.scenario.id(),
                result.jobs_completed.to_string(),
                grants,
                format!("{:.2}ms", result.queue_latency.p50.as_secs_f64() * 1_000.0),
                format!("{:.2}ms", result.queue_latency.p99.as_secs_f64() * 1_000.0),
                format!("{:.2}ms", result.sort_latency.p50.as_secs_f64() * 1_000.0),
                format!("{:.2}ms", result.sort_latency.p99.as_secs_f64() * 1_000.0),
                format!("{:.2}ms", result.cancel_latency.p50.as_secs_f64() * 1_000.0),
                format!("{:.2}ms", result.cancel_latency.p95.as_secs_f64() * 1_000.0),
                det.pages_read.to_string(),
                det.pages_written.to_string(),
                det.runs.to_string(),
                det.seeks.map_or("-".to_string(), |s| s.to_string()),
            ]);
        }
        Some(table)
    }

    /// Renders the plain-text summary the CLI prints to stdout (same rows
    /// as the markdown, in the experiment binaries' table style).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!("bench suite `{}` — {} matrix", self.id, self.matrix),
            &[
                "scenario", "krec/s", "runs", "avg", "rel", "pred", "pR", "pW", "fpW", "seeks",
                "simIO",
            ],
        );
        for result in &self.results {
            let det = result.deterministic();
            table.row(vec![
                result.scenario.id(),
                format!("{:.0}", result.records_per_sec / 1_000.0),
                det.runs.to_string(),
                format!("{:.1}", result.average_run_length),
                format!("{:.2}", result.relative_run_length),
                result
                    .predicted_relative_run_length
                    .map_or("-".to_string(), |p| format!("{p:.2}")),
                det.pages_read.to_string(),
                det.pages_written.to_string(),
                det.final_pass_pages_written.to_string(),
                det.seeks.map_or("-".to_string(), |s| s.to_string()),
                format!("{:.1}ms", result.simulated_io_us as f64 / 1_000.0),
            ]);
        }
        table
    }
}

fn phase_json(phase: &PhaseMetrics) -> Json {
    Json::obj(vec![
        ("wall_us", Json::counter(phase.wall_us)),
        ("pages_read", Json::counter(phase.pages_read)),
        ("pages_written", Json::counter(phase.pages_written)),
        ("seeks", Json::counter(phase.seeks)),
        ("simulated_io_us", Json::counter(phase.simulated_io_us)),
    ])
}

fn scenario_json(result: &ScenarioResult) -> Json {
    let scenario = &result.scenario;
    let det = result.deterministic();
    Json::obj(vec![
        ("id", Json::Str(scenario.id())),
        ("generator", Json::Str(scenario.generator.label().into())),
        (
            "distribution",
            Json::Str(scenario.distribution.label().into()),
        ),
        ("record_type", Json::Str(scenario.record_type.slug().into())),
        ("sink", Json::Str(scenario.sink.slug().into())),
        ("device", Json::Str(scenario.device.name().into())),
        ("disks", Json::counter(scenario.disks as u64)),
        (
            "final_pass_pages_written",
            Json::counter(result.final_pass_pages_written),
        ),
        (
            "record_size_bytes",
            Json::counter(scenario.record_type.size_bytes() as u64),
        ),
        ("records", Json::counter(scenario.records)),
        ("memory_records", Json::counter(scenario.memory as u64)),
        ("threads", Json::counter(scenario.threads as u64)),
        ("seed", Json::counter(scenario.seed)),
        ("wall_us", Json::counter(result.wall_us)),
        ("simulated_io_us", Json::counter(result.simulated_io_us)),
        ("records_per_sec", Json::Num(result.records_per_sec)),
        ("runs", Json::counter(result.num_runs)),
        ("avg_run_length", Json::Num(result.average_run_length)),
        ("relative_run_length", Json::Num(result.relative_run_length)),
        (
            "predicted_relative_run_length",
            result
                .predicted_relative_run_length
                .map_or(Json::Null, Json::Num),
        ),
        (
            "phases",
            Json::obj(vec![
                ("run_generation", phase_json(&result.run_generation)),
                ("merge", phase_json(&result.merge)),
                (
                    "verify",
                    result.verify.as_ref().map_or(Json::Null, phase_json),
                ),
            ]),
        ),
        ("deterministic", deterministic_json(&det)),
        (
            "per_disk",
            Json::Arr(
                result
                    .per_disk
                    .iter()
                    .map(|disk| {
                        Json::obj(vec![
                            ("pages_read", Json::counter(disk.pages_read)),
                            ("pages_written", Json::counter(disk.pages_written)),
                            ("seeks", Json::counter(disk.seeks)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("io_consistent", Json::Bool(result.io_consistent)),
    ])
}

fn latency_json(latency: &LatencyPercentiles) -> Json {
    Json::obj(vec![
        ("p50_us", Json::counter(latency.p50.as_micros() as u64)),
        ("p95_us", Json::counter(latency.p95.as_micros() as u64)),
        ("p99_us", Json::counter(latency.p99.as_micros() as u64)),
        ("max_us", Json::counter(latency.max.as_micros() as u64)),
    ])
}

fn service_json(result: &ServiceScenarioResult) -> Json {
    let scenario = &result.scenario;
    Json::obj(vec![
        ("id", Json::Str(scenario.id())),
        ("jobs", Json::counter(scenario.jobs as u64)),
        ("tenants", Json::counter(scenario.tenants as u64)),
        ("workers", Json::counter(scenario.workers as u64)),
        (
            "global_memory_records",
            Json::counter(scenario.global_memory as u64),
        ),
        ("records_per_job", Json::counter(scenario.records)),
        (
            "memory_records_per_job",
            Json::counter(scenario.memory as u64),
        ),
        ("seed", Json::counter(scenario.seed)),
        (
            "jobs_completed",
            Json::counter(result.jobs_completed as u64),
        ),
        (
            "granted_memory_records",
            Json::counter(result.granted_memory as u64),
        ),
        ("max_leased", Json::counter(result.max_leased as u64)),
        ("high_weight", Json::counter(scenario.high_weight as u64)),
        (
            "tenant_grants",
            Json::Arr(
                result
                    .tenant_grants
                    .iter()
                    .map(|(tenant, grant)| {
                        Json::obj(vec![
                            ("tenant", Json::Str(tenant.clone())),
                            ("granted_memory_records", Json::counter(*grant as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("jobs_canceled", Json::counter(result.jobs_canceled as u64)),
        ("wall_us", Json::counter(result.wall_us)),
        ("queue_latency", latency_json(&result.queue_latency)),
        ("sort_latency", latency_json(&result.sort_latency)),
        ("cancel_latency", latency_json(&result.cancel_latency)),
        ("deterministic", deterministic_json(&result.deterministic())),
    ])
}

pub(crate) fn deterministic_json(det: &super::runner::DeterministicCounters) -> Json {
    Json::obj(vec![
        ("pages_read", Json::counter(det.pages_read)),
        ("pages_written", Json::counter(det.pages_written)),
        (
            "final_pass_pages_written",
            Json::counter(det.final_pass_pages_written),
        ),
        ("runs", Json::counter(det.runs)),
        ("seeks", det.seeks.map_or(Json::Null, Json::counter)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::matrix::{GeneratorKind, RecordType, Scenario, SinkMode, MATRIX_SEED};
    use twrs_storage::ModelId;
    use twrs_workloads::DistributionKind;

    fn tiny_matrix() -> ScenarioMatrix {
        let scenarios = [1usize, 4]
            .into_iter()
            .map(|threads| Scenario {
                generator: GeneratorKind::Rs,
                distribution: DistributionKind::RandomUniform,
                records: 1_500,
                memory: 128,
                threads,
                record_type: RecordType::Record,
                sink: SinkMode::File,
                device: ModelId::Hdd7200,
                disks: 1,
                seed: MATRIX_SEED,
            })
            .collect();
        ScenarioMatrix {
            name: "quick",
            scenarios,
        }
    }

    #[test]
    fn report_serializes_and_reparses() {
        let report = BenchReport::run(&tiny_matrix(), "test", |_| {}).unwrap();
        let text = report.to_json().render();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(parsed.get("matrix").and_then(Json::as_str), Some("quick"));
        let scenarios = parsed.get("scenarios").and_then(Json::as_arr).unwrap();
        assert_eq!(scenarios.len(), 2);
        let first = &scenarios[0];
        assert_eq!(first.get("generator").and_then(Json::as_str), Some("RS"));
        assert_eq!(first.get("threads").and_then(Json::as_u64), Some(1));
        let det = first.get("deterministic").unwrap();
        assert!(det.get("pages_written").and_then(Json::as_u64).unwrap() > 0);
        assert!(det.get("seeks").and_then(Json::as_u64).is_some());
        // The 4-thread scenario reports null seeks.
        let det4 = scenarios[1].get("deterministic").unwrap();
        assert_eq!(det4.get("seeks"), Some(&Json::Null));
        // Single-disk scenarios carry an empty per-disk breakdown.
        assert_eq!(first.get("disks").and_then(Json::as_u64), Some(1));
        let per_disk = first.get("per_disk").and_then(Json::as_arr).unwrap();
        assert!(per_disk.is_empty());
    }

    #[test]
    fn striped_scenarios_serialize_their_per_disk_breakdown() {
        let matrix = ScenarioMatrix {
            name: "striped-report-test",
            scenarios: vec![Scenario {
                generator: GeneratorKind::Twrs,
                distribution: DistributionKind::RandomUniform,
                records: 1_500,
                memory: 128,
                threads: 4,
                record_type: RecordType::Record,
                sink: SinkMode::File,
                device: ModelId::Hdd7200,
                disks: 2,
                seed: MATRIX_SEED,
            }],
        };
        let report = BenchReport::run(&matrix, "test", |_| {}).unwrap();
        let parsed = Json::parse(&report.to_json().render()).unwrap();
        let scenario = &parsed.get("scenarios").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(scenario.get("disks").and_then(Json::as_u64), Some(2));
        // Striped multi-threaded scenarios pin concrete seeks...
        let det = scenario.get("deterministic").unwrap();
        let total_seeks = det.get("seeks").and_then(Json::as_u64).expect("concrete");
        // ...and the serialized members fold back into the totals.
        let per_disk = scenario.get("per_disk").and_then(Json::as_arr).unwrap();
        assert_eq!(per_disk.len(), 2);
        let fold: u64 = per_disk
            .iter()
            .map(|d| d.get("seeks").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(fold, total_seeks);
        assert!(per_disk
            .iter()
            .all(|d| d.get("pages_written").and_then(Json::as_u64).unwrap() > 0));
    }

    #[test]
    fn markdown_and_table_cover_every_scenario() {
        let report = BenchReport::run(&tiny_matrix(), "test", |_| {}).unwrap();
        let markdown = report.to_markdown();
        let table = report.to_table().render();
        for result in &report.results {
            assert!(markdown.contains(&result.scenario.id()));
            assert!(table.contains(&result.scenario.id()));
        }
        assert!(markdown.contains("| scenario |"));
    }

    #[test]
    fn progress_callback_sees_every_scenario_id() {
        let matrix = tiny_matrix();
        let mut seen = Vec::new();
        BenchReport::run(&matrix, "test", |id| seen.push(id.to_string())).unwrap();
        // Matrix scenarios first, then the matrix's service slice.
        let mut expected: Vec<String> = matrix.scenarios.iter().map(Scenario::id).collect();
        expected.extend(
            crate::suite::service::service_slice(matrix.name)
                .iter()
                .map(|s| s.id()),
        );
        assert_eq!(seen, expected);
    }

    #[test]
    fn service_slice_rides_in_report_markdown_and_json() {
        let report = BenchReport::run(&tiny_matrix(), "test", |_| {}).unwrap();
        assert!(
            !report.service_results.is_empty(),
            "quick includes the slice"
        );
        let markdown = report.to_markdown();
        assert!(markdown.contains("## Service scenarios"));
        assert!(markdown.contains("queue p50"));
        let parsed = Json::parse(&report.to_json().render()).unwrap();
        let services = parsed
            .get("service_scenarios")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(services.len(), report.service_results.len());
        let first = &services[0];
        assert!(first
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("service-"));
        let queue = first.get("queue_latency").unwrap();
        assert!(queue.get("p50_us").and_then(Json::as_u64).is_some());
        assert!(queue.get("p99_us").and_then(Json::as_u64).is_some());
        let cancel = first.get("cancel_latency").unwrap();
        assert!(cancel.get("p50_us").and_then(Json::as_u64).is_some());
        assert!(cancel.get("p95_us").and_then(Json::as_u64).is_some());
        let grants = first.get("tenant_grants").and_then(Json::as_arr).unwrap();
        assert!(!grants.is_empty());
        assert!(grants[0].get("tenant").and_then(Json::as_str).is_some());
        assert!(first.get("jobs_canceled").and_then(Json::as_u64).is_some());
        // The quick matrix includes a weighted scenario whose priority
        // tenant's grant is at least twice the other tenant's.
        let prio = services
            .iter()
            .find(|s| {
                s.get("id")
                    .and_then(Json::as_str)
                    .unwrap()
                    .starts_with("service-prio-")
            })
            .expect("quick matrix includes the priority scenario");
        let prio_grants = prio.get("tenant_grants").and_then(Json::as_arr).unwrap();
        let grant_of = |i: usize| {
            prio_grants[i]
                .get("granted_memory_records")
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert!(grant_of(0) >= 2 * grant_of(1));
        assert!(markdown.contains("cancel p50"));
        // Aggregate counters are present and non-null seeks (single-threaded jobs).
        let det = first.get("deterministic").unwrap();
        assert!(det.get("seeks").and_then(Json::as_u64).is_some());
        assert!(report
            .service_table()
            .unwrap()
            .render()
            .contains("service-"));
    }
}
