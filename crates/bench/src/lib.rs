//! Experiment harness regenerating every table and figure of the 2WRS
//! evaluation (Chapters 5 and 6 of the paper plus the model of §3.6).
//!
//! Each experiment lives in [`experiments`] as a pure function returning
//! structured rows; the `src/bin/*` binaries are thin wrappers that pick a
//! scale (laptop-scale defaults, paper scale behind a flag) and print the
//! rows as a paper-style table. The Criterion benches under `benches/`
//! exercise the same code paths at micro scale so `cargo bench` gives
//! wall-clock numbers for the main pipelines.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 5.13 / conference Table 1 | [`experiments::run_length`] | `run_length_table` |
//! | Figure 5.4 (run length vs buffer size) | [`experiments::buffer_sweep`] | `buffer_size_sweep` |
//! | Tables 5.2–5.12, Figures 5.2–5.12 | [`experiments::anova`] | `anova_experiments` |
//! | Figure 6.1 (fan-in analysis) | [`experiments::fan_in`] | `fan_in_analysis` |
//! | Figures 6.2–6.7 (timing) | [`experiments::timing`] | `timing_figures` |
//! | Figure 3.8 (snowplow model) | [`experiments::model`] | `snowplow_model` |
//! | Table 2.1 (polyphase merge) | [`experiments::merge_phase`] | `merge_phase` |
//!
//! Beyond the paper's artefacts, the [`suite`] module is the repo's
//! measurement backbone: a declarative scenario matrix executed by the
//! `bench_suite` binary into machine-readable `BENCH_<id>.json` reports,
//! with a deterministic-I/O baseline gate CI runs on every PR.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod scale;
pub mod suite;

pub use report::Table;
pub use scale::Scale;
