//! Criterion bench behind Table 5.13: run generation of RS vs 2WRS on each
//! input distribution, measuring throughput at micro scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twrs_bench::experiments::run_length;
use twrs_bench::Scale;
use twrs_workloads::DistributionKind;

fn bench_run_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_5_13_run_length");
    group.sample_size(10);
    let scale = Scale {
        records: 10_000,
        memory: 250,
        replicates: 1,
    };
    for kind in DistributionKind::paper_set() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| b.iter(|| run_length::measure_row(*kind, scale)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_run_length);
criterion_main!(benches);
