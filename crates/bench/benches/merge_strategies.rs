//! Microbenchmarks of the merge phase: multi-pass k-way merge vs polyphase
//! merge, and the distribution-sort alternative (Chapter 2 context).

use criterion::{criterion_group, criterion_main, Criterion};
use twrs_extsort::distribution_sort::{DistributionSort, DistributionSortConfig};
use twrs_extsort::{
    polyphase_merge, KWayMerger, LoadSortStore, MergeConfig, RunGenerator, RunHandle,
};
use twrs_storage::ModelId;
use twrs_storage::{SimDevice, SpillNamer};
use twrs_workloads::{Distribution, DistributionKind, Record};

fn build_runs(device: &SimDevice, namer: &SpillNamer, runs: usize, per_run: u64) -> Vec<RunHandle> {
    let mut generator = LoadSortStore::new(per_run as usize);
    let mut input =
        Distribution::new(DistributionKind::RandomUniform, per_run * runs as u64, 5).records();
    generator
        .generate(device, namer, &mut input)
        .expect("run generation succeeds")
        .runs
}

fn bench_merges(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_strategies");
    group.sample_size(10);

    group.bench_function("kway_fan_in_10", |b| {
        b.iter(|| {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let namer = SpillNamer::new("kway");
            let runs = build_runs(&device, &namer, 20, 1_024);
            KWayMerger::new(MergeConfig {
                fan_in: 10,
                read_ahead_records: 256,
            })
            .merge_into::<_, Record>(&device, &namer, runs, "out")
            .expect("merge succeeds")
            .output_records
        })
    });

    group.bench_function("polyphase_6_tapes", |b| {
        b.iter(|| {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let namer = SpillNamer::new("poly");
            let runs = build_runs(&device, &namer, 20, 1_024);
            polyphase_merge::<_, Record>(&device, &namer, runs, 6, "out").expect("merge succeeds")
        })
    });

    group.bench_function("distribution_sort", |b| {
        b.iter(|| {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let namer = SpillNamer::new("dsort");
            let sorter = DistributionSort::new(DistributionSortConfig {
                memory_records: 1_024,
                buckets: 16,
                max_depth: 6,
            });
            let mut input = Distribution::new(DistributionKind::RandomUniform, 20_480, 5).records();
            sorter
                .sort(&device, &namer, &mut input, "out")
                .expect("sort succeeds")
                .records
        })
    });

    group.finish();
}

criterion_group!(benches, bench_merges);
criterion_main!(benches);
