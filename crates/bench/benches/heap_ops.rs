//! Microbenchmarks of the heap substrate: classic binary heap vs the shared
//! dual-heap array used by 2WRS (Chapter 3.1 / §4.1 structures).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use twrs_heaps::{BinaryHeap, DualHeap, HeapKind, HeapSide};

const OPS: u64 = 10_000;

fn bench_heaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap_operations");
    group.throughput(Throughput::Elements(OPS));

    group.bench_function("binary_heap_push_pop", |b| {
        b.iter(|| {
            let mut heap = BinaryHeap::with_capacity(HeapKind::Min, OPS as usize);
            for i in 0..OPS {
                heap.push(i.wrapping_mul(2_654_435_761) % 1_000_000)
                    .unwrap();
            }
            let mut out = 0u64;
            while let Some(v) = heap.pop() {
                out = out.wrapping_add(v);
            }
            out
        })
    });

    group.bench_function("binary_heap_replace_top", |b| {
        b.iter(|| {
            let mut heap = BinaryHeap::from_vec(
                HeapKind::Min,
                (0..1_000u64).map(|i| i * 7 % 1_000).collect(),
            );
            let mut out = 0u64;
            for i in 0..OPS {
                out = out.wrapping_add(
                    heap.replace_top(i.wrapping_mul(2_654_435_761) % 1_000_000)
                        .unwrap_or(0),
                );
            }
            out
        })
    });

    group.bench_function("dual_heap_push_pop_both_sides", |b| {
        b.iter(|| {
            let mut dual: DualHeap<u64> = DualHeap::new(OPS as usize);
            for i in 0..OPS {
                let side = if i % 2 == 0 {
                    HeapSide::Top
                } else {
                    HeapSide::Bottom
                };
                dual.push(side, i.wrapping_mul(2_654_435_761) % 1_000_000)
                    .unwrap();
            }
            let mut out = 0u64;
            while let Some(v) = dual.pop(HeapSide::Top) {
                out = out.wrapping_add(v);
            }
            while let Some(v) = dual.pop(HeapSide::Bottom) {
                out = out.wrapping_add(v);
            }
            out
        })
    });

    group.finish();
}

criterion_group!(benches, bench_heaps);
criterion_main!(benches);
