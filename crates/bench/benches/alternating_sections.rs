//! Criterion bench behind Figure 6.6: sorting alternating input with a
//! varying number of monotone sections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twrs_core::{TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::{ExternalSorter, ReplacementSelection, RunGenerator, SorterConfig};
use twrs_storage::ModelId;
use twrs_storage::SimDevice;
use twrs_workloads::{Distribution, DistributionKind};

const RECORDS: u64 = 20_000;
const MEMORY: usize = 200;

fn sort<G: RunGenerator>(generator: G, sections: u32) -> u64 {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let mut sorter = ExternalSorter::with_config(generator, SorterConfig::default());
    let mut input =
        Distribution::new(DistributionKind::Alternating { sections }, RECORDS, 1).records();
    sorter
        .sort_iter(&device, &mut input, "out")
        .expect("sort succeeds")
        .records
}

fn bench_alternating(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_6_6_alternating_sections");
    group.sample_size(10);
    for sections in [2u32, 10, 50, 200] {
        group.bench_with_input(
            BenchmarkId::new("rs", sections),
            &sections,
            |b, sections| b.iter(|| sort(ReplacementSelection::new(MEMORY), *sections)),
        );
        group.bench_with_input(
            BenchmarkId::new("twrs", sections),
            &sections,
            |b, sections| {
                b.iter(|| {
                    sort(
                        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
                        *sections,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alternating);
criterion_main!(benches);
