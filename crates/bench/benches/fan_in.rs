//! Criterion bench behind Figure 6.1: the k-way merge at several fan-ins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twrs_bench::experiments::fan_in::{measure, FanInExperiment};

fn bench_fan_in(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_6_1_fan_in");
    group.sample_size(10);
    for fan_in in [2usize, 5, 10, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(fan_in), &fan_in, |b, fan_in| {
            b.iter(|| {
                measure(FanInExperiment {
                    runs: 24,
                    records_per_run: 1_024,
                    total_read_ahead_records: 2_048,
                    fan_ins: *fan_in..=*fan_in,
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fan_in);
criterion_main!(benches);
