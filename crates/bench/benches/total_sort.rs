//! Criterion bench behind Figures 6.2–6.5 and 6.7: end-to-end sorting
//! (run generation + merge) of RS vs 2WRS per input distribution, plus the
//! 1-vs-N-thread comparison of the parallel sorter on the same pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use twrs_core::{TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::{
    ExternalSorter, MergeConfig, ParallelExternalSorter, ParallelSorterConfig,
    ReplacementSelection, RunGenerator, SorterConfig,
};
use twrs_storage::ModelId;
use twrs_storage::SimDevice;
use twrs_workloads::{Distribution, DistributionKind};

const RECORDS: u64 = 20_000;
const MEMORY: usize = 400;

fn sort<G: RunGenerator>(generator: G, kind: DistributionKind) -> u64 {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let config = SorterConfig {
        merge: MergeConfig {
            fan_in: 10,
            read_ahead_records: 256,
        },
        verify: false,
    };
    let mut sorter = ExternalSorter::with_config(generator, config);
    let mut input = Distribution::new(kind, RECORDS, 1).records();
    sorter
        .sort_iter(&device, &mut input, "out")
        .expect("sort succeeds")
        .records
}

fn bench_total_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("total_sort");
    group.throughput(Throughput::Elements(RECORDS));
    group.sample_size(10);
    for kind in [
        DistributionKind::RandomUniform,
        DistributionKind::MixedBalanced,
        DistributionKind::ReverseSorted,
    ] {
        group.bench_with_input(BenchmarkId::new("rs", kind.label()), &kind, |b, kind| {
            b.iter(|| sort(ReplacementSelection::new(MEMORY), *kind))
        });
        group.bench_with_input(BenchmarkId::new("twrs", kind.label()), &kind, |b, kind| {
            b.iter(|| {
                sort(
                    TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
                    *kind,
                )
            })
        });
    }
    group.finish();
}

fn sort_parallel(threads: usize, kind: DistributionKind) -> u64 {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let config = ParallelSorterConfig {
        threads,
        merge: MergeConfig {
            fan_in: 10,
            read_ahead_records: 256,
        },
        verify: false,
        spill_queue_pages: 64,
        prefetch_batches: 4,
        shard_batch_records: 256,
    };
    let mut sorter = ParallelExternalSorter::with_config(
        TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
        config,
    );
    let mut input = Distribution::new(kind, RECORDS, 1).records();
    sorter
        .sort_iter(&device, &mut input, "out")
        .expect("sort succeeds")
        .report
        .records
}

/// 1-vs-N threads on the random distribution: the sequential sorter as the
/// baseline, then the parallel sorter at increasing shard counts with the
/// same total memory budget.
fn bench_parallel_total_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("total_sort_parallel");
    group.throughput(Throughput::Elements(RECORDS));
    group.sample_size(10);
    let kind = DistributionKind::RandomUniform;
    group.bench_with_input(
        BenchmarkId::new("twrs-sequential", 1usize),
        &kind,
        |b, kind| {
            b.iter(|| {
                sort(
                    TwoWayReplacementSelection::new(TwrsConfig::recommended(MEMORY)),
                    *kind,
                )
            })
        },
    );
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("twrs-parallel", threads),
            &threads,
            |b, threads| b.iter(|| sort_parallel(*threads, kind)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_total_sort, bench_parallel_total_sort);
criterion_main!(benches);
