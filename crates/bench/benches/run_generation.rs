//! Criterion bench of the run-generation algorithms alone (Figure 5.4
//! context): RS, LSS and 2WRS with different buffer sizes on random input —
//! plus a redesign guard pinning the generic (`SortableRecord`) code path
//! against a pre-redesign concrete reimplementation for the default
//! `Record`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use twrs_core::{BufferSetup, TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::{
    ForwardRunBuilder, LoadSortStore, ReplacementSelection, RunGenerator, RunHandle, RunSet,
};
use twrs_heaps::{BinaryHeap, HeapKind, RunRecord};
use twrs_storage::ModelId;
use twrs_storage::{SimDevice, SpillNamer};
use twrs_workloads::{Distribution, DistributionKind, Record};

const RECORDS: u64 = 20_000;
const MEMORY: usize = 500;

fn generate<G: RunGenerator>(mut generator: G) -> usize {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("bench");
    let mut input = Distribution::new(DistributionKind::RandomUniform, RECORDS, 1).records();
    generator
        .generate(&device, &namer, &mut input)
        .expect("run generation succeeds")
        .num_runs()
}

fn bench_run_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_generation_random");
    group.throughput(Throughput::Elements(RECORDS));
    group.sample_size(10);

    group.bench_function("load_sort_store", |b| {
        b.iter(|| generate(LoadSortStore::new(MEMORY)))
    });
    group.bench_function("replacement_selection", |b| {
        b.iter(|| generate(ReplacementSelection::new(MEMORY)))
    });
    for fraction in [0.002, 0.02, 0.2] {
        group.bench_with_input(
            BenchmarkId::new("twrs_buffer_fraction", fraction),
            &fraction,
            |b, fraction| {
                b.iter(|| {
                    generate(TwoWayReplacementSelection::new(
                        TwrsConfig::recommended(MEMORY).with_buffers(BufferSetup::Both, *fraction),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Replacement selection exactly as it was written before the generic
/// redesign: hard-coded to the concrete `Record` type, no `SortableRecord`
/// indirection anywhere. Kept verbatim (modulo the builder's new type
/// parameter) as the baseline the monomorphized generic path is pinned
/// against — if monomorphization ever stopped compiling down to this, the
/// `run_generation_generic_pin` group would show the gap.
fn concrete_rs_generate(
    memory_records: usize,
    device: &SimDevice,
    namer: &SpillNamer,
    input: &mut dyn Iterator<Item = Record>,
) -> RunSet {
    let mut heap: BinaryHeap<RunRecord<Record>> =
        BinaryHeap::with_capacity(HeapKind::Min, memory_records);
    while heap.len() < memory_records {
        match input.next() {
            Some(record) => heap
                .push(RunRecord::new(record, 0))
                .expect("heap cannot be full during the fill phase"),
            None => break,
        }
    }
    let mut runs: Vec<RunHandle> = Vec::new();
    let mut total = 0u64;
    let mut current_run = 0u64;
    let mut builder = ForwardRunBuilder::new(device, namer);
    while let Some(top) = heap.pop() {
        if top.run > current_run {
            total += builder.finish_run(&mut runs).expect("finish run");
            builder = ForwardRunBuilder::new(device, namer);
            current_run = top.run;
        }
        let output = top.value;
        builder.push(&output).expect("push record");
        if let Some(next) = input.next() {
            let run = if next < output {
                current_run + 1
            } else {
                current_run
            };
            heap.push(RunRecord::new(next, run))
                .expect("a slot was just freed by pop");
        }
    }
    total += builder.finish_run(&mut runs).expect("finish run");
    RunSet {
        runs,
        records: total,
    }
}

/// The redesign guard: the generic `ReplacementSelection` (monomorphized
/// for the default `Record`) must match the pre-redesign concrete code on
/// the same input. Criterion reports both; compare their throughputs.
fn bench_generic_pin(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_generation_generic_pin");
    group.throughput(Throughput::Elements(RECORDS));
    group.sample_size(20);

    group.bench_function("rs_generic_record", |b| {
        b.iter(|| generate(ReplacementSelection::new(MEMORY)))
    });
    group.bench_function("rs_concrete_record_pre_redesign", |b| {
        b.iter(|| {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let namer = SpillNamer::new("bench");
            let mut input =
                Distribution::new(DistributionKind::RandomUniform, RECORDS, 1).records();
            concrete_rs_generate(MEMORY, &device, &namer, &mut input).num_runs()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_run_generation, bench_generic_pin);
criterion_main!(benches);
