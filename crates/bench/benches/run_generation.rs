//! Criterion bench of the run-generation algorithms alone (Figure 5.4
//! context): RS, LSS and 2WRS with different buffer sizes on random input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use twrs_core::{BufferSetup, TwoWayReplacementSelection, TwrsConfig};
use twrs_extsort::{LoadSortStore, ReplacementSelection, RunGenerator};
use twrs_storage::{SimDevice, SpillNamer};
use twrs_workloads::{Distribution, DistributionKind};

const RECORDS: u64 = 20_000;
const MEMORY: usize = 500;

fn generate<G: RunGenerator>(mut generator: G) -> usize {
    let device = SimDevice::new();
    let namer = SpillNamer::new("bench");
    let mut input = Distribution::new(DistributionKind::RandomUniform, RECORDS, 1).records();
    generator
        .generate(&device, &namer, &mut input)
        .expect("run generation succeeds")
        .num_runs()
}

fn bench_run_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_generation_random");
    group.throughput(Throughput::Elements(RECORDS));
    group.sample_size(10);

    group.bench_function("load_sort_store", |b| {
        b.iter(|| generate(LoadSortStore::new(MEMORY)))
    });
    group.bench_function("replacement_selection", |b| {
        b.iter(|| generate(ReplacementSelection::new(MEMORY)))
    });
    for fraction in [0.002, 0.02, 0.2] {
        group.bench_with_input(
            BenchmarkId::new("twrs_buffer_fraction", fraction),
            &fraction,
            |b, fraction| {
                b.iter(|| {
                    generate(TwoWayReplacementSelection::new(
                        TwrsConfig::recommended(MEMORY).with_buffers(BufferSetup::Both, *fraction),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_run_generation);
criterion_main!(benches);
