//! `twrs-lint`: in-tree static analysis enforcing this workspace's
//! concurrency and error-handling invariants.
//!
//! The sort service ships with prose invariants — "a running job observes
//! `cancel()` at phase boundaries", "`sum(leases) <= global` at every
//! rebalance", "no detached threads", "service I/O goes through
//! `ScopedDevice`" — that ordinary tests can only probe, not prove at the
//! source level. This crate makes them machine-checked: a comment- and
//! string-aware token scanner ([`lexer`]) feeds a per-file rule engine
//! ([`rules`]) whose catalog is documented in `crates/lint/RULES.md`, and a
//! ratchet [`baseline`] grandfathers pre-existing findings so the count can
//! only go down.
//!
//! Run it with
//!
//! ```text
//! cargo run --release -p twrs-lint -- --check            # CI gate
//! cargo run --release -p twrs-lint -- --check --json     # machine output
//! cargo run --release -p twrs-lint -- --update-baseline  # bank a ratchet
//! ```
//!
//! Individual sites are waived inline with
//! `// twrs-lint: allow(<rule>) <reason>` — the reason is mandatory.

pub mod baseline;
pub mod lexer;
pub mod rules;

use rules::Finding;
use std::io;
use std::path::{Path, PathBuf};

/// Source roots scanned relative to the workspace root. `crates/compat`
/// is excluded on purpose: those are stand-ins for *external* crates
/// (rand/proptest/criterion/parking_lot) and follow upstream's idioms,
/// not this workspace's invariants.
pub const SCAN_ROOTS: [&str; 2] = ["src", "crates"];

const EXCLUDED_PREFIXES: [&str; 1] = ["crates/compat"];

/// `true` when `path` (repo-relative, forward slashes) is library source
/// the linter must scan: `.rs` files under `src/` directories, excluding
/// compat stand-ins. Integration tests, benches and examples live outside
/// `src/` and are never scanned; `#[cfg(test)]` modules inside `src/` are
/// excluded token-by-token by the lexer.
pub fn is_scanned_source(path: &str) -> bool {
    if !path.ends_with(".rs") {
        return false;
    }
    if EXCLUDED_PREFIXES.iter().any(|p| path.starts_with(p)) {
        return false;
    }
    path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
}

/// Every scannable source file under `root`, repo-relative with forward
/// slashes, in sorted order.
pub fn source_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if let Some(rel) = relative(&path, root) {
            if is_scanned_source(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn relative(path: &Path, root: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut text = String::new();
    for component in rel.components() {
        if !text.is_empty() {
            text.push('/');
        }
        text.push_str(&component.as_os_str().to_string_lossy());
    }
    Some(text)
}

/// Scans source `text` belonging to repo-relative `path` and returns the
/// surviving (non-waived) findings.
pub fn check_source(path: &str, text: &str) -> Vec<Finding> {
    let scanned = lexer::scan(text);
    rules::check_file(path, &scanned)
}

/// Scans the whole workspace under `root` and returns every finding,
/// sorted by file, line and rule.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in source_files(root)? {
        let text = std::fs::read_to_string(root.join(&file))?;
        findings.extend(check_source(&file, &text));
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// The committed baseline path, relative to the workspace root.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("crates/lint/baseline.json")
}

/// Locates the workspace root from this crate's own manifest directory —
/// used by the self-check test and the CLI's default `--root`.
pub fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
