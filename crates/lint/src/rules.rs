//! The rule catalog. Each rule walks the token stream of one file; see
//! `RULES.md` for the rationale and the origin of each invariant.

use crate::lexer::{ScannedFile, Tok, TokKind};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id, e.g. `no-lib-panic`.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// R1: no `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / `todo!`
/// / `unimplemented!` in non-test library code.
pub const NO_LIB_PANIC: &str = "no-lib-panic";
/// R2: nested lock acquisitions must follow the declared order, and no
/// declared lock may be held across `send()` / `recv()` / `join()`.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// R3: every `thread::spawn` result must be bound, stored or returned.
pub const NO_DETACHED_THREADS: &str = "no-detached-threads";
/// R4: the manifest's phase-loop functions must poll their cancellation
/// token.
pub const CANCEL_POLL: &str = "cancel-poll";
/// R5: service code talks to storage only through `ScopedDevice`.
pub const SCOPED_IO: &str = "scoped-io";

/// Every rule id, in catalog order.
pub const ALL_RULES: [&str; 5] = [
    NO_LIB_PANIC,
    LOCK_DISCIPLINE,
    NO_DETACHED_THREADS,
    CANCEL_POLL,
    SCOPED_IO,
];

/// The declared lock order. A lock may only be acquired while holding
/// locks that appear *earlier* in this list; acquiring an earlier (or the
/// same) lock while a later one is held is a violation.
///
/// Each entry is `(file suffix, receiver field, printable name)`; rank is
/// the position. The manifest names the three long-lived service-layer
/// locks — `JobState.inner` and the token's waker list are leaf locks that
/// never nest around these.
pub const LOCK_ORDER: [(&str, &str, &str); 3] = [
    (
        "crates/extsort/src/service/arbiter.rs",
        "state",
        "arbiter.state",
    ),
    (
        "crates/extsort/src/service/mod.rs",
        "state",
        "service.state",
    ),
    (
        "crates/extsort/src/service/mod.rs",
        "stats",
        "service.stats",
    ),
];

/// Functions that form a phase loop of the sort pipeline: each must poll
/// the cooperative cancellation token, so a future phase can't silently
/// drop preemption. `(file suffix, function name)`.
pub const CANCEL_POLL_MANIFEST: [(&str, &str); 5] = [
    ("crates/extsort/src/sorter.rs", "generate_phase"),
    ("crates/extsort/src/parallel.rs", "generate_phase"),
    ("crates/extsort/src/parallel.rs", "merge_batch_prefetched"),
    ("crates/extsort/src/merge/kway.rs", "reduce_to_fan_in"),
    ("crates/extsort/src/merge/kway.rs", "merge_sources_into"),
];

/// Directory whose files must route device I/O through `ScopedDevice`.
pub const SCOPED_IO_DIR: &str = "crates/extsort/src/service/";

/// Runs every rule over one scanned file. `path` is repo-relative with
/// forward slashes; waivers are applied here, after the rules fire.
pub fn check_file(path: &str, scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    no_lib_panic(path, scanned, &mut findings);
    lock_discipline(path, scanned, &mut findings);
    no_detached_threads(path, scanned, &mut findings);
    cancel_poll(path, scanned, &mut findings);
    scoped_io(path, scanned, &mut findings);
    findings.retain(|f| !scanned.is_waived(f.rule, f.line));
    findings
}

fn is_punct(tok: Option<&Tok>, text: &str) -> bool {
    matches!(tok, Some(t) if t.kind == TokKind::Punct && t.text == text)
}

// ---------------------------------------------------------------------------
// R1: no-lib-panic
// ---------------------------------------------------------------------------

fn no_lib_panic(path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    let tokens = &scanned.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || tok.kind != TokKind::Ident {
            continue;
        }
        let call = match tok.text.as_str() {
            // `.unwrap()` / `.expect(…)` — method position only, so local
            // functions or fields with these names don't fire.
            "unwrap" | "expect" => {
                is_punct(i.checked_sub(1).and_then(|p| tokens.get(p)), ".")
                    && is_punct(tokens.get(i + 1), "(")
            }
            // Panicking macros. `assert!`/`debug_assert!` stay allowed:
            // they document impossible states, not fallible operations.
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                is_punct(tokens.get(i + 1), "!")
                    // `core::panic::…` paths and `#[should_panic]`-style
                    // attribute positions are not invocations.
                    && !is_punct(i.checked_sub(1).and_then(|p| tokens.get(p)), ":")
            }
            _ => false,
        };
        if call {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule: NO_LIB_PANIC,
                message: format!(
                    "`{}` in library code can panic; propagate a SortError/StorageError instead \
                     (or waive with `// twrs-lint: allow(no-lib-panic) <reason>`)",
                    tok.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R2: lock-discipline
// ---------------------------------------------------------------------------

struct HeldLock {
    name: &'static str,
    rank: usize,
    /// Brace depth the guard was created at; leaving this depth releases it.
    depth: i32,
    /// The `let` binding holding the guard, when there is one; `drop(var)`
    /// releases it. Guards not bound to a variable die at the end of
    /// their statement.
    var: Option<String>,
}

fn lock_discipline(path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    let ranked: Vec<(usize, &str, &str)> = LOCK_ORDER
        .iter()
        .enumerate()
        .filter(|(_, (suffix, _, _))| path.ends_with(suffix))
        .map(|(rank, (_, field, name))| (rank, *field, *name))
        .collect();
    if ranked.is_empty() {
        return;
    }
    let tokens = &scanned.tokens;
    let mut held: Vec<HeldLock> = Vec::new();
    let mut depth = 0i32;
    // Statement tracking: the `let` binding a fresh `.lock()` guard lands
    // in, reset at every statement boundary.
    let mut stmt_let: Option<String> = None;
    let mut stmt_has_eq = false;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test {
            continue;
        }
        match (tok.kind, tok.text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
                stmt_let = None;
                stmt_has_eq = false;
            }
            (TokKind::Punct, ";") => {
                // Statement end: temporaries created inside it are gone.
                held.retain(|h| h.var.is_some() || h.depth < depth);
                stmt_let = None;
                stmt_has_eq = false;
            }
            (TokKind::Punct, "=") => stmt_has_eq = true,
            (TokKind::Ident, "let") => {
                if let Some(next) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    let name = if next.text == "mut" {
                        tokens.get(i + 2).map(|t| t.text.clone())
                    } else {
                        Some(next.text.clone())
                    };
                    stmt_let = name;
                    stmt_has_eq = false;
                }
            }
            (TokKind::Ident, "drop") if is_punct(tokens.get(i + 1), "(") => {
                if let Some(arg) = tokens.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                    held.retain(|h| h.var.as_deref() != Some(arg.text.as_str()));
                }
            }
            (TokKind::Ident, "lock") => {
                let receiver = i
                    .checked_sub(2)
                    .and_then(|p| tokens.get(p))
                    .filter(|_| is_punct(tokens.get(i - 1), "."))
                    .filter(|t| t.kind == TokKind::Ident);
                let Some(receiver) = receiver else { continue };
                if !is_punct(tokens.get(i + 1), "(") {
                    continue;
                }
                let Some(&(rank, _, name)) =
                    ranked.iter().find(|(_, field, _)| *field == receiver.text)
                else {
                    continue;
                };
                for h in &held {
                    if h.rank >= rank {
                        findings.push(Finding {
                            file: path.to_string(),
                            line: tok.line,
                            rule: LOCK_DISCIPLINE,
                            message: format!(
                                "acquires `{name}` while holding `{}`; declared order is \
                                 arbiter.state -> service.state -> service.stats",
                                h.name
                            ),
                        });
                    }
                }
                held.push(HeldLock {
                    name,
                    rank,
                    depth,
                    // Only a plain `let guard = ….lock()…` statement keeps
                    // the guard alive past its statement.
                    var: if stmt_has_eq { stmt_let.clone() } else { None },
                });
            }
            (TokKind::Ident, op @ ("send" | "recv" | "join")) => {
                if !is_punct(i.checked_sub(1).and_then(|p| tokens.get(p)), ".")
                    || !is_punct(tokens.get(i + 1), "(")
                {
                    continue;
                }
                for h in &held {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: tok.line,
                        rule: LOCK_DISCIPLINE,
                        message: format!(
                            "calls `.{op}()` while holding `{}`; blocking channel/thread \
                             operations must not run under a service lock",
                            h.name
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// R3: no-detached-threads
// ---------------------------------------------------------------------------

fn no_detached_threads(path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    let tokens = &scanned.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || tok.kind != TokKind::Ident || tok.text != "spawn" {
            continue;
        }
        if !is_punct(tokens.get(i + 1), "(") {
            continue;
        }
        // Only thread spawns: `thread::spawn(…)` or a `.spawn(…)` chained
        // off `thread::Builder` within the same statement.
        let stmt_start = statement_start(tokens, i);
        let prefix = &tokens[stmt_start..i];
        let from_thread = prefix
            .windows(2)
            .any(|w| w[0].kind == TokKind::Ident && w[0].text == "thread" && w[1].text == ":");
        if !from_thread {
            continue;
        }
        // The spawn result is used when the statement binds it to a named
        // variable, assigns it, passes it to an enclosing call, stores it
        // in a struct field, or leaves it as a tail expression. It is
        // discarded when the statement is bare (`thread::spawn(…);`) or
        // bound to `let _`.
        let discarded = if let Some(let_pos) = prefix.iter().position(|t| t.text == "let") {
            matches!(prefix.get(let_pos + 1), Some(t) if t.text == "_")
        } else {
            // Unbalanced `(` before the spawn means the handle flows into
            // an enclosing call like `workers.push(thread::spawn(…))`;
            // balanced pairs (`Builder::new()`, `.name(…)`) don't count.
            let balance: i32 = prefix
                .iter()
                .map(|t| match t.text.as_str() {
                    "(" => 1,
                    ")" => -1,
                    _ => 0,
                })
                .sum();
            // `=` covers assignments and `=>` match arms; `return` and a
            // `{` struct-literal start (positive balance catches tuple
            // struct inits) cover the rest of the consuming positions
            // this codebase uses.
            let assigned = prefix
                .iter()
                .any(|t| matches!(t.text.as_str(), "=" | "return"));
            if balance > 0 || assigned {
                false
            } else {
                // Bare spawn expression: discarded only when the statement
                // ends in `;` (a tail expression returns the handle).
                let Some(close) = call_end(tokens, i + 1) else {
                    continue;
                };
                ends_with_semicolon(tokens, close)
            }
        };
        if discarded {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule: NO_DETACHED_THREADS,
                message: "`thread::spawn` handle is discarded; bind and join it, or store it \
                          in a field that joins on drop/shutdown"
                    .to_string(),
            });
        }
    }
}

/// Index of the first token of the statement containing `at`: one past the
/// nearest `;`, `{` or `}` looking backward.
fn statement_start(tokens: &[Tok], at: usize) -> usize {
    let mut i = at;
    while i > 0 {
        let t = &tokens[i - 1];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            return i;
        }
        i -= 1;
    }
    0
}

/// Index of the `)` closing the call whose `(` sits at `open`, following
/// any chained `.method(…)` calls after it.
fn call_end(tokens: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    // Follow `.expect(…)`-style chains.
                    if is_punct(tokens.get(i + 1), ".")
                        && matches!(tokens.get(i + 2), Some(t) if t.kind == TokKind::Ident)
                        && is_punct(tokens.get(i + 3), "(")
                    {
                        i += 3;
                        depth = 0;
                        continue;
                    }
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn ends_with_semicolon(tokens: &[Tok], close: usize) -> bool {
    is_punct(tokens.get(close + 1), ";")
}

// ---------------------------------------------------------------------------
// R4: cancel-poll
// ---------------------------------------------------------------------------

fn cancel_poll(path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    let required: Vec<&str> = CANCEL_POLL_MANIFEST
        .iter()
        .filter(|(suffix, _)| path.ends_with(suffix))
        .map(|(_, name)| *name)
        .collect();
    if required.is_empty() {
        return;
    }
    let tokens = &scanned.tokens;
    for name in required {
        let Some((def_line, body)) = function_body(tokens, name) else {
            findings.push(Finding {
                file: path.to_string(),
                line: 1,
                rule: CANCEL_POLL,
                message: format!(
                    "phase-loop function `{name}` from the cancel-poll manifest was not found; \
                     update the manifest in crates/lint/src/rules.rs if it moved"
                ),
            });
            continue;
        };
        if !polls_cancellation(body) {
            findings.push(Finding {
                file: path.to_string(),
                line: def_line,
                rule: CANCEL_POLL,
                message: format!(
                    "phase loop `{name}` never polls its CancellationToken \
                     (`.check()`/`.is_canceled()`/`.gate()`); a running job could not be preempted here"
                ),
            });
        }
    }
}

/// The body tokens of `fn name`, with the definition line. Finds the first
/// non-test definition.
fn function_body<'t>(tokens: &'t [Tok], name: &str) -> Option<(u32, &'t [Tok])> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].kind == TokKind::Ident
            && tokens[i].text == "fn"
            && tokens[i + 1].text == name
            && !tokens[i].in_test
        {
            let def_line = tokens[i].line;
            // Body: first `{` at paren depth 0 after the signature.
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        let mut braces = 0i32;
                        let open = j;
                        while j < tokens.len() {
                            match tokens[j].text.as_str() {
                                "{" => braces += 1,
                                "}" => {
                                    braces -= 1;
                                    if braces == 0 {
                                        return Some((def_line, &tokens[open..=j]));
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        return Some((def_line, &tokens[open..]));
                    }
                    _ => {}
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

fn polls_cancellation(body: &[Tok]) -> bool {
    for (i, tok) in body.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            // `<something-cancel-ish>.check()` / `.gate(` — require the
            // receiver to mention "cancel" so unrelated `check` methods
            // don't satisfy the rule.
            "check" | "gate" => {
                let receiver = i
                    .checked_sub(2)
                    .and_then(|p| body.get(p))
                    .filter(|_| is_punct(body.get(i - 1), "."));
                if matches!(receiver, Some(r) if r.text.to_lowercase().contains("cancel")) {
                    return true;
                }
            }
            "is_canceled" | "check_cancel" | "CANCEL_CHECK_INTERVAL" => return true,
            _ => {}
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R5: scoped-io
// ---------------------------------------------------------------------------

fn scoped_io(path: &str, scanned: &ScannedFile, findings: &mut Vec<Finding>) {
    if !path.contains(SCOPED_IO_DIR) {
        return;
    }
    let tokens = &scanned.tokens;
    // Binding-aware allowance: a local bound to `ScopedDevice::new(…)` IS
    // the wrapper, whatever the binding is called — `let real_device =
    // ScopedDevice::new(RealFileDevice::temp()?)` attributes I/O exactly
    // like a binding named `scoped` would, so page ops on it pass. A
    // `StripedDevice` binding passes for the same reason: the stripe
    // front mirrors every access into its members' `IoStats`, so member
    // accounting stays exact, and jobs still wrap the stripe in their own
    // `ScopedDevice` before any per-tenant I/O happens.
    let mut scoped_bindings: Vec<String> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind == TokKind::Ident && (tok.text == "ScopedDevice" || tok.text == "StripedDevice")
        {
            let bound = i
                .checked_sub(2)
                .and_then(|p| tokens.get(p))
                .filter(|_| is_punct(tokens.get(i - 1), "="))
                .filter(|t| t.kind == TokKind::Ident);
            if let Some(bound) = bound {
                scoped_bindings.push(bound.text.to_lowercase());
            }
        }
    }
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || tok.kind != TokKind::Ident {
            continue;
        }
        let page_op = matches!(
            tok.text.as_str(),
            "read_page" | "write_page" | "create" | "open" | "remove" | "flush"
        );
        if !page_op || !is_punct(tokens.get(i + 1), "(") {
            continue;
        }
        let receiver = i
            .checked_sub(2)
            .and_then(|p| tokens.get(p))
            .filter(|_| is_punct(tokens.get(i - 1), "."))
            .filter(|t| t.kind == TokKind::Ident);
        let Some(receiver) = receiver else { continue };
        let r = receiver.text.to_lowercase();
        if (r == "device" || r.ends_with("_device"))
            && !r.contains("scoped")
            && !scoped_bindings.contains(&r)
        {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule: SCOPED_IO,
                message: format!(
                    "service code calls `{}.{}()` directly; wrap the device in a ScopedDevice \
                     so per-job I/O attribution stays exact",
                    receiver.text, tok.text
                ),
            });
        }
    }
}
