//! A comment- and string-aware token scanner for Rust source.
//!
//! The linter has no access to `syn` (the build environment has no
//! registry), so rules run over a hand-rolled token stream instead of a
//! real AST. The lexer's contract is deliberately small:
//!
//! * comments (line, doc, nested block) and every literal form (strings,
//!   raw strings, byte strings, chars, numbers) are recognized, so a
//!   `.unwrap()` inside a doc example or a format string never reaches a
//!   rule;
//! * every token carries its 1-based line number;
//! * tokens inside `#[cfg(test)]` / `#[test]` items are flagged, so rules
//!   can skip test code without understanding attributes themselves;
//! * `// twrs-lint: allow(<rule>) <reason>` waiver comments are collected
//!   with the line span they cover (their own line and the next).
//!
//! The scanner is forgiving: unterminated constructs at end of file simply
//! end the token stream rather than erroring, because the rustc that built
//! the file already guaranteed the source is well-formed.

/// The kind of one lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character (`.`, `(`, `::` arrives as two `:`).
    Punct,
    /// A string, char, byte or numeric literal (text is not preserved).
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One token of the scanned file.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text; for [`TokKind::Literal`] a placeholder, not the
    /// literal's contents.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// `true` when the token sits inside a `#[cfg(test)]` or `#[test]`
    /// item (including the attribute itself).
    pub in_test: bool,
}

/// A `// twrs-lint: allow(<rule>) <reason>` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The waived rule id, e.g. `no-lib-panic`.
    pub rule: String,
    /// First line the waiver covers (the comment's own line).
    pub first_line: u32,
    /// Last line the waiver covers (the line after the comment, so a
    /// waiver can stand on its own line above the waived statement).
    pub last_line: u32,
    /// `true` when a non-empty reason follows the `allow(...)`.
    pub has_reason: bool,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// All non-test and test tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All waiver comments found, in source order.
    pub waivers: Vec<Waiver>,
}

impl ScannedFile {
    /// `true` when `rule` is waived on `line`. A waiver without a reason
    /// does not count: the `<reason>` after `allow(…)` is mandatory.
    pub fn is_waived(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.has_reason && w.rule == rule && w.first_line <= line && line <= w.last_line)
    }
}

/// Scans `source` into tokens plus waivers. Never fails: see the module
/// docs for the forgiving end-of-file behavior.
pub fn scan(source: &str) -> ScannedFile {
    let mut lexer = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: ScannedFile::default(),
    };
    lexer.run();
    mark_test_regions(&mut lexer.out.tokens);
    lexer.out
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: ScannedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: impl Into<String>, line: u32) {
        self.out.tokens.push(Tok {
            kind,
            text: text.into(),
            line,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_string() => {}
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphanumeric() => self.ident(),
                c => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if let Some(waiver) = parse_waiver(&text, line) {
            self.out.waivers.push(waiver);
        }
    }

    fn block_comment(&mut self) {
        // Consume `/*`, then balance nested block comments.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, "\"…\"", line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns
    /// `false` (consuming nothing) when the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut ahead = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            let line = self.line;
            self.bump();
            self.char_literal_body();
            self.push(TokKind::Literal, "b'…'", line);
            return true;
        }
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false;
        }
        if ahead == 1 && self.peek(0) == Some('b') && hashes == 0 {
            // b"…" — plain byte string, escapes allowed.
            let line = self.line;
            self.bump();
            self.string();
            // `string` already pushed a literal; relabel is unnecessary.
            let _ = line;
            return true;
        }
        let line = self.line;
        for _ in 0..ahead + hashes + 1 {
            self.bump();
        }
        // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Literal, "r\"…\"", line);
        true
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'a` / `'static` (lifetime) vs `'x'` / `'\n'` (char literal):
        // a lifetime is a quote followed by an identifier NOT closed by
        // another quote.
        let first = self.peek(1);
        let is_lifetime = match first {
            Some(c) if c == '_' || c.is_alphabetic() => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_literal_body();
            self.push(TokKind::Literal, "'…'", line);
        }
    }

    fn char_literal_body(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not.
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, "0", line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

fn parse_waiver(comment: &str, line: u32) -> Option<Waiver> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("twrs-lint:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim();
    Some(Waiver {
        rule,
        first_line: line,
        last_line: line + 1,
        has_reason: !reason.is_empty(),
    })
}

/// Marks every token belonging to a `#[cfg(test)]` / `#[test]` item (and
/// the attribute itself) with `in_test`.
///
/// An attribute is a test marker when it mentions the `test` identifier
/// without a `not` (so `#[cfg(not(test))]` stays library code). The marked
/// region runs across any directly following attributes to the end of the
/// item: its balanced `{…}` block, or the terminating `;` for block-less
/// items like `mod tests;`.
fn mark_test_regions(tokens: &mut [Tok]) {
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].text == "#" && matches!(tokens.get(i + 1), Some(t) if t.text == "[")) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_bracket(tokens, i + 1, "[", "]") else {
            break;
        };
        let span = &tokens[i..=attr_end];
        let mentions_test = span
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test");
        let mentions_not = span
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "not");
        if !mentions_test || mentions_not {
            i = attr_end + 1;
            continue;
        }
        // Extend over stacked attributes, then to the item's end.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].text == "#"
            && matches!(tokens.get(j + 1), Some(t) if t.text == "[")
        {
            match matching_bracket(tokens, j + 1, "[", "]") {
                Some(end) => j = end + 1,
                None => break,
            }
        }
        // Find the item body: first `{` outside parens/brackets, or a `;`.
        let mut k = j;
        let mut paren = 0i32;
        let end = loop {
            match tokens.get(k) {
                None => break tokens.len() - 1,
                Some(t) if t.kind == TokKind::Punct => match t.text.as_str() {
                    "(" | "[" => {
                        paren += 1;
                        k += 1;
                    }
                    ")" | "]" => {
                        paren -= 1;
                        k += 1;
                    }
                    "{" if paren == 0 => {
                        break matching_bracket(tokens, k, "{", "}").unwrap_or(tokens.len() - 1);
                    }
                    ";" if paren == 0 => break k,
                    _ => k += 1,
                },
                Some(_) => k += 1,
            }
        };
        for tok in &mut tokens[i..=end] {
            tok.in_test = true;
        }
        i = end + 1;
    }
}

/// Index of the bracket matching `tokens[open]` (which must equal `open_text`).
fn matching_bracket(
    tokens: &[Tok],
    open: usize,
    open_text: &str,
    close_text: &str,
) -> Option<usize> {
    debug_assert_eq!(tokens[open].text, open_text);
    let mut depth = 0i32;
    for (index, tok) in tokens.iter().enumerate().skip(open) {
        if tok.kind != TokKind::Punct {
            continue;
        }
        if tok.text == open_text {
            depth += 1;
        } else if tok.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(index);
            }
        }
    }
    None
}
