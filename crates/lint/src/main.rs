//! The `twrs-lint` CLI. See `crates/lint/RULES.md` for the rule catalog
//! and the README's "Static analysis" section for the workflow.

use std::path::PathBuf;
use std::process::ExitCode;
use twrs_lint::rules::Finding;
use twrs_lint::{baseline, baseline_path, default_root, scan_workspace};

const USAGE: &str = "\
twrs-lint: in-tree static analysis for the twrs workspace

USAGE:
    cargo run -p twrs-lint -- [--check] [--update-baseline] [--json] [--root <path>]

OPTIONS:
    --check             Scan and compare against crates/lint/baseline.json
                        (the default); exit 1 on any drift.
    --update-baseline   Scan and rewrite the baseline to match the tree.
    --json              Emit findings as JSON instead of text.
    --root <path>       Workspace root (default: inferred from the crate).
";

struct Options {
    update_baseline: bool,
    json: bool,
    root: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        update_baseline: false,
        json: false,
        root: default_root(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--update-baseline" => options.update_baseline = true,
            "--json" => options.json = true,
            "--root" => {
                let value = args.next().ok_or("--root needs a path".to_string())?;
                options.root = PathBuf::from(value);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(options: &Options) -> Result<bool, String> {
    let findings = scan_workspace(&options.root)
        .map_err(|e| format!("scanning {}: {e}", options.root.display()))?;
    let actual = baseline::count(&findings);
    let baseline_file = baseline_path(&options.root);

    if options.update_baseline {
        std::fs::write(&baseline_file, baseline::to_json(&actual))
            .map_err(|e| format!("writing {}: {e}", baseline_file.display()))?;
        println!(
            "baseline updated: {} grandfathered finding(s) across {} (file, rule) pair(s)",
            actual.values().sum::<usize>(),
            actual.len()
        );
        return Ok(true);
    }

    let committed = match std::fs::read_to_string(&baseline_file) {
        Ok(text) => baseline::from_json(&text)
            .map_err(|e| format!("parsing {}: {e}", baseline_file.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => baseline::Counts::new(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_file.display())),
    };
    let drifts = baseline::compare(&committed, &actual);

    if options.json {
        print!("{}", findings_json(&findings, &drifts));
    } else {
        report_text(&findings, &committed, &drifts);
    }
    Ok(drifts.is_empty())
}

fn report_text(findings: &[Finding], committed: &baseline::Counts, drifts: &[baseline::Drift]) {
    for drift in drifts {
        if drift.actual > drift.baseline {
            println!(
                "{}: rule `{}` has {} finding(s), baseline allows {}:",
                drift.file, drift.rule, drift.actual, drift.baseline
            );
            for finding in findings
                .iter()
                .filter(|f| f.file == drift.file && f.rule == drift.rule)
            {
                println!(
                    "  {}:{}: [{}] {}",
                    finding.file, finding.line, finding.rule, finding.message
                );
            }
        } else {
            println!(
                "{}: rule `{}` improved to {} finding(s) (baseline has {}); \
                 run `cargo run -p twrs-lint -- --update-baseline` to ratchet down",
                drift.file, drift.rule, drift.actual, drift.baseline
            );
        }
    }
    let grandfathered: usize = committed.values().sum();
    if drifts.is_empty() {
        println!(
            "twrs-lint: clean ({} finding(s), all {} grandfathered by the baseline)",
            findings.len(),
            grandfathered
        );
    } else {
        println!(
            "twrs-lint: {} (file, rule) pair(s) drifted from the baseline",
            drifts.len()
        );
    }
}

fn findings_json(findings: &[Finding], drifts: &[baseline::Drift]) -> String {
    use std::fmt::Write as _;
    let escape = |s: &str| -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect()
    };
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"clean\": {},", drifts.is_empty());
    let _ = writeln!(out, "  \"findings\": [");
    for (index, f) in findings.iter().enumerate() {
        let comma = if index + 1 == findings.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\" }}{comma}",
            escape(&f.file),
            f.line,
            f.rule,
            escape(&f.message)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"drift\": [");
    for (index, d) in drifts.iter().enumerate() {
        let comma = if index + 1 == drifts.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"baseline\": {}, \"actual\": {} }}{comma}",
            escape(&d.file),
            escape(&d.rule),
            d.baseline,
            d.actual
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
