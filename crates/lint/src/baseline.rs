//! The ratchet baseline: grandfathered finding counts that may only go
//! down.
//!
//! `baseline.json` pins, per `(file, rule)`, how many findings are
//! tolerated. `--check` fails when a count *rises* (a new violation) **and**
//! when it *falls* (the fix must be banked with `--update-baseline`, so the
//! grandfathered debt can never silently grow back). A clean tree has an
//! empty `grandfathered` list.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The schema tag written into (and demanded from) `baseline.json`.
pub const FORMAT: &str = "twrs-lint-baseline/v1";

/// Grandfathered counts keyed by `(file, rule)`.
pub type Counts = BTreeMap<(String, String), usize>;

/// Aggregates findings into baseline counts.
pub fn count(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for finding in findings {
        *counts
            .entry((finding.file.clone(), finding.rule.to_string()))
            .or_insert(0) += 1;
    }
    counts
}

/// One discrepancy between the committed baseline and a fresh scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Repo-relative path.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Count in the committed baseline.
    pub baseline: usize,
    /// Count in the fresh scan.
    pub actual: usize,
}

/// Compares a fresh scan against the committed counts. Empty = in sync.
pub fn compare(baseline: &Counts, actual: &Counts) -> Vec<Drift> {
    let mut drifts = Vec::new();
    let keys: std::collections::BTreeSet<_> = baseline.keys().chain(actual.keys()).collect();
    for key in keys {
        let b = baseline.get(key).copied().unwrap_or(0);
        let a = actual.get(key).copied().unwrap_or(0);
        if a != b {
            drifts.push(Drift {
                file: key.0.clone(),
                rule: key.1.clone(),
                baseline: b,
                actual: a,
            });
        }
    }
    drifts
}

/// Serializes counts to the committed `baseline.json` text.
pub fn to_json(counts: &Counts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"format\": \"{FORMAT}\",");
    let _ = writeln!(out, "  \"grandfathered\": [");
    let mut first = true;
    for ((file, rule), count) in counts {
        if !first {
            let _ = writeln!(out, ",");
        }
        first = false;
        let _ = write!(
            out,
            "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"count\": {} }}",
            escape(file),
            escape(rule),
            count
        );
    }
    if !first {
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

/// Parses `baseline.json` text. This is a parser for exactly the subset
/// [`to_json`] emits (flat string/number fields, one array), not general
/// JSON.
pub fn from_json(text: &str) -> Result<Counts, String> {
    let mut parser = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    parser.skip_ws();
    parser.expect_char('{')?;
    let mut counts = Counts::new();
    let mut format_seen = false;
    loop {
        parser.skip_ws();
        if parser.eat('}') {
            break;
        }
        let key = parser.string()?;
        parser.skip_ws();
        parser.expect_char(':')?;
        parser.skip_ws();
        match key.as_str() {
            "format" => {
                let value = parser.string()?;
                if value != FORMAT {
                    return Err(format!("unsupported baseline format `{value}`"));
                }
                format_seen = true;
            }
            "grandfathered" => {
                parser.expect_char('[')?;
                loop {
                    parser.skip_ws();
                    if parser.eat(']') {
                        break;
                    }
                    let (file, rule, count) = parser.entry()?;
                    counts.insert((file, rule), count);
                    parser.skip_ws();
                    parser.eat(',');
                }
            }
            other => return Err(format!("unexpected baseline key `{other}`")),
        }
        parser.skip_ws();
        parser.eat(',');
    }
    if !format_seen {
        return Err("baseline is missing its \"format\" tag".to_string());
    }
    Ok(counts)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.pos,
                self.chars.get(self.pos)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.pos) {
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    if let Some(&c) = self.chars.get(self.pos) {
                        out.push(c);
                        self.pos += 1;
                    }
                }
                Some(&c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string in baseline".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at offset {start}"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|e| format!("bad count: {e}"))
    }

    fn entry(&mut self) -> Result<(String, String, usize), String> {
        self.expect_char('{')?;
        let mut file = None;
        let mut rule = None;
        let mut count = None;
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            self.skip_ws();
            match key.as_str() {
                "file" => file = Some(self.string()?),
                "rule" => rule = Some(self.string()?),
                "count" => count = Some(self.number()?),
                other => return Err(format!("unexpected entry key `{other}`")),
            }
            self.skip_ws();
            self.eat(',');
        }
        match (file, rule, count) {
            (Some(file), Some(rule), Some(count)) => Ok((file, rule, count)),
            _ => Err("baseline entry is missing file/rule/count".to_string()),
        }
    }
}
