//! Fixture-based self-tests for the rule catalog, plus the baseline
//! self-check: each rule is driven over a small inline source file and
//! must report (or not report) the expected finding at the expected line.

use twrs_lint::rules::{
    CANCEL_POLL, LOCK_DISCIPLINE, NO_DETACHED_THREADS, NO_LIB_PANIC, SCOPED_IO,
};
use twrs_lint::{baseline, baseline_path, check_source, default_root, scan_workspace};

/// Findings of one rule as `(line, rule)` pairs, so tests pin both.
fn findings_for(path: &str, source: &str, rule: &str) -> Vec<u32> {
    check_source(path, source)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// -------------------------------------------------------------------------
// R1: no-lib-panic
// -------------------------------------------------------------------------

#[test]
fn r1_flags_panic_family_with_correct_lines() {
    let src = "\
pub fn go(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"present\");
    if a > b {
        panic!(\"impossible\");
    }
    unreachable!()
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", src, NO_LIB_PANIC),
        vec![2, 3, 5, 7]
    );
}

#[test]
fn r1_ignores_strings_comments_and_non_method_positions() {
    let src = "\
// a comment mentioning .unwrap() does not fire
/* nor does .expect(\"x\") in a block comment */
pub fn go() -> &'static str {
    let msg = \".unwrap() inside a string literal\";
    let raw = r#\"panic!(\"in a raw string\")\"#;
    // `unwrap` not in method position (no leading dot) is fine:
    let _ = unwrap(msg, raw);
    // a path mention is not an invocation:
    let _ = core::panic::Location::caller();
    msg
}
fn unwrap(a: &str, _b: &str) -> &str {
    a
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", src, NO_LIB_PANIC),
        vec![]
    );
}

#[test]
fn r1_skips_test_code_but_not_cfg_not_test() {
    let src = "\
pub fn lib_code(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1u32).unwrap();
    }
}

#[cfg(not(test))]
pub fn still_library(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", src, NO_LIB_PANIC),
        vec![15]
    );
}

#[test]
fn waiver_covers_its_own_and_next_line_and_needs_a_reason() {
    let waived = "\
pub fn go(x: Option<u32>) -> u32 {
    // twrs-lint: allow(no-lib-panic) checked non-empty two lines up
    x.unwrap()
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", waived, NO_LIB_PANIC),
        vec![]
    );

    // The waiver covers only its own line and the next one.
    let too_far = "\
pub fn go(x: Option<u32>) -> u32 {
    // twrs-lint: allow(no-lib-panic) does not reach line 4
    let _ = x;
    x.unwrap()
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", too_far, NO_LIB_PANIC),
        vec![4]
    );

    // A waiver with no reason does not waive anything.
    let no_reason = "\
pub fn go(x: Option<u32>) -> u32 {
    // twrs-lint: allow(no-lib-panic)
    x.unwrap()
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", no_reason, NO_LIB_PANIC),
        vec![3]
    );

    // A waiver for a different rule does not apply.
    let wrong_rule = "\
pub fn go(x: Option<u32>) -> u32 {
    // twrs-lint: allow(scoped-io) wrong rule entirely
    x.unwrap()
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", wrong_rule, NO_LIB_PANIC),
        vec![3]
    );
}

// -------------------------------------------------------------------------
// R2: lock-discipline
// -------------------------------------------------------------------------

const SERVICE_PATH: &str = "crates/extsort/src/service/mod.rs";

#[test]
fn r2_accepts_declared_order_and_flags_inversions() {
    let ordered = "\
impl S {
    fn ok(&self) {
        let queue = self.state.lock();
        let counters = self.stats.lock();
        drop(counters);
        drop(queue);
    }
}
";
    assert_eq!(findings_for(SERVICE_PATH, ordered, LOCK_DISCIPLINE), vec![]);

    let inverted = "\
impl S {
    fn bad(&self) {
        let counters = self.stats.lock();
        let queue = self.state.lock();
        drop(queue);
        drop(counters);
    }
}
";
    assert_eq!(
        findings_for(SERVICE_PATH, inverted, LOCK_DISCIPLINE),
        vec![4]
    );
}

#[test]
fn r2_flags_blocking_calls_under_a_lock_and_honors_drop() {
    let held = "\
impl S {
    fn bad(&self, tx: &Sender<u32>) {
        let queue = self.state.lock();
        tx.send(1);
        drop(queue);
    }
}
";
    assert_eq!(findings_for(SERVICE_PATH, held, LOCK_DISCIPLINE), vec![4]);

    let released = "\
impl S {
    fn ok(&self, tx: &Sender<u32>) {
        let queue = self.state.lock();
        drop(queue);
        tx.send(1);
    }
}
";
    assert_eq!(
        findings_for(SERVICE_PATH, released, LOCK_DISCIPLINE),
        vec![]
    );

    // A guard that is never bound dies at its statement's semicolon.
    let temporary = "\
impl S {
    fn ok(&self, tx: &Sender<u32>) {
        self.state.lock().pending += 1;
        tx.send(1);
    }
}
";
    assert_eq!(
        findings_for(SERVICE_PATH, temporary, LOCK_DISCIPLINE),
        vec![]
    );

    // Leaving the guard's block releases it too.
    let scoped = "\
impl S {
    fn ok(&self, tx: &Sender<u32>) {
        {
            let queue = self.state.lock();
            queue.touch();
        }
        tx.send(1);
    }
}
";
    assert_eq!(findings_for(SERVICE_PATH, scoped, LOCK_DISCIPLINE), vec![]);
}

#[test]
fn r2_only_applies_to_manifest_files() {
    let inverted = "\
impl S {
    fn elsewhere(&self) {
        let counters = self.stats.lock();
        let queue = self.state.lock();
    }
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", inverted, LOCK_DISCIPLINE),
        vec![]
    );
}

// -------------------------------------------------------------------------
// R3: no-detached-threads
// -------------------------------------------------------------------------

#[test]
fn r3_flags_discarded_spawn_handles() {
    let bare = "\
pub fn go() {
    std::thread::spawn(move || work());
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", bare, NO_DETACHED_THREADS),
        vec![2]
    );

    let underscore = "\
pub fn go() {
    let _ = std::thread::spawn(move || work());
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", underscore, NO_DETACHED_THREADS),
        vec![2]
    );
}

#[test]
fn r3_accepts_bound_stored_or_returned_handles() {
    let bound = "\
pub fn go() {
    let worker = std::thread::spawn(move || work());
    worker.join();
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", bound, NO_DETACHED_THREADS),
        vec![]
    );

    let pushed = "\
pub fn go(workers: &mut Vec<JoinHandle<()>>) {
    workers.push(std::thread::spawn(move || work()));
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", pushed, NO_DETACHED_THREADS),
        vec![]
    );

    let builder = "\
pub fn go() -> std::io::Result<()> {
    let worker = std::thread::Builder::new()
        .name(format!(\"w\"))
        .spawn(move || work())?;
    worker.join();
    Ok(())
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", builder, NO_DETACHED_THREADS),
        vec![]
    );

    // `.spawn(…)` on a non-thread receiver (e.g. a process Command) is
    // out of scope for this rule.
    let process = "\
pub fn go(cmd: &mut Command) {
    cmd.spawn();
}
";
    assert_eq!(
        findings_for("crates/foo/src/lib.rs", process, NO_DETACHED_THREADS),
        vec![]
    );
}

// -------------------------------------------------------------------------
// R4: cancel-poll
// -------------------------------------------------------------------------

const KWAY_PATH: &str = "crates/extsort/src/merge/kway.rs";

#[test]
fn r4_flags_phase_loops_that_never_poll() {
    let src = "\
fn reduce_to_fan_in(cancel: &CancellationToken) -> Result<()> {
    loop {
        cancel.check()?;
        step();
    }
}

fn merge_sources_into() -> Result<()> {
    loop {
        step();
    }
}
";
    assert_eq!(findings_for(KWAY_PATH, src, CANCEL_POLL), vec![8]);
}

#[test]
fn r4_accepts_all_polling_forms_and_reports_missing_functions() {
    let src = "\
fn reduce_to_fan_in(token: &CancellationToken) -> Result<()> {
    if token.is_canceled() {
        return Err(canceled());
    }
    Ok(())
}

fn merge_sources_into(cancel: &CancellationToken) -> Result<()> {
    cancel.gate(|| ())?;
    Ok(())
}
";
    assert_eq!(findings_for(KWAY_PATH, src, CANCEL_POLL), vec![]);

    // A manifest function that disappeared entirely is reported at line 1,
    // so a rename can't silently drop the invariant.
    let missing = "\
fn reduce_to_fan_in(cancel: &CancellationToken) -> Result<()> {
    cancel.check()
}
";
    assert_eq!(findings_for(KWAY_PATH, missing, CANCEL_POLL), vec![1]);
}

// -------------------------------------------------------------------------
// R5: scoped-io
// -------------------------------------------------------------------------

#[test]
fn r5_flags_raw_device_page_ops_in_service_code() {
    let src = "\
impl Worker {
    fn run(&self, device: &impl StorageDevice) {
        device.write_page(\"runs\", 0, &self.page);
        self.scoped.write_page(\"runs\", 1, &self.page);
    }
}
";
    assert_eq!(
        findings_for("crates/extsort/src/service/worker.rs", src, SCOPED_IO),
        vec![3]
    );
    // The same code outside the service directory is fine.
    assert_eq!(
        findings_for("crates/extsort/src/sorter.rs", src, SCOPED_IO),
        vec![]
    );
}

#[test]
fn r5_allows_bindings_wrapped_in_a_scoped_device() {
    // A `*_device` name is fine when the binding itself is the wrapper:
    // wrapping a RealFileDevice (or any backend) in a ScopedDevice is
    // exactly what the rule wants, whatever the local is called.
    let src = "\
fn attach(inner: RealFileDevice, stats: Arc<IoStats>) -> Result<()> {
    let real_device = ScopedDevice::new(inner, stats);
    real_device.create(\"runs\")?;
    real_device.write_page(\"runs\", 0, &[0u8; 64])?;
    Ok(())
}
";
    assert_eq!(
        findings_for("crates/extsort/src/service/worker.rs", src, SCOPED_IO),
        vec![]
    );
    // An unwrapped sibling in the same file still flags.
    let mixed = "\
fn attach(inner: RealFileDevice, device: &impl StorageDevice) {
    let job_device = ScopedDevice::new(inner);
    job_device.create(\"runs\");
    device.remove(\"runs\");
}
";
    assert_eq!(
        findings_for("crates/extsort/src/service/worker.rs", mixed, SCOPED_IO),
        vec![4]
    );
}

#[test]
fn r5_allows_bindings_wrapped_in_a_striped_device() {
    // A stripe front keeps per-member accounting exact (every access is
    // mirrored into the member IoStats), so building one in service code
    // is not an attribution leak — jobs still get their own ScopedDevice
    // on top of it.
    let src = "\
fn build(members: Vec<AnyDevice>) -> Result<()> {
    let spill_device = StripedDevice::new(members)?;
    spill_device.create(\"probe\")?;
    spill_device.remove(\"probe\")?;
    Ok(())
}
";
    assert_eq!(
        findings_for("crates/extsort/src/service/worker.rs", src, SCOPED_IO),
        vec![]
    );
    // But a raw `*_device` receiver next to it still flags.
    let mixed = "\
fn build(members: Vec<AnyDevice>, raw_device: &impl StorageDevice) -> Result<()> {
    let spill_device = StripedDevice::with_policy(members, StripePolicy::RoundRobin)?;
    spill_device.create(\"probe\")?;
    raw_device.flush()?;
    Ok(())
}
";
    assert_eq!(
        findings_for("crates/extsort/src/service/worker.rs", mixed, SCOPED_IO),
        vec![4]
    );
}

// -------------------------------------------------------------------------
// Baseline: ratchet mechanics and the committed-file self-check
// -------------------------------------------------------------------------

#[test]
fn baseline_json_roundtrips_and_detects_drift_both_ways() {
    let mut counts = baseline::Counts::new();
    counts.insert(("crates/a/src/lib.rs".into(), NO_LIB_PANIC.into()), 3);
    counts.insert(("crates/b/src/x.rs".into(), SCOPED_IO.into()), 1);
    let parsed = baseline::from_json(&baseline::to_json(&counts)).expect("roundtrip");
    assert_eq!(parsed, counts);

    let mut risen = counts.clone();
    risen.insert(("crates/a/src/lib.rs".into(), NO_LIB_PANIC.into()), 4);
    let drift = baseline::compare(&counts, &risen);
    assert_eq!(drift.len(), 1);
    assert_eq!((drift[0].baseline, drift[0].actual), (3, 4));

    // An improvement is drift too: it must be banked with --update-baseline.
    let mut improved = counts.clone();
    improved.remove(&("crates/b/src/x.rs".into(), SCOPED_IO.into()));
    let drift = baseline::compare(&counts, &improved);
    assert_eq!(drift.len(), 1);
    assert_eq!((drift[0].baseline, drift[0].actual), (1, 0));
}

#[test]
fn committed_baseline_matches_a_fresh_workspace_scan() {
    let root = default_root();
    let findings = scan_workspace(&root).expect("scan workspace");
    let actual = baseline::count(&findings);
    let text = std::fs::read_to_string(baseline_path(&root)).expect("read baseline.json");
    let committed = baseline::from_json(&text).expect("parse baseline.json");
    let drift = baseline::compare(&committed, &actual);
    assert!(
        drift.is_empty(),
        "baseline.json is out of sync with the tree; run \
         `cargo run -p twrs-lint -- --update-baseline` and review: {drift:?}"
    );
}
