//! The two-way replacement selection algorithm (Chapter 4, Algorithm 2).
//!
//! # Structure
//!
//! Records read from the input flow through the [`InputBuffer`] into one of
//! the two heaps of a [`DualHeap`] (the choice is made by the input
//! heuristic when both heaps could accept the record). At every step one
//! record leaves a heap — the output heuristic picks the heap when both
//! could emit — and one record is read from the input; records that fall in
//! the gap between the two emitted streams are parked in the
//! [`VictimBuffer`] instead of being pushed to the next run. Each run is
//! written as up to four non-overlapping streams (see [`crate::streams`])
//! and exposed to the merge phase as one logical run.
//!
//! # Correctness guarantees
//!
//! The paper describes the heuristics informally and assumes they roughly
//! partition the key space. This implementation guarantees sorted,
//! non-overlapping streams for *any* heuristic by checking the stream
//! boundaries at emission time: a record popped from a heap is appended to
//! that heap's stream when it fits, rerouted to the victim buffer or the
//! opposite stream when it fits there instead, and deferred to the next run
//! otherwise (exactly the mechanism classic RS uses for late records). With
//! the paper's heuristics and inputs the deferral path is essentially never
//! taken; the [`TwrsRunStats`] report makes it observable.

use crate::config::TwrsConfig;
use crate::heuristics::input::InputHeuristicState;
use crate::heuristics::output::OutputHeuristicState;
use crate::heuristics::{HeuristicContext, InputHeuristic};
use crate::input_buffer::InputBuffer;
use crate::streams::RunStreams;
use crate::victim::VictimBuffer;
use std::cmp::Ordering;
use twrs_extsort::{
    BudgetedGenerator, Device, Result, RunGenerator, RunHandle, RunSet, ShardableGenerator,
    SortError,
};
use twrs_heaps::{DualHeap, HeapSide, RunRecord, TwoWayOrder};
use twrs_storage::{SortableRecord, SpillNamer};

/// Ordering of run-tagged records inside the dual heap: both sides order by
/// run first (so next-run records sink), then the top side ascending and the
/// bottom side descending by record value.
#[derive(Debug, Clone, Copy, Default)]
struct RunOrder;

impl<R: SortableRecord> TwoWayOrder<RunRecord<R>> for RunOrder {
    fn cmp_top(&self, a: &RunRecord<R>, b: &RunRecord<R>) -> Ordering {
        a.run.cmp(&b.run).then_with(|| a.value.cmp(&b.value))
    }

    fn cmp_bottom(&self, a: &RunRecord<R>, b: &RunRecord<R>) -> Ordering {
        a.run.cmp(&b.run).then_with(|| b.value.cmp(&a.value))
    }
}

/// Statistics accumulated over one [`RunGenerator::generate`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwrsRunStats {
    /// Records emitted through stream 1 (TopHeap, increasing).
    pub stream1_records: u64,
    /// Records emitted through stream 2 (victim upper, decreasing).
    pub stream2_records: u64,
    /// Records emitted through stream 3 (victim lower, increasing).
    pub stream3_records: u64,
    /// Records emitted through stream 4 (BottomHeap, decreasing).
    pub stream4_records: u64,
    /// Records that passed through the victim buffer (bootstrap included).
    pub victim_records: u64,
    /// Records deferred to the next run at emission time because they no
    /// longer fit any stream (normally zero or a handful per run).
    pub deferred_records: u64,
    /// Records that were emitted by the heap opposite to the stream that
    /// finally accepted them (cross emissions).
    pub cross_emitted_records: u64,
    /// Number of runs generated.
    pub runs: u64,
}

/// Two-way replacement selection run generation.
#[derive(Debug, Clone)]
pub struct TwoWayReplacementSelection {
    config: TwrsConfig,
    stats: TwrsRunStats,
}

impl TwoWayReplacementSelection {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: TwrsConfig) -> Self {
        TwoWayReplacementSelection {
            config,
            stats: TwrsRunStats::default(),
        }
    }

    /// Creates the algorithm with the recommended configuration of §5.3 for
    /// the given memory budget.
    pub fn recommended(memory_records: usize) -> Self {
        Self::new(TwrsConfig::recommended(memory_records))
    }

    /// The configuration in force.
    pub fn config(&self) -> &TwrsConfig {
        &self.config
    }

    /// Statistics of the most recent [`RunGenerator::generate`] call.
    pub fn stats(&self) -> TwrsRunStats {
        self.stats
    }
}

impl ShardableGenerator for TwoWayReplacementSelection {
    fn shard(&self, index: usize, shards: usize) -> Self {
        TwoWayReplacementSelection::new(self.config.for_shard(index, shards))
    }
}

impl BudgetedGenerator for TwoWayReplacementSelection {
    fn with_budget(&self, memory_records: usize) -> Self {
        TwoWayReplacementSelection::new(self.config.with_memory_records(memory_records))
    }
}

impl RunGenerator for TwoWayReplacementSelection {
    fn label(&self) -> &'static str {
        "2WRS"
    }

    fn memory_records(&self) -> usize {
        self.config.memory_records
    }

    fn generate<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        namer: &SpillNamer,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<RunSet> {
        if self.config.memory_records == 0 {
            return Err(SortError::InvalidConfig(
                "2WRS needs a memory budget of at least one record".into(),
            ));
        }
        let mut runner = Runner::new(device, namer, self.config);
        let set = runner.run(input)?;
        self.stats = runner.stats;
        Ok(set)
    }
}

/// Where an emitted record ended up.
enum EmitOutcome {
    /// The record was written to a stream or parked in the victim buffer.
    Emitted,
    /// The record could not be placed in the current run and was pushed back
    /// into a heap marked for the next run.
    Deferred,
}

struct Runner<'a, D: Device, R: SortableRecord> {
    device: &'a D,
    namer: &'a SpillNamer,
    config: TwrsConfig,

    dual: DualHeap<RunRecord<R>, RunOrder>,
    input_buffer: InputBuffer<R>,
    victim: VictimBuffer<R>,
    input_heuristic: InputHeuristicState,
    output_heuristic: OutputHeuristicState,

    current_run: u64,
    streams: Option<RunStreams<'a, D, R>>,
    bootstrap_done: bool,
    first_output: Option<R>,

    runs: Vec<RunHandle>,
    total_records: u64,
    stats: TwrsRunStats,
}

impl<'a, D: Device, R: SortableRecord> Runner<'a, D, R> {
    fn new(device: &'a D, namer: &'a SpillNamer, config: TwrsConfig) -> Self {
        Runner {
            device,
            namer,
            config,
            dual: DualHeap::with_order(config.heap_records(), RunOrder),
            input_buffer: InputBuffer::new(config.input_buffer_records()),
            victim: VictimBuffer::new(config.victim_buffer_records()),
            input_heuristic: InputHeuristicState::new(config.input_heuristic, config.seed),
            output_heuristic: OutputHeuristicState::new(config.output_heuristic, config.seed),
            current_run: 0,
            streams: None,
            bootstrap_done: false,
            first_output: None,
            runs: Vec::new(),
            total_records: 0,
            stats: TwrsRunStats::default(),
        }
    }

    fn run(&mut self, input: &mut dyn Iterator<Item = R>) -> Result<RunSet> {
        // Phase 1: fill both heaps from the input (doubleHeap.fill).
        while self.dual.len() < self.dual.capacity() {
            match self.input_buffer.next_from(input) {
                Some(record) => {
                    let side = self.choose_insert_side(&record);
                    self.push_dual(side, RunRecord::new(record, 0))?;
                }
                None => break,
            }
        }
        self.start_run();

        // Phase 2: main loop (Algorithm 2 lines 7–20).
        loop {
            let side = match self.current_output_side() {
                OutputSide::Side(side) => side,
                OutputSide::RunFinished => {
                    self.finalize_run()?;
                    self.start_run();
                    continue;
                }
                OutputSide::Empty => break,
            };
            let Some(popped) = self.dual.pop(side) else {
                break;
            };
            debug_assert_eq!(popped.run, self.current_run);
            match self.emit(popped.value, side)? {
                EmitOutcome::Emitted => {}
                EmitOutcome::Deferred => {
                    // No slot was freed (the record went straight back into
                    // a heap), so no input record is consumed this step.
                    continue;
                }
            }

            // Read the next input record; records that fit the victim
            // buffer's current gap are absorbed there and reading continues
            // (Algorithm 2 lines 11–13).
            let mut pending = self.input_buffer.next_from(input);
            while let Some(record) = pending {
                if self.victim.fits(&record) {
                    self.victim.push(record);
                    self.stats.victim_records += 1;
                    if self.victim.is_full() {
                        self.flush_victim()?;
                    }
                    pending = self.input_buffer.next_from(input);
                } else {
                    let side = self.choose_insert_side(&record);
                    let run = self.classify_run(&record);
                    self.push_dual(side, RunRecord::new(record, run))?;
                    pending = None;
                }
            }
        }

        self.finalize_run()?;
        Ok(RunSet {
            runs: std::mem::take(&mut self.runs),
            records: self.total_records,
        })
    }

    // ---------------------------------------------------------------------
    // Run lifecycle
    // ---------------------------------------------------------------------

    fn start_run(&mut self) {
        self.streams = Some(RunStreams::new(
            self.device,
            self.namer,
            self.config.reverse_pages_per_file,
        ));
        self.victim.reset();
        self.bootstrap_done = !self.victim.is_enabled();
        self.first_output = None;
        self.repartition_heaps();
        self.dual.reset_pop_counters();
    }

    /// Re-partitions the records currently held in memory between the two
    /// heaps at the start of every run, splitting them at their largest key
    /// gap.
    ///
    /// At a run boundary the memory holds the records that could not join
    /// the previous run — a sample spread over the key space whose placement
    /// reflects stale heuristic decisions. Splitting that sample at its
    /// largest gap (the same criterion the victim buffer uses, §4.3) gives
    /// the new run a BottomHeap that descends from just below the gap and a
    /// TopHeap that ascends from just above it, which is what makes 2WRS
    /// behave like two mirrored replacement selections — matching RS's
    /// 2×-memory run length on random input and capturing both monotone
    /// trends of the structured inputs. This generalises the run-start
    /// rebalancing the paper describes for the *Balancing* input heuristic
    /// (§4.2) and keeps the cross-stream ordering of the four streams intact
    /// for every heuristic.
    fn repartition_heaps(&mut self) {
        if self.dual.len() < 2 {
            return;
        }
        let mut records: Vec<R> = self
            .dual
            .drain()
            .into_iter()
            .map(RunRecord::into_value)
            .collect();
        records.sort_unstable();
        // Split at the largest key gap when the sample clearly falls into
        // two clusters separated by a void (mixed and alternating inputs at
        // a trend boundary); otherwise split at the median, which keeps the
        // two sides equally provisioned and gives the 2×-memory behaviour
        // on unstructured input.
        let span = records[records.len() - 1]
            .sort_key()
            .saturating_sub(records[0].sort_key());
        let gap_split = crate::victim::largest_gap_split(&records);
        let split = if gap_split < records.len()
            && records[gap_split]
                .sort_key()
                .saturating_sub(records[gap_split - 1].sort_key())
                >= span / 2
        {
            gap_split
        } else {
            records.len() / 2
        };
        for (i, record) in records.into_iter().enumerate() {
            let side = if i < split {
                HeapSide::Bottom
            } else {
                HeapSide::Top
            };
            self.dual
                .push(side, RunRecord::new(record, self.current_run))
                // twrs-lint: allow(no-lib-panic) the dual heap was drained above, so reinsertion cannot overflow
                .expect("repartition reinserts into an empty dual heap");
        }
    }

    fn finalize_run(&mut self) -> Result<()> {
        let Some(mut streams) = self.streams.take() else {
            return Ok(());
        };
        // Whatever is still parked in the victim buffer belongs to the
        // current run: it is sorted and appended to stream 3 (all of it lies
        // between stream 3's last record and stream 2's first record).
        let leftovers = self.victim.drain_sorted();
        if !leftovers.is_empty() {
            self.stats.stream3_records += leftovers.len() as u64;
            streams.push_stream3_ascending(&leftovers)?;
        }
        let records = streams.finish(&mut self.runs)?;
        self.total_records += records;
        if records > 0 {
            self.stats.runs += 1;
        }
        self.current_run += 1;
        Ok(())
    }

    /// Which heap should emit next, if any.
    fn current_output_side(&mut self) -> OutputSide {
        let top_current = self
            .dual
            .peek(HeapSide::Top)
            .map(|r| r.run == self.current_run);
        let bottom_current = self
            .dual
            .peek(HeapSide::Bottom)
            .map(|r| r.run == self.current_run);
        match (top_current, bottom_current) {
            (None, None) => OutputSide::Empty,
            (Some(true), Some(true)) if !self.bootstrap_done => {
                // While the bootstrap sample is being collected, draw from
                // both heaps evenly so the victim buffer's valid range is
                // the real gap between the two sides rather than a stretch
                // of a single heap (the output heuristic takes over once the
                // range is established).
                if self.dual.pops_from(HeapSide::Top) <= self.dual.pops_from(HeapSide::Bottom) {
                    OutputSide::Side(HeapSide::Top)
                } else {
                    OutputSide::Side(HeapSide::Bottom)
                }
            }
            (Some(true), Some(true)) => {
                let ctx = self.context();
                OutputSide::Side(self.output_heuristic.choose(&ctx))
            }
            (Some(true), _) => OutputSide::Side(HeapSide::Top),
            (_, Some(true)) => OutputSide::Side(HeapSide::Bottom),
            // Both heaps only hold next-run records: the current run ends.
            _ => OutputSide::RunFinished,
        }
    }

    // ---------------------------------------------------------------------
    // Emission
    // ---------------------------------------------------------------------

    fn emit(&mut self, record: R, side: HeapSide) -> Result<EmitOutcome> {
        if self.first_output.is_none() {
            self.first_output = Some(record.clone());
        }
        // Bootstrap: the first victim-buffer's worth of outputs of every run
        // is parked in the buffer so the valid range can be picked as the
        // largest gap among them (§4.3).
        if !self.bootstrap_done {
            self.victim.push(record);
            self.stats.victim_records += 1;
            if self.victim.is_full() {
                self.flush_bootstrap()?;
            }
            return Ok(EmitOutcome::Emitted);
        }
        // twrs-lint: allow(no-lib-panic) `streams` is Some from run start until finalize
        let streams = self.streams.as_mut().expect("streams exist inside a run");
        let (native_fits, cross_fits) = match side {
            HeapSide::Top => (
                streams.accepts_stream1(&record),
                streams.accepts_stream4(&record),
            ),
            HeapSide::Bottom => (
                streams.accepts_stream4(&record),
                streams.accepts_stream1(&record),
            ),
        };
        if native_fits {
            match side {
                HeapSide::Top => {
                    streams.push_stream1(record)?;
                    self.stats.stream1_records += 1;
                }
                HeapSide::Bottom => {
                    streams.push_stream4(record)?;
                    self.stats.stream4_records += 1;
                }
            }
            return Ok(EmitOutcome::Emitted);
        }
        if self.victim.fits(&record) {
            self.victim.push(record);
            self.stats.victim_records += 1;
            if self.victim.is_full() {
                self.flush_victim()?;
            }
            return Ok(EmitOutcome::Emitted);
        }
        if cross_fits {
            // The record cannot extend its own heap's stream but slots into
            // the opposite one (e.g. the first records popped right after
            // the bootstrap flush).
            match side {
                HeapSide::Top => {
                    streams.push_stream4(record)?;
                    self.stats.stream4_records += 1;
                }
                HeapSide::Bottom => {
                    streams.push_stream1(record)?;
                    self.stats.stream1_records += 1;
                }
            }
            self.stats.cross_emitted_records += 1;
            return Ok(EmitOutcome::Emitted);
        }
        // Nothing in the current run can take the record: defer it, exactly
        // as RS defers records that arrive too late.
        let insert_side = self.choose_insert_side(&record);
        self.push_dual(insert_side, RunRecord::new(record, self.current_run + 1))?;
        self.stats.deferred_records += 1;
        Ok(EmitOutcome::Deferred)
    }

    fn flush_bootstrap(&mut self) -> Result<()> {
        // §4.3: when the bootstrap sample is complete, its largest gap
        // becomes the victim buffer's valid range and the sampled records
        // are flushed to streams 4 and 1 (below and above the gap
        // respectively), so streams 2 and 3 only ever exist when the victim
        // buffer later captures records inside the gap.
        let (lower, upper) = self.victim.flush_split();
        // twrs-lint: allow(no-lib-panic) `streams` is Some from run start until finalize
        let streams = self.streams.as_mut().expect("streams exist inside a run");
        self.stats.stream4_records += lower.len() as u64;
        self.stats.stream1_records += upper.len() as u64;
        streams.push_stream4_from_ascending(&lower)?;
        streams.push_stream1_ascending(&upper)?;
        self.bootstrap_done = true;
        Ok(())
    }

    fn flush_victim(&mut self) -> Result<()> {
        let (lower, upper) = self.victim.flush_split();
        // twrs-lint: allow(no-lib-panic) `streams` is Some from run start until finalize
        let streams = self.streams.as_mut().expect("streams exist inside a run");
        self.stats.stream3_records += lower.len() as u64;
        self.stats.stream2_records += upper.len() as u64;
        streams.push_stream3_ascending(&lower)?;
        streams.push_stream2_from_ascending(&upper)?;
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Insertion
    // ---------------------------------------------------------------------

    /// Which run a new input record belongs to: the current run when some
    /// stream of the current run could still accept it, the next run
    /// otherwise.
    fn classify_run(&self, record: &R) -> u64 {
        if !self.bootstrap_done {
            // Anything output during the bootstrap lands in the victim
            // buffer, so every record is still usable in the current run.
            return self.current_run;
        }
        // twrs-lint: allow(no-lib-panic) `streams` is Some from run start until finalize
        let streams = self.streams.as_ref().expect("streams exist inside a run");
        if streams.accepts_stream1(record) || streams.accepts_stream4(record) {
            self.current_run
        } else {
            self.current_run + 1
        }
    }

    /// Which heap stores a new record. The heuristic only gets a say when
    /// the record could be emitted by either heap; otherwise the heap that
    /// can still emit it wins.
    fn choose_insert_side(&mut self, record: &R) -> HeapSide {
        let (can_top, can_bottom) = match self.streams.as_ref() {
            None => (true, true),
            Some(_) if !self.bootstrap_done => {
                // No stream boundary exists yet, but a record that outranks a
                // heap's root would be popped straight into the bootstrap
                // victim buffer and widen the run's valid range around a
                // stray value; keep such records on the side whose output
                // order they follow.
                let ctx = self.context();
                let above_top_root = ctx.top_root.is_none_or(|root| record.sort_key() >= root);
                let below_bottom_root =
                    ctx.bottom_root.is_none_or(|root| record.sort_key() <= root);
                if above_top_root || below_bottom_root {
                    (above_top_root, below_bottom_root)
                } else {
                    (true, true)
                }
            }
            Some(streams) => (
                streams.accepts_stream1(record),
                streams.accepts_stream4(record),
            ),
        };
        match (can_top, can_bottom) {
            (true, false) => HeapSide::Top,
            (false, true) => HeapSide::Bottom,
            _ => {
                let ctx = self.context();
                self.input_heuristic.choose(record, &ctx)
            }
        }
    }

    fn push_dual(&mut self, side: HeapSide, record: RunRecord<R>) -> Result<()> {
        self.dual.push(side, record).map_err(|_| {
            SortError::InvalidConfig(
                "internal error: dual heap overflow during two-way replacement selection".into(),
            )
        })
    }

    fn context(&self) -> HeuristicContext {
        let need_median = self.config.input_heuristic == InputHeuristic::Median;
        HeuristicContext {
            top_len: self.dual.len_of(HeapSide::Top),
            bottom_len: self.dual.len_of(HeapSide::Bottom),
            top_pops: self.dual.pops_from(HeapSide::Top),
            bottom_pops: self.dual.pops_from(HeapSide::Bottom),
            input_mean: self.input_buffer.mean_key(),
            input_median: if need_median {
                self.input_buffer.median_key()
            } else {
                None
            },
            first_output: self.first_output.as_ref().map(SortableRecord::sort_key),
            top_root: self.dual.peek(HeapSide::Top).map(|r| r.value.sort_key()),
            bottom_root: self.dual.peek(HeapSide::Bottom).map(|r| r.value.sort_key()),
        }
    }
}

enum OutputSide {
    /// Pop from this side.
    Side(HeapSide),
    /// Both heaps hold only next-run records: close the current run.
    RunFinished,
    /// Both heaps are empty: the input is exhausted.
    Empty,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BufferSetup;
    use crate::heuristics::output::OutputHeuristic;
    use twrs_extsort::RunCursor;
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;
    use twrs_workloads::{Distribution, DistributionKind, Record};

    fn generate(config: TwrsConfig, input: Vec<Record>) -> (SimDevice, RunSet, TwrsRunStats) {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("twrs");
        let mut generator = TwoWayReplacementSelection::new(config);
        let mut iter = input.into_iter();
        let set = generator.generate(&device, &namer, &mut iter).unwrap();
        (device, set, generator.stats())
    }

    fn check_runs(device: &SimDevice, set: &RunSet, mut expected: Vec<Record>) {
        let mut all: Vec<Record> = Vec::new();
        for handle in &set.runs {
            let mut cursor = RunCursor::<Record>::open(device, handle).unwrap();
            let run = cursor.read_all().unwrap();
            assert!(
                run.windows(2).all(|w| w[0] <= w[1]),
                "run is not sorted: {handle:?}"
            );
            all.extend(run);
        }
        assert_eq!(all.len() as u64, set.records);
        all.sort_unstable();
        expected.sort_unstable();
        assert_eq!(all, expected, "output multiset differs from the input");
    }

    #[test]
    fn sorted_input_yields_one_run() {
        // Theorem 2.
        let input = Distribution::exact(DistributionKind::Sorted, 5_000).collect();
        let (device, set, _) = generate(TwrsConfig::recommended(200), input.clone());
        assert_eq!(set.num_runs(), 1);
        check_runs(&device, &set, input);
    }

    #[test]
    fn reverse_sorted_input_yields_one_run() {
        // Theorem 4 — the case where classic RS degrades to memory-sized
        // runs while 2WRS produces a single run.
        let input = Distribution::exact(DistributionKind::ReverseSorted, 5_000).collect();
        let (device, set, _) = generate(TwrsConfig::recommended(200), input.clone());
        assert_eq!(set.num_runs(), 1);
        check_runs(&device, &set, input);
    }

    #[test]
    fn random_input_yields_runs_about_twice_memory() {
        // §5.2.4: 2WRS matches RS (≈ 2 × memory) on random input.
        let input = Distribution::new(DistributionKind::RandomUniform, 40_000, 3).collect();
        let (device, set, _) = generate(TwrsConfig::recommended(500), input.clone());
        let relative = set.relative_run_length(500);
        assert!(
            (1.5..2.6).contains(&relative),
            "relative run length {relative}"
        );
        check_runs(&device, &set, input);
    }

    #[test]
    fn alternating_input_yields_one_run_per_section() {
        // Theorem 6: each monotone section becomes (about) one run.
        let sections = 10u32;
        let input =
            Distribution::exact(DistributionKind::Alternating { sections }, 20_000).collect();
        let (device, set, _) = generate(TwrsConfig::recommended(400), input.clone());
        assert!(
            (sections as usize..=sections as usize + 2).contains(&set.num_runs()),
            "expected about {sections} runs, got {}",
            set.num_runs()
        );
        check_runs(&device, &set, input);
    }

    #[test]
    fn mixed_input_yields_very_long_runs() {
        // §5.2.5: with the victim buffer, the mixed dataset collapses to a
        // couple of runs (Table 5.13 reports 125 × memory).
        let input = Distribution::exact(DistributionKind::MixedBalanced, 40_000).collect();
        let (device, set, stats) = generate(TwrsConfig::recommended(400), input.clone());
        assert!(
            set.num_runs() <= 4,
            "expected a handful of runs, got {}",
            set.num_runs()
        );
        assert!(stats.victim_records > 0);
        check_runs(&device, &set, input);
    }

    #[test]
    fn mixed_without_victim_buffer_degrades() {
        // Figure 5.5: configurations without the victim buffer generate many
        // short runs on mixed input.
        let input = Distribution::exact(DistributionKind::MixedBalanced, 40_000).collect();
        let without = TwrsConfig::recommended(400).with_buffers(BufferSetup::InputOnly, 0.02);
        let (device, set, stats) = generate(without, input.clone());
        assert!(
            set.num_runs() > 10,
            "expected many runs without the victim buffer, got {}",
            set.num_runs()
        );
        assert_eq!(stats.victim_records, 0);
        check_runs(&device, &set, input);
    }

    #[test]
    fn mixed_imbalanced_input_yields_very_long_runs() {
        let input = Distribution::exact(
            DistributionKind::MixedImbalanced {
                descending_per_ascending: 3,
            },
            40_000,
        )
        .collect();
        let (device, set, _) = generate(TwrsConfig::recommended(400), input.clone());
        assert!(
            set.num_runs() <= 6,
            "expected a handful of runs, got {}",
            set.num_runs()
        );
        check_runs(&device, &set, input);
    }

    #[test]
    fn every_heuristic_combination_sorts_correctly() {
        // The heuristics change run lengths, never correctness.
        let input = Distribution::new(DistributionKind::MixedBalanced, 3_000, 5).collect();
        for input_h in InputHeuristic::all() {
            for output_h in OutputHeuristic::all() {
                let config = TwrsConfig::recommended(100).with_heuristics(input_h, output_h);
                let (device, set, _) = generate(config, input.clone());
                check_runs(&device, &set, input.clone());
            }
        }
    }

    #[test]
    fn all_buffer_setups_sort_correctly() {
        let input = Distribution::new(DistributionKind::RandomUniform, 5_000, 9).collect();
        for setup in BufferSetup::all() {
            for fraction in [0.0002, 0.002, 0.02, 0.2] {
                let config = TwrsConfig::recommended(250).with_buffers(setup, fraction);
                let (device, set, _) = generate(config, input.clone());
                check_runs(&device, &set, input.clone());
            }
        }
    }

    #[test]
    fn never_worse_than_memory_sized_runs() {
        // Theorem 7: 2WRS generates runs at least as long as the memory
        // (the Load-Sort-Store lower bound) on every paper distribution,
        // provided the monotone sections are longer than the memory (the
        // assumption of Theorems 5 and 6).
        for kind in DistributionKind::paper_set() {
            let input = Distribution::new(kind, 20_000, 13).collect();
            let (_device, set, _) = generate(TwrsConfig::recommended(200), input);
            let relative = set.relative_run_length(200);
            assert!(
                relative > 0.95,
                "{kind:?}: relative run length {relative} below the memory size"
            );
        }
    }

    #[test]
    fn empty_input_produces_no_runs() {
        let (_device, set, stats) = generate(TwrsConfig::recommended(100), Vec::new());
        assert_eq!(set.num_runs(), 0);
        assert_eq!(set.records, 0);
        assert_eq!(stats.runs, 0);
    }

    #[test]
    fn input_smaller_than_memory_is_one_run() {
        let input = Distribution::new(DistributionKind::RandomUniform, 50, 2).collect();
        let (device, set, _) = generate(TwrsConfig::recommended(1_000), input.clone());
        assert_eq!(set.num_runs(), 1);
        check_runs(&device, &set, input);
    }

    #[test]
    fn duplicate_keys_are_handled() {
        let input: Vec<Record> = (0..4_000u64).map(|i| Record::new(i % 7, i)).collect();
        let (device, set, _) = generate(TwrsConfig::recommended(100), input.clone());
        check_runs(&device, &set, input);
    }

    #[test]
    fn tiny_memory_still_sorts() {
        let input = Distribution::new(DistributionKind::MixedBalanced, 500, 1).collect();
        let (device, set, _) = generate(TwrsConfig::recommended(2), input.clone());
        check_runs(&device, &set, input);
    }

    #[test]
    fn zero_memory_is_rejected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("twrs");
        let mut generator = TwoWayReplacementSelection::new(TwrsConfig::recommended(0));
        let mut input = std::iter::empty::<Record>();
        assert!(matches!(
            generator.generate(&device, &namer, &mut input),
            Err(SortError::InvalidConfig(_))
        ));
    }

    #[test]
    fn stats_report_stream_usage() {
        let input = Distribution::exact(DistributionKind::MixedBalanced, 10_000).collect();
        let (_device, set, stats) = generate(TwrsConfig::recommended(400), input);
        let emitted = stats.stream1_records
            + stats.stream2_records
            + stats.stream3_records
            + stats.stream4_records;
        assert_eq!(emitted, set.records);
        assert_eq!(stats.runs as usize, set.num_runs());
    }

    #[test]
    fn deferrals_are_rare_on_paper_inputs() {
        for kind in DistributionKind::paper_set() {
            let input = Distribution::new(kind, 20_000, 4).collect();
            let (_device, set, stats) = generate(TwrsConfig::recommended(500), input);
            assert!(
                stats.deferred_records <= set.num_runs() as u64 * 4 + 8,
                "{kind:?}: {} deferrals across {} runs",
                stats.deferred_records,
                set.num_runs()
            );
        }
    }
}
