//! Two-way Replacement Selection (2WRS) — the primary contribution of the
//! paper *"Two-way Replacement Selection"* (Martínez-Palau, Domínguez-Sal,
//! Larriba-Pey; VLDB 2010).
//!
//! Classic replacement selection generates long runs for random and
//! already-sorted inputs but collapses to memory-sized runs on
//! reverse-sorted or mixed inputs. 2WRS generalises it with:
//!
//! * **two heaps** sharing one fixed array (a min *TopHeap* feeding an
//!   increasing stream and a max *BottomHeap* feeding a decreasing stream),
//!   so ascending and descending trends in the input are both captured;
//! * an **input buffer** — a FIFO sample of the upcoming input used by the
//!   input heuristic to decide which heap receives each record;
//! * a **victim buffer** capturing records that fall in the gap between the
//!   two emitted streams, producing two extra streams per run;
//! * configurable **input and output heuristics** (§4.2), whose interaction
//!   the paper analyses with ANOVA in Chapter 5.
//!
//! The entry point is [`TwoWayReplacementSelection`], which implements the
//! [`twrs_extsort::RunGenerator`] trait and therefore plugs directly into
//! [`twrs_extsort::ExternalSorter`]:
//!
//! ```
//! use twrs_core::{TwoWayReplacementSelection, TwrsConfig};
//! use twrs_extsort::{ExternalSorter, SorterConfig};
//! use twrs_storage::{ModelId, SimDevice};
//! use twrs_workloads::{Distribution, DistributionKind};
//!
//! let device = SimDevice::with_model(ModelId::Hdd7200);
//! let twrs = TwoWayReplacementSelection::new(TwrsConfig::recommended(1_000));
//! let mut sorter = ExternalSorter::with_config(twrs, SorterConfig::default());
//! let mut input = Distribution::new(DistributionKind::ReverseSorted, 10_000, 1).records();
//! let report = sorter.sort_iter(&device, &mut input, "sorted").unwrap();
//! // Reverse-sorted input: 2WRS produces a single run (Theorem 4), where
//! // classic RS would have produced 10 memory-sized runs.
//! assert_eq!(report.num_runs, 1);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod heuristics;
pub mod input_buffer;
pub mod streams;
pub mod two_way;
pub mod victim;

pub use config::{BufferSetup, TwrsConfig};
pub use heuristics::input::InputHeuristic;
pub use heuristics::output::OutputHeuristic;
pub use input_buffer::InputBuffer;
pub use two_way::{TwoWayReplacementSelection, TwrsRunStats};
pub use victim::VictimBuffer;
