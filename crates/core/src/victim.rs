//! The victim buffer (§4.3).
//!
//! The TopHeap and BottomHeap emit an increasing and a decreasing stream;
//! between the last record of one and the last record of the other lies a
//! gap of key values that neither heap can place in the current run any
//! more. The victim buffer is a small pool of memory that catches records
//! falling inside that gap, sorts them when it fills up, and appends them to
//! two extra streams (3, increasing, and 2, decreasing) that slot exactly
//! into the gap — extending the run with records that classic replacement
//! selection would have pushed to the next run.
//!
//! At the start of each run it plays a second role: the first outputs of the
//! heaps are parked here instead of going to streams 1 and 4, so the valid
//! range can be chosen as the *largest* gap among them rather than simply
//! the gap between the two heap roots.

use twrs_storage::SortableRecord;

/// The victim buffer of one 2WRS instance.
#[derive(Debug, Clone)]
pub struct VictimBuffer<R: SortableRecord> {
    capacity: usize,
    records: Vec<R>,
    /// Exclusive bounds of the keys the buffer currently accepts; `None`
    /// until the first (bootstrap) flush of the run.
    range: Option<(R, R)>,
}

impl<R: SortableRecord> VictimBuffer<R> {
    /// Creates a victim buffer holding at most `capacity` records
    /// (0 disables it).
    pub fn new(capacity: usize) -> Self {
        VictimBuffer {
            capacity,
            records: Vec::with_capacity(capacity),
            range: None,
        }
    }

    /// Maximum number of records the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` when the configuration allocated any space to the buffer.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no record is buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` when the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.records.len() >= self.capacity
    }

    /// The currently accepted (exclusive) range, when one has been
    /// established.
    pub fn range(&self) -> Option<(R, R)> {
        self.range.clone()
    }

    /// `true` when `record` falls strictly inside the accepted range and
    /// there is room to store it (Algorithm 2's `victimBuffer.fit`). Always
    /// `false` before the bootstrap flush of the run, as the paper
    /// specifies.
    pub fn fits(&self, record: &R) -> bool {
        if !self.is_enabled() || self.is_full() {
            return false;
        }
        match &self.range {
            Some((lo, hi)) => record > lo && record < hi,
            None => false,
        }
    }

    /// Stores a record. Callers must have checked [`VictimBuffer::fits`] (or
    /// be performing the bootstrap, which stores unconditionally while the
    /// buffer has room).
    pub fn push(&mut self, record: R) {
        debug_assert!(self.records.len() < self.capacity);
        self.records.push(record);
    }

    /// Sorts and drains the buffered records, splitting them at their
    /// largest key gap.
    ///
    /// Returns `(lower, upper)` where every record of `lower` is ≤ every
    /// record of `upper`; the new accepted range becomes the open interval
    /// between the last record of `lower` and the first record of `upper`.
    /// Either part may be empty (e.g. a single buffered record produces an
    /// empty upper part and disables the buffer until the next flush or
    /// run).
    pub fn flush_split(&mut self) -> (Vec<R>, Vec<R>) {
        self.records.sort_unstable();
        let sorted = std::mem::take(&mut self.records);
        if sorted.is_empty() {
            self.range = None;
            return (Vec::new(), Vec::new());
        }
        let split = largest_gap_split(&sorted);
        let (lower, upper) = {
            let mut lower = sorted;
            let upper = lower.split_off(split);
            (lower, upper)
        };
        self.range = match (lower.last(), upper.first()) {
            (Some(lo), Some(hi)) if lo < hi => Some((lo.clone(), hi.clone())),
            _ => None,
        };
        (lower, upper)
    }

    /// Sorts and drains the buffered records without splitting (used at the
    /// end of a run, when everything still buffered belongs to the lower
    /// stream).
    pub fn drain_sorted(&mut self) -> Vec<R> {
        self.records.sort_unstable();
        self.range = None;
        std::mem::take(&mut self.records)
    }

    /// Forgets the accepted range (called at the start of every run).
    pub fn reset(&mut self) {
        self.records.clear();
        self.range = None;
    }
}

/// Index at which to split `sorted` so the key gap between
/// `sorted[i - 1]` and `sorted[i]` is the largest; returns `len` (empty
/// upper part) when only one record is present.
///
/// Also used by the run-start repartitioning of the dual heap, which splits
/// the records left in memory at their largest gap for the same reason the
/// victim buffer does: the gap is the natural boundary between the
/// decreasing and the increasing side of the new run.
pub(crate) fn largest_gap_split<R: SortableRecord>(sorted: &[R]) -> usize {
    if sorted.len() < 2 {
        return sorted.len();
    }
    let mut best_gap = 0u64;
    let mut best_index = sorted.len();
    for i in 1..sorted.len() {
        // Saturating: a non-monotone (buggy) `sort_key` must only degrade
        // the heuristic, never panic or wrap (the SortableRecord contract).
        let gap = sorted[i]
            .sort_key()
            .saturating_sub(sorted[i - 1].sort_key());
        if gap > best_gap {
            best_gap = gap;
            best_index = i;
        }
    }
    if best_gap == 0 {
        // All keys equal: no usable gap.
        sorted.len()
    } else {
        best_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twrs_workloads::Record;

    fn records(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|k| Record::from_key(*k)).collect()
    }

    #[test]
    fn paper_example_figure_4_8() {
        // Victim buffer of 4 records holding {40, 50, 39, 51}: the largest
        // gap is 40–50, so 39 and 40 form the lower part and 50, 51 the
        // upper part; the accepted range becomes (40, 50).
        let mut victim = VictimBuffer::new(4);
        for r in records(&[40, 50, 39, 51]) {
            victim.push(r);
        }
        assert!(victim.is_full());
        let (lower, upper) = victim.flush_split();
        assert_eq!(lower, records(&[39, 40]));
        assert_eq!(upper, records(&[50, 51]));
        let (lo, hi) = victim.range().unwrap();
        assert_eq!(lo.key, 40);
        assert_eq!(hi.key, 50);
        // 44 fits the range (the example's next victim record); 39 and 50
        // do not.
        assert!(victim.fits(&Record::from_key(44)));
        assert!(!victim.fits(&Record::from_key(39)));
        assert!(!victim.fits(&Record::from_key(50)));
    }

    #[test]
    fn fits_is_false_before_any_flush() {
        let mut victim = VictimBuffer::new(4);
        assert!(!victim.fits(&Record::from_key(10)));
        victim.push(Record::from_key(5));
        assert!(!victim.fits(&Record::from_key(10)));
    }

    #[test]
    fn disabled_buffer_never_fits() {
        let victim = VictimBuffer::new(0);
        assert!(!victim.is_enabled());
        assert!(!victim.fits(&Record::from_key(1)));
    }

    #[test]
    fn single_record_flush_produces_empty_upper_part() {
        let mut victim = VictimBuffer::new(4);
        victim.push(Record::from_key(7));
        let (lower, upper) = victim.flush_split();
        assert_eq!(lower, records(&[7]));
        assert!(upper.is_empty());
        assert!(victim.range().is_none());
    }

    #[test]
    fn equal_keys_have_no_usable_gap() {
        let mut victim = VictimBuffer::new(4);
        for r in records(&[5, 5, 5]) {
            victim.push(r);
        }
        let (lower, upper) = victim.flush_split();
        assert_eq!(lower.len(), 3);
        assert!(upper.is_empty());
        assert!(victim.range().is_none());
    }

    #[test]
    fn flush_narrows_the_range_on_refill() {
        let mut victim = VictimBuffer::new(4);
        for r in records(&[10, 20, 80, 90]) {
            victim.push(r);
        }
        let _ = victim.flush_split();
        let (lo, hi) = victim.range().unwrap();
        assert_eq!((lo.key, hi.key), (20, 80));
        // Refill with values inside (20, 80) and flush again.
        for r in records(&[25, 30, 70, 75]) {
            assert!(victim.fits(&r));
            victim.push(r);
        }
        let (lower, upper) = victim.flush_split();
        assert_eq!(lower, records(&[25, 30]));
        assert_eq!(upper, records(&[70, 75]));
        let (lo, hi) = victim.range().unwrap();
        assert_eq!((lo.key, hi.key), (30, 70));
    }

    #[test]
    fn drain_sorted_returns_everything_in_order() {
        let mut victim = VictimBuffer::new(8);
        for r in records(&[9, 3, 7, 1]) {
            victim.push(r);
        }
        assert_eq!(victim.drain_sorted(), records(&[1, 3, 7, 9]));
        assert!(victim.is_empty());
        assert!(victim.range().is_none());
    }

    #[test]
    fn reset_clears_contents_and_range() {
        let mut victim = VictimBuffer::new(4);
        for r in records(&[1, 100]) {
            victim.push(r);
        }
        victim.flush_split();
        assert!(victim.range().is_some());
        victim.reset();
        assert!(victim.is_empty());
        assert!(victim.range().is_none());
    }

    #[test]
    fn full_buffer_does_not_fit_more_records() {
        let mut victim = VictimBuffer::new(2);
        for r in records(&[10, 90]) {
            victim.push(r);
        }
        victim.flush_split();
        victim.push(Record::from_key(40));
        victim.push(Record::from_key(60));
        assert!(victim.is_full());
        assert!(!victim.fits(&Record::from_key(50)));
    }
}
