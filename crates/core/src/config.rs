//! Configuration of two-way replacement selection.
//!
//! The paper studies four configuration factors (§5.2, Table 5.1): which
//! buffers are allocated, what fraction of memory they take, and which input
//! and output heuristics are used. [`TwrsConfig`] captures all of them plus
//! the overall memory budget, and provides the presets the paper singles
//! out: the recommended general-purpose configuration (§5.3) and the three
//! configurations compared against RS in Table 5.13.

use crate::heuristics::input::InputHeuristic;
use crate::heuristics::output::OutputHeuristic;

/// Which of the two auxiliary buffers are allocated (factor α of the
/// ANOVA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferSetup {
    /// Only the input buffer is used.
    InputOnly,
    /// Both the input and the victim buffer are used.
    Both,
    /// Only the victim buffer is used.
    VictimOnly,
}

impl BufferSetup {
    /// All levels of the factor, in the order used by the paper (i = 0, 1,
    /// 2).
    pub fn all() -> [BufferSetup; 3] {
        [
            BufferSetup::InputOnly,
            BufferSetup::Both,
            BufferSetup::VictimOnly,
        ]
    }

    /// `true` when the input buffer is allocated.
    pub fn has_input(self) -> bool {
        matches!(self, BufferSetup::InputOnly | BufferSetup::Both)
    }

    /// `true` when the victim buffer is allocated.
    pub fn has_victim(self) -> bool {
        matches!(self, BufferSetup::VictimOnly | BufferSetup::Both)
    }

    /// A short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            BufferSetup::InputOnly => "input",
            BufferSetup::Both => "both",
            BufferSetup::VictimOnly => "victim",
        }
    }
}

/// Full configuration of a 2WRS run-generation instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwrsConfig {
    /// Total memory budget in records, shared by the heaps and the buffers
    /// (the paper keeps this constant across configurations).
    pub memory_records: usize,
    /// Which buffers are allocated.
    pub buffer_setup: BufferSetup,
    /// Fraction of the memory budget dedicated to the buffers (factor β;
    /// the paper tests 0.0002, 0.002, 0.02 and 0.2). Split evenly when both
    /// buffers are allocated.
    pub buffer_fraction: f64,
    /// The input heuristic (factor γ).
    pub input_heuristic: InputHeuristic,
    /// The output heuristic (factor δ).
    pub output_heuristic: OutputHeuristic,
    /// Seed for the random choices of the Random heuristics.
    pub seed: u64,
    /// Pages per part file of the reverse-stream format (Appendix A's `k`).
    pub reverse_pages_per_file: u64,
}

impl TwrsConfig {
    /// The configuration recommended by §5.3 for unknown input
    /// distributions: both buffers, 2 % of memory for buffers, *Mean* input
    /// heuristic and *Random* output heuristic.
    pub fn recommended(memory_records: usize) -> Self {
        TwrsConfig {
            memory_records,
            buffer_setup: BufferSetup::Both,
            buffer_fraction: 0.02,
            input_heuristic: InputHeuristic::Mean,
            output_heuristic: OutputHeuristic::Random,
            seed: DEFAULT_SEED,
            reverse_pages_per_file: 16,
        }
    }

    /// Configuration 1 of Table 5.13: input buffer only, 0.02 % of memory,
    /// Mean input heuristic, Random output heuristic. Optimises random
    /// input at the expense of mixed inputs.
    pub fn table_5_13_cfg1(memory_records: usize) -> Self {
        TwrsConfig {
            buffer_setup: BufferSetup::InputOnly,
            buffer_fraction: 0.0002,
            ..Self::recommended(memory_records)
        }
    }

    /// Configuration 2 of Table 5.13: both buffers with 20 % of memory.
    /// Optimises the mixed inputs at a visible cost on random input.
    pub fn table_5_13_cfg2(memory_records: usize) -> Self {
        TwrsConfig {
            buffer_setup: BufferSetup::Both,
            buffer_fraction: 0.2,
            ..Self::recommended(memory_records)
        }
    }

    /// Configuration 3 of Table 5.13: both buffers with 2 % of memory — the
    /// balanced configuration used for every timing experiment of
    /// Chapter 6 (identical to [`TwrsConfig::recommended`]).
    pub fn table_5_13_cfg3(memory_records: usize) -> Self {
        Self::recommended(memory_records)
    }

    /// Changes the random seed (used to replicate executions in the ANOVA
    /// experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the total memory budget, keeping the buffer setup, buffer
    /// fraction, heuristics and seed — the budget re-lease hook the sort
    /// service uses to shrink or grow a job's heap under a global budget
    /// (the buffers scale with the new budget via
    /// [`buffer_records`](TwrsConfig::buffer_records)).
    pub fn with_memory_records(mut self, memory_records: usize) -> Self {
        self.memory_records = memory_records;
        self
    }

    /// Changes the heuristics.
    pub fn with_heuristics(mut self, input: InputHeuristic, output: OutputHeuristic) -> Self {
        self.input_heuristic = input;
        self.output_heuristic = output;
        self
    }

    /// Changes the buffer setup and fraction.
    pub fn with_buffers(mut self, setup: BufferSetup, fraction: f64) -> Self {
        self.buffer_setup = setup;
        self.buffer_fraction = fraction;
        self
    }

    /// The configuration of shard `index` when this configuration is split
    /// across `shards` parallel run-generation workers.
    ///
    /// The total memory budget is divided with
    /// [`twrs_extsort::shard_budget`], so the shard budgets sum to
    /// `memory_records` (each shard keeps the same buffer setup, fraction
    /// and heuristics — the buffers scale down with the budget). The seed
    /// is offset by the shard index so the Random heuristics of different
    /// shards draw decorrelated streams while staying reproducible.
    pub fn for_shard(&self, index: usize, shards: usize) -> Self {
        TwrsConfig {
            memory_records: twrs_extsort::shard_budget(self.memory_records, index, shards),
            seed: self.seed.wrapping_add(index as u64),
            ..*self
        }
    }

    /// The per-shard configurations of a `threads`-way split; total memory
    /// across the returned configurations equals `memory_records`.
    pub fn split_across(&self, threads: usize) -> Vec<Self> {
        (0..threads).map(|i| self.for_shard(i, threads)).collect()
    }

    /// Total number of records dedicated to buffers.
    pub fn buffer_records(&self) -> usize {
        let fraction = self.buffer_fraction.clamp(0.0, 0.9);
        ((self.memory_records as f64) * fraction).round() as usize
    }

    /// Capacity of the input buffer in records.
    pub fn input_buffer_records(&self) -> usize {
        match self.buffer_setup {
            BufferSetup::InputOnly => self.buffer_records(),
            BufferSetup::Both => self.buffer_records() / 2,
            BufferSetup::VictimOnly => 0,
        }
    }

    /// Capacity of the victim buffer in records.
    pub fn victim_buffer_records(&self) -> usize {
        match self.buffer_setup {
            BufferSetup::VictimOnly => self.buffer_records(),
            BufferSetup::Both => self.buffer_records() - self.buffer_records() / 2,
            BufferSetup::InputOnly => 0,
        }
    }

    /// Capacity of the shared heap array in records (whatever the buffers do
    /// not use; always at least one record).
    pub fn heap_records(&self) -> usize {
        self.memory_records
            .saturating_sub(self.buffer_records())
            .max(1)
    }
}

/// Default seed for the Random heuristics ("TWRS" in ASCII); reproducible
/// but otherwise arbitrary.
const DEFAULT_SEED: u64 = 0x5457_5253;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_matches_section_5_3() {
        let cfg = TwrsConfig::recommended(100_000);
        assert_eq!(cfg.buffer_setup, BufferSetup::Both);
        assert!((cfg.buffer_fraction - 0.02).abs() < 1e-12);
        assert_eq!(cfg.input_heuristic, InputHeuristic::Mean);
        assert_eq!(cfg.output_heuristic, OutputHeuristic::Random);
        assert_eq!(cfg.buffer_records(), 2_000);
        assert_eq!(cfg.input_buffer_records(), 1_000);
        assert_eq!(cfg.victim_buffer_records(), 1_000);
        assert_eq!(cfg.heap_records(), 98_000);
    }

    #[test]
    fn memory_is_conserved_across_components() {
        for setup in BufferSetup::all() {
            for fraction in [0.0002, 0.002, 0.02, 0.2] {
                let cfg = TwrsConfig::recommended(100_000).with_buffers(setup, fraction);
                let total =
                    cfg.heap_records() + cfg.input_buffer_records() + cfg.victim_buffer_records();
                assert!(
                    total <= cfg.memory_records,
                    "setup {setup:?} fraction {fraction} uses {total} of {}",
                    cfg.memory_records
                );
                assert!(total >= cfg.memory_records - 1, "unused memory too large");
            }
        }
    }

    #[test]
    fn single_buffer_setups_give_everything_to_that_buffer() {
        let cfg = TwrsConfig::recommended(10_000).with_buffers(BufferSetup::InputOnly, 0.2);
        assert_eq!(cfg.input_buffer_records(), 2_000);
        assert_eq!(cfg.victim_buffer_records(), 0);
        let cfg = TwrsConfig::recommended(10_000).with_buffers(BufferSetup::VictimOnly, 0.2);
        assert_eq!(cfg.input_buffer_records(), 0);
        assert_eq!(cfg.victim_buffer_records(), 2_000);
    }

    #[test]
    fn heap_capacity_never_reaches_zero() {
        let cfg = TwrsConfig::recommended(1).with_buffers(BufferSetup::Both, 0.9);
        assert!(cfg.heap_records() >= 1);
    }

    #[test]
    fn table_presets_differ_as_documented() {
        let cfg1 = TwrsConfig::table_5_13_cfg1(100_000);
        let cfg2 = TwrsConfig::table_5_13_cfg2(100_000);
        let cfg3 = TwrsConfig::table_5_13_cfg3(100_000);
        assert_eq!(cfg1.buffer_setup, BufferSetup::InputOnly);
        assert!(cfg1.buffer_fraction < cfg3.buffer_fraction);
        assert!(cfg2.buffer_fraction > cfg3.buffer_fraction);
        assert_eq!(cfg2.buffer_setup, BufferSetup::Both);
    }

    #[test]
    fn shard_split_conserves_total_memory() {
        for threads in [1, 2, 3, 7] {
            for total in [7, 100, 101, 100_000] {
                let cfg = TwrsConfig::recommended(total);
                let shards = cfg.split_across(threads);
                assert_eq!(shards.len(), threads);
                if total >= threads {
                    let sum: usize = shards.iter().map(|s| s.memory_records).sum();
                    assert_eq!(sum, total, "{total} records over {threads} threads");
                }
                for (i, shard) in shards.iter().enumerate() {
                    assert!(shard.memory_records >= 1);
                    assert_eq!(shard.buffer_setup, cfg.buffer_setup);
                    assert_eq!(shard.seed, cfg.seed.wrapping_add(i as u64));
                }
            }
        }
    }

    #[test]
    fn buffer_setup_flags() {
        assert!(BufferSetup::Both.has_input());
        assert!(BufferSetup::Both.has_victim());
        assert!(BufferSetup::InputOnly.has_input());
        assert!(!BufferSetup::InputOnly.has_victim());
        assert!(!BufferSetup::VictimOnly.has_input());
        assert!(BufferSetup::VictimOnly.has_victim());
    }
}
