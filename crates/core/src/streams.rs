//! The four per-run output streams of 2WRS (§4.1, Figure 4.1).
//!
//! Every 2WRS run is stored as up to four files whose key ranges do not
//! overlap:
//!
//! | stream | produced by            | order      | file format            |
//! |--------|------------------------|------------|------------------------|
//! | 4      | BottomHeap             | decreasing | reverse (Appendix A)   |
//! | 3      | victim buffer (lower)  | increasing | forward                |
//! | 2      | victim buffer (upper)  | decreasing | reverse (Appendix A)   |
//! | 1      | TopHeap                | increasing | forward                |
//!
//! Reading the files in the order 4 · 3 · 2 · 1 (reverse files are read
//! back in ascending order by construction) yields the whole run sorted,
//! so the merge phase sees one logical run per [`RunHandle::Chain`].
//!
//! [`RunStreams`] owns the four builders for the current run and tracks the
//! boundary records needed to guarantee the non-overlap invariant
//! `stream 4 ≤ stream 3 ≤ stream 2 ≤ stream 1` for *any* heuristic: a
//! record that would violate it is simply not accepted, and the caller
//! defers it to the next run (the same mechanism replacement selection
//! already uses for records that arrive too late).

use twrs_extsort::{Device, ForwardRunBuilder, Result, ReverseRunBuilder, RunHandle};
use twrs_storage::{SortableRecord, SpillNamer};

/// The four output streams of the run currently being generated.
pub struct RunStreams<'a, D: Device, R: SortableRecord> {
    stream1: ForwardRunBuilder<'a, D, R>,
    stream2: ReverseRunBuilder<'a, D, R>,
    stream3: ForwardRunBuilder<'a, D, R>,
    stream4: ReverseRunBuilder<'a, D, R>,

    /// First and last record written to stream 1 (increasing).
    s1_first: Option<R>,
    s1_last: Option<R>,
    /// First and last record written to stream 2 (decreasing).
    s2_first: Option<R>,
    s2_last: Option<R>,
    /// First and last record written to stream 3 (increasing).
    s3_first: Option<R>,
    s3_last: Option<R>,
    /// First and last record written to stream 4 (decreasing).
    s4_first: Option<R>,
    s4_last: Option<R>,

    records: u64,
}

impl<'a, D: Device, R: SortableRecord> RunStreams<'a, D, R> {
    /// Creates the stream set for a new run.
    pub fn new(device: &'a D, namer: &'a SpillNamer, reverse_pages_per_file: u64) -> Self {
        RunStreams {
            stream1: ForwardRunBuilder::new(device, namer),
            stream2: ReverseRunBuilder::new(device, namer, reverse_pages_per_file),
            stream3: ForwardRunBuilder::new(device, namer),
            stream4: ReverseRunBuilder::new(device, namer, reverse_pages_per_file),
            s1_first: None,
            s1_last: None,
            s2_first: None,
            s2_last: None,
            s3_first: None,
            s3_last: None,
            s4_first: None,
            s4_last: None,
            records: 0,
        }
    }

    /// Number of records written to the run so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The largest record that the "lower side" of the run (streams 4, 3
    /// and 2) has committed to; stream 1 may only accept records ≥ this.
    fn upper_floor(&self) -> Option<&R> {
        [&self.s4_first, &self.s3_last, &self.s2_first, &self.s1_last]
            .into_iter()
            .filter_map(Option::as_ref)
            .max()
    }

    /// The smallest record that the "upper side" of the run (streams 3, 2
    /// and 1) has committed to; stream 4 may only accept records ≤ this.
    fn lower_cap(&self) -> Option<&R> {
        [&self.s3_first, &self.s2_last, &self.s1_first, &self.s4_last]
            .into_iter()
            .filter_map(Option::as_ref)
            .min()
    }

    /// `true` when `record` can be appended to stream 1 without breaking
    /// either its monotonicity or the cross-stream ordering.
    pub fn accepts_stream1(&self, record: &R) -> bool {
        self.upper_floor().is_none_or(|floor| record >= floor)
    }

    /// `true` when `record` can be appended to stream 4 without breaking
    /// either its monotonicity or the cross-stream ordering.
    pub fn accepts_stream4(&self, record: &R) -> bool {
        self.lower_cap().is_none_or(|cap| record <= cap)
    }

    /// Appends a record to stream 1 (the TopHeap's increasing stream).
    pub fn push_stream1(&mut self, record: R) -> Result<()> {
        debug_assert!(self.accepts_stream1(&record));
        self.stream1.push(&record)?;
        if self.s1_first.is_none() {
            self.s1_first = Some(record.clone());
        }
        self.s1_last = Some(record);
        self.records += 1;
        Ok(())
    }

    /// Appends a record to stream 4 (the BottomHeap's decreasing stream).
    pub fn push_stream4(&mut self, record: R) -> Result<()> {
        debug_assert!(self.accepts_stream4(&record));
        self.stream4.push(&record)?;
        if self.s4_first.is_none() {
            self.s4_first = Some(record.clone());
        }
        self.s4_last = Some(record);
        self.records += 1;
        Ok(())
    }

    /// Appends a batch of records to stream 4. `records` must be sorted
    /// ascending; they are written in descending order as the reverse-file
    /// format expects. Used by the run-start bootstrap flush (§4.3:
    /// "flushes the records to Streams 1 and 4").
    pub fn push_stream4_from_ascending(&mut self, records: &[R]) -> Result<()> {
        for record in records.iter().rev() {
            debug_assert!(self.s4_last.as_ref().is_none_or(|last| record <= last));
            self.stream4.push(record)?;
            if self.s4_first.is_none() {
                self.s4_first = Some(record.clone());
            }
            self.s4_last = Some(record.clone());
            self.records += 1;
        }
        Ok(())
    }

    /// Appends a batch of ascending records to stream 1. Used by the
    /// run-start bootstrap flush.
    pub fn push_stream1_ascending(&mut self, records: &[R]) -> Result<()> {
        for record in records {
            debug_assert!(self.s1_last.as_ref().is_none_or(|last| record >= last));
            self.stream1.push(record)?;
            if self.s1_first.is_none() {
                self.s1_first = Some(record.clone());
            }
            self.s1_last = Some(record.clone());
            self.records += 1;
        }
        Ok(())
    }

    /// Appends a batch of ascending records to stream 3 (the victim
    /// buffer's lower, increasing stream).
    pub fn push_stream3_ascending(&mut self, records: &[R]) -> Result<()> {
        for record in records {
            debug_assert!(self.s3_last.as_ref().is_none_or(|last| record >= last));
            self.stream3.push(record)?;
            if self.s3_first.is_none() {
                self.s3_first = Some(record.clone());
            }
            self.s3_last = Some(record.clone());
            self.records += 1;
        }
        Ok(())
    }

    /// Appends a batch of records to stream 2 (the victim buffer's upper,
    /// decreasing stream). `records` must be sorted ascending; they are
    /// written in descending order as the reverse-file format expects.
    pub fn push_stream2_from_ascending(&mut self, records: &[R]) -> Result<()> {
        for record in records.iter().rev() {
            debug_assert!(self.s2_last.as_ref().is_none_or(|last| record <= last));
            self.stream2.push(record)?;
            if self.s2_first.is_none() {
                self.s2_first = Some(record.clone());
            }
            self.s2_last = Some(record.clone());
            self.records += 1;
        }
        Ok(())
    }

    /// Debug snapshot of the stream boundary records (keys only), used by
    /// temporary diagnostics.
    pub fn debug_bounds(&self) -> String {
        fn k<R: SortableRecord>(r: &Option<R>) -> String {
            r.as_ref()
                .map(|x| x.sort_key().to_string())
                .unwrap_or_else(|| "-".into())
        }
        format!(
            "s1[{},{}] s2[{},{}] s3[{},{}] s4[{},{}]",
            k(&self.s1_first),
            k(&self.s1_last),
            k(&self.s2_first),
            k(&self.s2_last),
            k(&self.s3_first),
            k(&self.s3_last),
            k(&self.s4_first),
            k(&self.s4_last)
        )
    }

    /// The first record output in the current run through any stream, used
    /// by the *MinDistance* output heuristic.
    pub fn first_output(&self) -> Option<&R> {
        [
            &self.s1_first,
            &self.s2_first,
            &self.s3_first,
            &self.s4_first,
        ]
        .into_iter()
        .filter_map(Option::as_ref)
        .min()
    }

    /// Closes the run: finishes every non-empty stream file and, when the
    /// run holds at least one record, appends one logical
    /// [`RunHandle::Chain`] (streams in the order 4 · 3 · 2 · 1) to `runs`.
    /// Returns the number of records in the run.
    pub fn finish(mut self, runs: &mut Vec<RunHandle>) -> Result<u64> {
        let mut parts = Vec::new();
        self.stream4.finish_run(&mut parts)?;
        self.stream3.finish_run(&mut parts)?;
        self.stream2.finish_run(&mut parts)?;
        self.stream1.finish_run(&mut parts)?;
        match parts.len() {
            0 => {}
            1 => runs.extend(parts.pop()),
            _ => runs.push(RunHandle::Chain(parts)),
        }
        Ok(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twrs_extsort::RunCursor;
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;
    use twrs_workloads::Record;

    fn rec(key: u64) -> Record {
        Record::from_key(key)
    }

    #[test]
    fn four_streams_concatenate_into_one_sorted_run() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("s");
        let mut streams = RunStreams::new(&device, &namer, 4);

        // Mimic the paper's example: bootstrap flush puts {39, 40} in
        // stream 3 and {50, 51} in stream 2, the BottomHeap emits 38, 37 to
        // stream 4 and the TopHeap 52, 53 to stream 1.
        streams.push_stream3_ascending(&[rec(39), rec(40)]).unwrap();
        streams
            .push_stream2_from_ascending(&[rec(50), rec(51)])
            .unwrap();
        streams.push_stream4(rec(38)).unwrap();
        streams.push_stream4(rec(37)).unwrap();
        streams.push_stream1(rec(52)).unwrap();
        streams.push_stream1(rec(53)).unwrap();
        assert_eq!(streams.records(), 8);

        let mut runs = Vec::new();
        let count = streams.finish(&mut runs).unwrap();
        assert_eq!(count, 8);
        assert_eq!(runs.len(), 1);
        let mut cursor = RunCursor::<Record>::open(&device, &runs[0]).unwrap();
        let keys: Vec<u64> = cursor.read_all().unwrap().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![37, 38, 39, 40, 50, 51, 52, 53]);
    }

    #[test]
    fn acceptance_enforces_cross_stream_ordering() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("s");
        let mut streams = RunStreams::new(&device, &namer, 4);
        streams.push_stream4(rec(40)).unwrap();
        streams.push_stream1(rec(60)).unwrap();
        // Stream 1 may not go below the BottomHeap's first output...
        assert!(!streams.accepts_stream1(&rec(39)));
        // ...nor below its own last output.
        assert!(!streams.accepts_stream1(&rec(55)));
        assert!(streams.accepts_stream1(&rec(61)));
        // Stream 4 may not rise above the TopHeap's first output...
        assert!(!streams.accepts_stream4(&rec(61)));
        // ...nor above its own last output.
        assert!(!streams.accepts_stream4(&rec(45)));
        assert!(streams.accepts_stream4(&rec(40)));
        assert!(streams.accepts_stream4(&rec(12)));
    }

    #[test]
    fn empty_run_produces_no_handle() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("s");
        let streams = RunStreams::<_, Record>::new(&device, &namer, 4);
        let mut runs = Vec::new();
        assert_eq!(streams.finish(&mut runs).unwrap(), 0);
        assert!(runs.is_empty());
    }

    #[test]
    fn single_stream_run_is_not_wrapped_in_a_chain() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("s");
        let mut streams = RunStreams::new(&device, &namer, 4);
        for k in 0..10 {
            streams.push_stream1(rec(k)).unwrap();
        }
        let mut runs = Vec::new();
        streams.finish(&mut runs).unwrap();
        assert_eq!(runs.len(), 1);
        assert!(matches!(runs[0], RunHandle::Forward(_)));
    }

    #[test]
    fn first_output_is_the_smallest_first_of_any_stream() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("s");
        let mut streams = RunStreams::new(&device, &namer, 4);
        assert_eq!(streams.first_output(), None);
        streams.push_stream1(rec(70)).unwrap();
        streams.push_stream4(rec(30)).unwrap();
        assert_eq!(streams.first_output().unwrap().key, 30);
        assert_eq!(streams.records(), 2);
    }

    #[test]
    fn acceptance_is_unconstrained_for_a_fresh_run() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("s");
        let streams = RunStreams::new(&device, &namer, 4);
        assert!(streams.accepts_stream1(&rec(0)));
        assert!(streams.accepts_stream4(&rec(u64::MAX)));
    }
}
