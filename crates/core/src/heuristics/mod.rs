//! The input and output heuristics of 2WRS (§4.2).
//!
//! When a record could legally join either heap, the **input heuristic**
//! decides which one receives it; when both heaps can emit a current-run
//! record, the **output heuristic** decides which one does. The paper
//! defines six input and five output heuristics and studies all thirty
//! combinations with ANOVA (Chapter 5), concluding that *Mean* ×
//! *Random* is a robust general-purpose choice.

pub mod input;
pub mod output;

pub use input::{InputHeuristic, InputHeuristicState};
pub use output::{OutputHeuristic, OutputHeuristicState};

/// A snapshot of the algorithm state the heuristics are allowed to look at.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicContext {
    /// Number of records currently stored in the TopHeap.
    pub top_len: usize,
    /// Number of records currently stored in the BottomHeap.
    pub bottom_len: usize,
    /// Records emitted by the TopHeap since the start of the current run.
    pub top_pops: u64,
    /// Records emitted by the BottomHeap since the start of the current run.
    pub bottom_pops: u64,
    /// Mean key of the input buffer contents, when available.
    pub input_mean: Option<u64>,
    /// Median key of the input buffer contents, when available.
    pub input_median: Option<u64>,
    /// Key of the first record output in the current run, when any.
    pub first_output: Option<u64>,
    /// Key at the root of the TopHeap, when the heap is not empty.
    pub top_root: Option<u64>,
    /// Key at the root of the BottomHeap, when the heap is not empty.
    pub bottom_root: Option<u64>,
}

impl HeuristicContext {
    /// Usefulness of the TopHeap: records it emitted divided by its size
    /// (the measure defined in §4.2 for the *Useful* heuristics).
    pub fn top_usefulness(&self) -> f64 {
        usefulness(self.top_pops, self.top_len)
    }

    /// Usefulness of the BottomHeap.
    pub fn bottom_usefulness(&self) -> f64 {
        usefulness(self.bottom_pops, self.bottom_len)
    }
}

fn usefulness(pops: u64, len: usize) -> f64 {
    if len == 0 {
        // An empty heap is maximally useful to insert into only if it has
        // been producing output; rate it by its pops alone.
        pops as f64
    } else {
        pops as f64 / len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usefulness_is_pops_over_size() {
        let ctx = HeuristicContext {
            top_len: 10,
            bottom_len: 5,
            top_pops: 30,
            bottom_pops: 5,
            ..HeuristicContext::default()
        };
        assert!((ctx.top_usefulness() - 3.0).abs() < 1e-12);
        assert!((ctx.bottom_usefulness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_heap_usefulness_does_not_divide_by_zero() {
        let ctx = HeuristicContext {
            top_len: 0,
            top_pops: 7,
            ..HeuristicContext::default()
        };
        assert_eq!(ctx.top_usefulness(), 7.0);
    }
}
