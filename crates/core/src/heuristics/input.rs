//! Input heuristics: which heap receives a record that fits both (§4.2).

use super::HeuristicContext;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use twrs_heaps::HeapSide;
use twrs_storage::SortableRecord;

/// The six input heuristics of the paper (factor γ of the ANOVA, levels
/// k = 0..5 in Table 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputHeuristic {
    /// Choose a heap uniformly at random.
    Random,
    /// Alternate strictly between the two heaps.
    Alternate,
    /// Compare the record with the mean of the input buffer: records above
    /// the mean go to the TopHeap, records below to the BottomHeap.
    Mean,
    /// Like `Mean` but comparing against the median of the input buffer.
    Median,
    /// Insert into the heap that has been most useful so far (records output
    /// divided by heap size).
    Useful,
    /// Insert into the smaller heap, keeping the two heaps balanced.
    Balancing,
}

impl InputHeuristic {
    /// All heuristics in the paper's factor-level order.
    pub fn all() -> [InputHeuristic; 6] {
        [
            InputHeuristic::Random,
            InputHeuristic::Alternate,
            InputHeuristic::Mean,
            InputHeuristic::Median,
            InputHeuristic::Useful,
            InputHeuristic::Balancing,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            InputHeuristic::Random => "random",
            InputHeuristic::Alternate => "alternate",
            InputHeuristic::Mean => "mean",
            InputHeuristic::Median => "median",
            InputHeuristic::Useful => "useful",
            InputHeuristic::Balancing => "balancing",
        }
    }
}

/// Runtime state of an input heuristic.
#[derive(Debug, Clone)]
pub struct InputHeuristicState {
    heuristic: InputHeuristic,
    rng: SmallRng,
    /// Next side for the Alternate heuristic.
    next_side: HeapSide,
}

impl InputHeuristicState {
    /// Creates the state for `heuristic`, seeding its random source with
    /// `seed`.
    pub fn new(heuristic: InputHeuristic, seed: u64) -> Self {
        InputHeuristicState {
            heuristic,
            rng: SmallRng::seed_from_u64(seed ^ 0x1157),
            next_side: HeapSide::Bottom,
        }
    }

    /// The heuristic this state implements.
    pub fn heuristic(&self) -> InputHeuristic {
        self.heuristic
    }

    /// Chooses the heap that should store `record` when both heaps could
    /// accept it. Key comparisons use the record's
    /// [`sort_key`](SortableRecord::sort_key) projection.
    pub fn choose<R: SortableRecord>(&mut self, record: &R, ctx: &HeuristicContext) -> HeapSide {
        match self.heuristic {
            InputHeuristic::Random => {
                if self.rng.gen::<bool>() {
                    HeapSide::Top
                } else {
                    HeapSide::Bottom
                }
            }
            InputHeuristic::Alternate => {
                let side = self.next_side;
                self.next_side = side.opposite();
                side
            }
            InputHeuristic::Mean => threshold_choice(record.sort_key(), ctx.input_mean),
            InputHeuristic::Median => threshold_choice(record.sort_key(), ctx.input_median),
            InputHeuristic::Useful => {
                if ctx.top_usefulness() >= ctx.bottom_usefulness() {
                    HeapSide::Top
                } else {
                    HeapSide::Bottom
                }
            }
            InputHeuristic::Balancing => {
                if ctx.top_len <= ctx.bottom_len {
                    HeapSide::Top
                } else {
                    HeapSide::Bottom
                }
            }
        }
    }
}

/// Records above the threshold go to the TopHeap, the rest to the
/// BottomHeap; without a threshold (empty buffer at the very start) default
/// to the TopHeap, which makes the algorithm degenerate gracefully to
/// classic RS.
fn threshold_choice(key: u64, threshold: Option<u64>) -> HeapSide {
    match threshold {
        Some(t) if key <= t => HeapSide::Bottom,
        _ => HeapSide::Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with_mean(mean: u64) -> HeuristicContext {
        HeuristicContext {
            input_mean: Some(mean),
            input_median: Some(mean),
            ..HeuristicContext::default()
        }
    }

    #[test]
    fn mean_routes_by_threshold() {
        let mut state = InputHeuristicState::new(InputHeuristic::Mean, 1);
        let ctx = ctx_with_mean(100);
        assert_eq!(state.choose(&150u64, &ctx), HeapSide::Top);
        assert_eq!(state.choose(&50u64, &ctx), HeapSide::Bottom);
        assert_eq!(state.choose(&100u64, &ctx), HeapSide::Bottom);
    }

    #[test]
    fn median_routes_by_threshold() {
        let mut state = InputHeuristicState::new(InputHeuristic::Median, 1);
        let ctx = ctx_with_mean(42);
        assert_eq!(state.choose(&43u64, &ctx), HeapSide::Top);
        assert_eq!(state.choose(&41u64, &ctx), HeapSide::Bottom);
    }

    #[test]
    fn missing_threshold_defaults_to_top() {
        let mut state = InputHeuristicState::new(InputHeuristic::Mean, 1);
        let ctx = HeuristicContext::default();
        assert_eq!(state.choose(&1u64, &ctx), HeapSide::Top);
    }

    #[test]
    fn alternate_alternates() {
        let mut state = InputHeuristicState::new(InputHeuristic::Alternate, 1);
        let ctx = HeuristicContext::default();
        let first = state.choose(&1u64, &ctx);
        let second = state.choose(&2u64, &ctx);
        let third = state.choose(&3u64, &ctx);
        assert_ne!(first, second);
        assert_eq!(first, third);
    }

    #[test]
    fn random_uses_both_sides() {
        let mut state = InputHeuristicState::new(InputHeuristic::Random, 7);
        let ctx = HeuristicContext::default();
        let mut tops = 0;
        for i in 0..200 {
            if state.choose(&i, &ctx) == HeapSide::Top {
                tops += 1;
            }
        }
        assert!((50..150).contains(&tops), "tops = {tops}");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let ctx = HeuristicContext::default();
        let run = |seed: u64| {
            let mut state = InputHeuristicState::new(InputHeuristic::Random, seed);
            (0..32).map(|i| state.choose(&i, &ctx)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn useful_prefers_the_productive_heap() {
        let mut state = InputHeuristicState::new(InputHeuristic::Useful, 1);
        let ctx = HeuristicContext {
            top_len: 10,
            bottom_len: 10,
            top_pops: 5,
            bottom_pops: 50,
            ..HeuristicContext::default()
        };
        assert_eq!(state.choose(&1u64, &ctx), HeapSide::Bottom);
    }

    #[test]
    fn balancing_prefers_the_smaller_heap() {
        let mut state = InputHeuristicState::new(InputHeuristic::Balancing, 1);
        let ctx = HeuristicContext {
            top_len: 100,
            bottom_len: 20,
            ..HeuristicContext::default()
        };
        assert_eq!(state.choose(&1u64, &ctx), HeapSide::Bottom);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            InputHeuristic::all().iter().map(|h| h.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
