//! Output heuristics: which heap emits the next record when both can (§4.2).

use super::HeuristicContext;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use twrs_heaps::HeapSide;

/// The five output heuristics of the paper (factor δ of the ANOVA, levels
/// l = 0..4 in Table 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputHeuristic {
    /// Pop from a heap chosen uniformly at random.
    Random,
    /// Alternate strictly between the two heaps.
    Alternate,
    /// Pop from the heap that has been most useful so far.
    Useful,
    /// Pop from the larger heap, keeping the two heaps the same size.
    Balancing,
    /// Pop the record closest (in absolute key distance) to the first record
    /// output in the current run.
    MinDistance,
}

impl OutputHeuristic {
    /// All heuristics in the paper's factor-level order.
    pub fn all() -> [OutputHeuristic; 5] {
        [
            OutputHeuristic::Random,
            OutputHeuristic::Alternate,
            OutputHeuristic::Useful,
            OutputHeuristic::Balancing,
            OutputHeuristic::MinDistance,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            OutputHeuristic::Random => "random",
            OutputHeuristic::Alternate => "alternate",
            OutputHeuristic::Useful => "useful",
            OutputHeuristic::Balancing => "balancing",
            OutputHeuristic::MinDistance => "min-distance",
        }
    }
}

/// Runtime state of an output heuristic.
#[derive(Debug, Clone)]
pub struct OutputHeuristicState {
    heuristic: OutputHeuristic,
    rng: SmallRng,
    next_side: HeapSide,
}

impl OutputHeuristicState {
    /// Creates the state for `heuristic`, seeding its random source with
    /// `seed`.
    pub fn new(heuristic: OutputHeuristic, seed: u64) -> Self {
        OutputHeuristicState {
            heuristic,
            rng: SmallRng::seed_from_u64(seed ^ 0x0075),
            next_side: HeapSide::Bottom,
        }
    }

    /// The heuristic this state implements.
    pub fn heuristic(&self) -> OutputHeuristic {
        self.heuristic
    }

    /// Chooses the heap to pop from when both heaps hold a current-run
    /// record at their root.
    pub fn choose(&mut self, ctx: &HeuristicContext) -> HeapSide {
        match self.heuristic {
            OutputHeuristic::Random => {
                if self.rng.gen::<bool>() {
                    HeapSide::Top
                } else {
                    HeapSide::Bottom
                }
            }
            OutputHeuristic::Alternate => {
                let side = self.next_side;
                self.next_side = side.opposite();
                side
            }
            OutputHeuristic::Useful => {
                if ctx.top_usefulness() >= ctx.bottom_usefulness() {
                    HeapSide::Top
                } else {
                    HeapSide::Bottom
                }
            }
            OutputHeuristic::Balancing => {
                if ctx.top_len >= ctx.bottom_len {
                    HeapSide::Top
                } else {
                    HeapSide::Bottom
                }
            }
            OutputHeuristic::MinDistance => {
                let reference = match ctx.first_output {
                    Some(first) => first,
                    // The very first output of the run: pick at random, as
                    // the paper specifies.
                    None => {
                        return if self.rng.gen::<bool>() {
                            HeapSide::Top
                        } else {
                            HeapSide::Bottom
                        };
                    }
                };
                match (ctx.top_root, ctx.bottom_root) {
                    (Some(top), Some(bottom)) => {
                        if top.abs_diff(reference) <= bottom.abs_diff(reference) {
                            HeapSide::Top
                        } else {
                            HeapSide::Bottom
                        }
                    }
                    (Some(_), None) => HeapSide::Top,
                    _ => HeapSide::Bottom,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternate_alternates() {
        let mut state = OutputHeuristicState::new(OutputHeuristic::Alternate, 1);
        let ctx = HeuristicContext::default();
        let a = state.choose(&ctx);
        let b = state.choose(&ctx);
        assert_ne!(a, b);
        assert_eq!(a, state.choose(&ctx));
    }

    #[test]
    fn balancing_pops_from_the_larger_heap() {
        let mut state = OutputHeuristicState::new(OutputHeuristic::Balancing, 1);
        let ctx = HeuristicContext {
            top_len: 3,
            bottom_len: 9,
            ..HeuristicContext::default()
        };
        assert_eq!(state.choose(&ctx), HeapSide::Bottom);
    }

    #[test]
    fn useful_pops_from_the_productive_heap() {
        let mut state = OutputHeuristicState::new(OutputHeuristic::Useful, 1);
        let ctx = HeuristicContext {
            top_len: 10,
            bottom_len: 10,
            top_pops: 90,
            bottom_pops: 10,
            ..HeuristicContext::default()
        };
        assert_eq!(state.choose(&ctx), HeapSide::Top);
    }

    #[test]
    fn min_distance_prefers_the_closer_root() {
        let mut state = OutputHeuristicState::new(OutputHeuristic::MinDistance, 1);
        let ctx = HeuristicContext {
            first_output: Some(100),
            top_root: Some(140),
            bottom_root: Some(90),
            ..HeuristicContext::default()
        };
        assert_eq!(state.choose(&ctx), HeapSide::Bottom);
        let ctx = HeuristicContext {
            first_output: Some(100),
            top_root: Some(101),
            bottom_root: Some(40),
            ..HeuristicContext::default()
        };
        assert_eq!(state.choose(&ctx), HeapSide::Top);
    }

    #[test]
    fn min_distance_first_output_is_random_but_deterministic() {
        let choose_first = |seed: u64| {
            let mut state = OutputHeuristicState::new(OutputHeuristic::MinDistance, seed);
            state.choose(&HeuristicContext::default())
        };
        assert_eq!(choose_first(5), choose_first(5));
    }

    #[test]
    fn random_uses_both_sides() {
        let mut state = OutputHeuristicState::new(OutputHeuristic::Random, 3);
        let ctx = HeuristicContext::default();
        let tops = (0..200)
            .filter(|_| state.choose(&ctx) == HeapSide::Top)
            .count();
        assert!((50..150).contains(&tops));
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            OutputHeuristic::all().iter().map(|h| h.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
