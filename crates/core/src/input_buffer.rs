//! The input buffer of 2WRS (§4.2).
//!
//! A FIFO window over the upcoming input. Records flow through it in arrival
//! order, and the Mean/Median input heuristics sample its contents to infer
//! the local distribution of the input before deciding which heap a record
//! should join. When the configuration allocates no input buffer the
//! algorithm falls back to a running mean over everything seen so far.

use std::collections::VecDeque;
use twrs_storage::SortableRecord;

/// FIFO buffer of upcoming input records with O(1) mean and an approximate
/// median over its contents.
///
/// The mean and median are computed over the records'
/// [`sort_key`](SortableRecord::sort_key) projections, which is what the
/// Mean/Median input heuristics compare against.
#[derive(Debug, Clone)]
pub struct InputBuffer<R: SortableRecord> {
    queue: VecDeque<R>,
    capacity: usize,
    /// Sum of the keys currently in the buffer (for the Mean heuristic).
    key_sum: u128,
    /// Running statistics over *every* record that passed through, used as a
    /// fallback when the buffer is disabled (capacity 0).
    seen_count: u64,
    seen_sum: u128,
}

impl<R: SortableRecord> InputBuffer<R> {
    /// Creates a buffer holding at most `capacity` records (0 disables it).
    pub fn new(capacity: usize) -> Self {
        InputBuffer {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            key_sum: 0,
            seen_count: 0,
            seen_sum: 0,
        }
    }

    /// Maximum number of records the buffer holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no record is buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// `true` when the buffer is at capacity (always true for a disabled
    /// buffer).
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Pushes a record at the back of the FIFO. Panics if the buffer is
    /// full; callers refill through [`InputBuffer::refill_from`].
    pub fn push(&mut self, record: R) {
        assert!(
            self.queue.len() < self.capacity,
            "input buffer overflow: capacity {}",
            self.capacity
        );
        self.key_sum += u128::from(record.sort_key());
        self.seen_sum += u128::from(record.sort_key());
        self.seen_count += 1;
        self.queue.push_back(record);
    }

    /// Pops the record at the front of the FIFO.
    pub fn pop(&mut self) -> Option<R> {
        let record = self.queue.pop_front()?;
        self.key_sum -= u128::from(record.sort_key());
        Some(record)
    }

    /// Tops the buffer up from `source` and returns the next record in
    /// arrival order: the front of the buffer, or the next source record
    /// directly when the buffer is disabled.
    pub fn next_from(&mut self, source: &mut dyn Iterator<Item = R>) -> Option<R> {
        if self.capacity == 0 {
            let record = source.next();
            if let Some(r) = &record {
                self.seen_sum += u128::from(r.sort_key());
                self.seen_count += 1;
            }
            return record;
        }
        self.refill_from(source);
        self.pop()
    }

    /// Fills the buffer to capacity from `source`.
    pub fn refill_from(&mut self, source: &mut dyn Iterator<Item = R>) {
        while self.queue.len() < self.capacity {
            match source.next() {
                Some(record) => self.push(record),
                None => break,
            }
        }
    }

    /// Mean key of the buffered records; falls back to the running mean of
    /// everything seen when the buffer is empty or disabled. Returns `None`
    /// before any record has been observed.
    pub fn mean_key(&self) -> Option<u64> {
        if !self.queue.is_empty() {
            return Some((self.key_sum / self.queue.len() as u128) as u64);
        }
        if self.seen_count > 0 {
            return Some((self.seen_sum / u128::from(self.seen_count)) as u64);
        }
        None
    }

    /// Approximate median key of the buffered records.
    ///
    /// Exact selection over a large sliding window would cost `O(len)` per
    /// input record, so the median is computed over at most 101 evenly
    /// spaced samples of the window — more than accurate enough for a
    /// heuristic whose only job is to split the key space in two. Falls back
    /// to [`InputBuffer::mean_key`] when the buffer is empty.
    pub fn median_key(&self) -> Option<u64> {
        if self.queue.is_empty() {
            return self.mean_key();
        }
        let len = self.queue.len();
        let samples = len.min(101);
        let mut keys: Vec<u64> = (0..samples)
            .map(|i| self.queue[i * len / samples].sort_key())
            .collect();
        keys.sort_unstable();
        Some(keys[keys.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twrs_workloads::Record;

    fn records(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|k| Record::from_key(*k)).collect()
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut buffer = InputBuffer::new(3);
        let mut source = records(&[1, 2, 3, 4, 5]).into_iter();
        let drained: Vec<u64> = std::iter::from_fn(|| buffer.next_from(&mut source))
            .map(|r| r.key)
            .collect();
        assert_eq!(drained, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn disabled_buffer_is_a_passthrough() {
        let mut buffer = InputBuffer::new(0);
        let mut source = records(&[9, 8, 7]).into_iter();
        assert_eq!(buffer.next_from(&mut source).unwrap().key, 9);
        assert_eq!(buffer.len(), 0);
        // The running mean still observes pass-through records.
        assert_eq!(buffer.mean_key(), Some(9));
    }

    #[test]
    fn mean_tracks_window_contents() {
        let mut buffer = InputBuffer::new(4);
        let mut source = records(&[10, 20, 30, 40, 100]).into_iter();
        buffer.refill_from(&mut source);
        assert_eq!(buffer.mean_key(), Some(25));
        buffer.pop();
        assert_eq!(buffer.mean_key(), Some(30));
        buffer.refill_from(&mut source);
        assert_eq!(buffer.mean_key(), Some((20 + 30 + 40 + 100) / 4));
    }

    #[test]
    fn median_of_small_window_is_exact() {
        let mut buffer = InputBuffer::new(5);
        let mut source = records(&[50, 10, 40, 20, 30]).into_iter();
        buffer.refill_from(&mut source);
        assert_eq!(buffer.median_key(), Some(30));
    }

    #[test]
    fn median_of_large_window_is_close() {
        let n = 10_001u64;
        let mut buffer = InputBuffer::new(n as usize);
        let mut source = (0..n).map(Record::from_key);
        buffer.refill_from(&mut source);
        let median = buffer.median_key().unwrap();
        let expected = n / 2;
        let tolerance = n / 20;
        assert!(
            median.abs_diff(expected) <= tolerance,
            "median {median} too far from {expected}"
        );
    }

    #[test]
    fn empty_buffer_has_no_statistics() {
        let buffer = InputBuffer::<Record>::new(8);
        assert_eq!(buffer.mean_key(), None);
        assert_eq!(buffer.median_key(), None);
    }

    #[test]
    fn mean_falls_back_to_history_when_drained() {
        let mut buffer = InputBuffer::new(2);
        let mut source = records(&[10, 30]).into_iter();
        buffer.refill_from(&mut source);
        buffer.pop();
        buffer.pop();
        assert!(buffer.is_empty());
        assert_eq!(buffer.mean_key(), Some(20));
    }
}
