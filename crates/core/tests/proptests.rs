//! Property-based tests for two-way replacement selection.
//!
//! These check the hard invariants — every generated run is sorted, no
//! record is lost or duplicated, the memory budget is respected — for
//! arbitrary inputs and arbitrary configurations, which is exactly where
//! hand-written examples tend to miss corner cases.

use proptest::prelude::*;
use twrs_core::{
    BufferSetup, InputHeuristic, OutputHeuristic, TwoWayReplacementSelection, TwrsConfig,
};
use twrs_extsort::{RunCursor, RunGenerator};
use twrs_storage::ModelId;
use twrs_storage::{SimDevice, SpillNamer};
use twrs_workloads::Record;

fn heuristic_pair(seed: u64) -> (InputHeuristic, OutputHeuristic) {
    let inputs = InputHeuristic::all();
    let outputs = OutputHeuristic::all();
    (
        inputs[(seed % inputs.len() as u64) as usize],
        outputs[((seed / 7) % outputs.len() as u64) as usize],
    )
}

fn setup_for(seed: u64) -> BufferSetup {
    BufferSetup::all()[(seed % 3) as usize]
}

/// Runs 2WRS over `keys` and returns (per-run record vectors, total).
fn run_twrs(keys: &[u64], memory: usize, config_seed: u64) -> (Vec<Vec<Record>>, u64) {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("prop");
    let (input_h, output_h) = heuristic_pair(config_seed);
    let config = TwrsConfig::recommended(memory)
        .with_heuristics(input_h, output_h)
        .with_buffers(
            setup_for(config_seed),
            [0.002, 0.02, 0.2][(config_seed % 3) as usize],
        )
        .with_seed(config_seed);
    let mut generator = TwoWayReplacementSelection::new(config);
    let mut input = keys
        .iter()
        .enumerate()
        .map(|(i, k)| Record::new(*k, i as u64));
    let set = generator.generate(&device, &namer, &mut input).unwrap();
    let mut runs = Vec::new();
    for handle in &set.runs {
        let mut cursor = RunCursor::open(&device, handle).unwrap();
        runs.push(cursor.read_all().unwrap());
    }
    (runs, set.records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every run is sorted and the union of the runs is exactly the input,
    /// for arbitrary keys, memory budgets, heuristics and buffer setups.
    #[test]
    fn runs_are_sorted_and_complete(
        keys in prop::collection::vec(0u64..1_000_000, 0..2_000),
        memory in 1usize..200,
        config_seed in 0u64..1_000,
    ) {
        let (runs, total) = run_twrs(&keys, memory, config_seed);
        prop_assert_eq!(total as usize, keys.len());
        let mut all = Vec::new();
        for run in &runs {
            prop_assert!(run.windows(2).all(|w| w[0] <= w[1]), "unsorted run");
            all.extend(run.iter().map(|r| r.key));
        }
        let mut expected = keys.clone();
        expected.sort_unstable();
        all.sort_unstable();
        prop_assert_eq!(all, expected);
    }

    /// Runs generated from already-sorted input collapse to a single run
    /// regardless of the configuration (Theorem 2).
    #[test]
    fn sorted_input_always_one_run(
        mut keys in prop::collection::vec(0u64..1_000_000, 2..1_000),
        memory in 2usize..100,
        config_seed in 0u64..1_000,
    ) {
        keys.sort_unstable();
        let (runs, _) = run_twrs(&keys, memory, config_seed);
        prop_assert_eq!(runs.len(), 1);
    }

    /// Runs generated from reverse-sorted input collapse to a single run
    /// regardless of the configuration (Theorem 4).
    #[test]
    fn reverse_sorted_input_always_one_run(
        mut keys in prop::collection::vec(0u64..1_000_000, 2..1_000),
        memory in 2usize..100,
        config_seed in 0u64..1_000,
    ) {
        keys.sort_unstable_by(|a, b| b.cmp(a));
        let (runs, _) = run_twrs(&keys, memory, config_seed);
        prop_assert_eq!(runs.len(), 1);
    }

    /// 2WRS with the recommended configuration never produces more runs than
    /// the Load-Sort-Store bound of ceil(n / memory) (Theorem 7 corollary:
    /// every run is at least a memory's worth except the last).
    #[test]
    fn never_more_runs_than_load_sort_store(
        keys in prop::collection::vec(0u64..1_000_000, 1..2_000),
        memory in 4usize..200,
    ) {
        let (runs, _) = run_twrs(&keys, memory, 0);
        let lss_runs = keys.len().div_ceil(memory);
        // Allow one extra run for the records still in memory when the
        // input ends plus boundary effects of the buffers.
        prop_assert!(
            runs.len() <= lss_runs + 2,
            "2WRS produced {} runs, LSS bound is {}",
            runs.len(),
            lss_runs
        );
    }
}
