//! Design of experiments: the full crossed factorial experiment of §5.2.
//!
//! The paper evaluates 2WRS over four configuration factors (buffer setup,
//! buffer size, input heuristic, output heuristic), executing every
//! combination with several random seeds and recording the number of runs
//! generated. [`paper_factorial_experiment`] reproduces that experiment at a
//! configurable scale and returns a [`FactorialData`] ready for the ANOVA of
//! [`crate::anova`], together with the raw observation list used by the
//! plotting/reporting binaries.

use crate::anova::FactorialData;
use twrs_core::{
    BufferSetup, InputHeuristic, OutputHeuristic, TwoWayReplacementSelection, TwrsConfig,
};
use twrs_extsort::RunGenerator;
use twrs_storage::ModelId;
use twrs_storage::SimDevice;
use twrs_storage::SpillNamer;
use twrs_workloads::{Distribution, DistributionKind};

/// The factor levels of the paper's experiment (Table 5.1).
#[derive(Debug, Clone)]
pub struct PaperFactors {
    /// Levels of the buffer-setup factor (α).
    pub buffer_setups: Vec<BufferSetup>,
    /// Levels of the buffer-size factor (β), as fractions of memory.
    pub buffer_fractions: Vec<f64>,
    /// Levels of the input-heuristic factor (γ).
    pub input_heuristics: Vec<InputHeuristic>,
    /// Levels of the output-heuristic factor (δ).
    pub output_heuristics: Vec<OutputHeuristic>,
    /// Seeds used to replicate every configuration.
    pub seeds: Vec<u64>,
}

impl Default for PaperFactors {
    fn default() -> Self {
        PaperFactors {
            buffer_setups: BufferSetup::all().to_vec(),
            buffer_fractions: vec![0.0002, 0.002, 0.02, 0.2],
            input_heuristics: InputHeuristic::all().to_vec(),
            output_heuristics: OutputHeuristic::all().to_vec(),
            seeds: vec![1, 2, 3, 4, 5],
        }
    }
}

impl PaperFactors {
    /// A reduced factor grid (two levels per factor, two seeds) for quick
    /// tests and laptop-scale sweeps.
    pub fn reduced() -> Self {
        PaperFactors {
            buffer_setups: vec![BufferSetup::Both, BufferSetup::InputOnly],
            buffer_fractions: vec![0.002, 0.02],
            input_heuristics: vec![InputHeuristic::Mean, InputHeuristic::Random],
            output_heuristics: vec![OutputHeuristic::Random, OutputHeuristic::Alternate],
            seeds: vec![1, 2],
        }
    }

    /// Number of configurations (excluding seed replication).
    pub fn configurations(&self) -> usize {
        self.buffer_setups.len()
            * self.buffer_fractions.len()
            * self.input_heuristics.len()
            * self.output_heuristics.len()
    }

    /// Total number of algorithm executions the experiment performs.
    pub fn executions(&self) -> usize {
        self.configurations() * self.seeds.len()
    }
}

/// One observation of the factorial experiment: a configuration, its factor
/// level indices, and the measured number of runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPoint {
    /// Level indices of (buffer setup, buffer size, input heuristic, output
    /// heuristic).
    pub levels: [usize; 4],
    /// The seed used for this replication.
    pub seed: u64,
    /// Number of runs 2WRS generated.
    pub runs: f64,
    /// Average run length relative to the memory size.
    pub relative_run_length: f64,
}

/// Convenience alias describing the factor/level labels of the experiment.
pub type FactorLevels = (Vec<String>, Vec<Vec<String>>);

/// Factor and level names of the paper experiment, for building
/// [`FactorialData`].
pub fn factor_levels(factors: &PaperFactors) -> FactorLevels {
    (
        vec![
            "buffer-setup".into(),
            "buffer-size".into(),
            "input-heuristic".into(),
            "output-heuristic".into(),
        ],
        vec![
            factors
                .buffer_setups
                .iter()
                .map(|s| s.label().to_string())
                .collect(),
            factors
                .buffer_fractions
                .iter()
                .map(|f| format!("{}%", f * 100.0))
                .collect(),
            factors
                .input_heuristics
                .iter()
                .map(|h| h.label().to_string())
                .collect(),
            factors
                .output_heuristics
                .iter()
                .map(|h| h.label().to_string())
                .collect(),
        ],
    )
}

/// Runs the full crossed factorial experiment of §5.2 for one input
/// distribution: every combination of the factor levels is executed once per
/// seed, measuring the number of runs 2WRS generates.
///
/// Returns the populated [`FactorialData`] (response variable: number of
/// runs, as in the paper) and the raw per-execution points.
pub fn paper_factorial_experiment(
    kind: DistributionKind,
    records: u64,
    memory: usize,
    factors: &PaperFactors,
) -> (FactorialData, Vec<ExperimentPoint>) {
    let (factor_names, level_names) = factor_levels(factors);
    let mut data = FactorialData::new(factor_names, level_names);
    let mut points = Vec::with_capacity(factors.executions());

    for (i_setup, setup) in factors.buffer_setups.iter().enumerate() {
        for (i_frac, fraction) in factors.buffer_fractions.iter().enumerate() {
            for (i_in, input_h) in factors.input_heuristics.iter().enumerate() {
                for (i_out, output_h) in factors.output_heuristics.iter().enumerate() {
                    for seed in &factors.seeds {
                        let config = TwrsConfig::recommended(memory)
                            .with_buffers(*setup, *fraction)
                            .with_heuristics(*input_h, *output_h)
                            .with_seed(*seed);
                        let outcome = run_once(kind, records, config, *seed);
                        data.push(vec![i_setup, i_frac, i_in, i_out], outcome.0);
                        points.push(ExperimentPoint {
                            levels: [i_setup, i_frac, i_in, i_out],
                            seed: *seed,
                            runs: outcome.0,
                            relative_run_length: outcome.1,
                        });
                    }
                }
            }
        }
    }
    (data, points)
}

/// Executes 2WRS once and returns (number of runs, relative run length).
fn run_once(kind: DistributionKind, records: u64, config: TwrsConfig, seed: u64) -> (f64, f64) {
    let device = SimDevice::with_model(ModelId::Hdd7200);
    let namer = SpillNamer::new("doe");
    let memory = config.memory_records;
    let mut generator = TwoWayReplacementSelection::new(config);
    // The paper adds the U(1, 1000) jitter exactly so replicated executions
    // differ; the seed controls both the jitter and the Random heuristics.
    let mut input = Distribution::new(kind, records, seed).records();
    let set = generator
        .generate(&device, &namer, &mut input)
        // twrs-lint: allow(no-lib-panic) DOE sweeps run on an in-memory SimDevice; aborting on failure is intended
        .expect("experiment execution must succeed");
    (set.num_runs() as f64, set.relative_run_length(memory))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anova::FactorialAnova;

    #[test]
    fn factor_grid_sizes() {
        let full = PaperFactors::default();
        assert_eq!(full.configurations(), 3 * 4 * 6 * 5);
        assert_eq!(full.executions(), 3 * 4 * 6 * 5 * 5);
        let reduced = PaperFactors::reduced();
        assert_eq!(reduced.configurations(), 16);
        assert_eq!(reduced.executions(), 32);
    }

    #[test]
    fn factor_levels_match_grid() {
        let factors = PaperFactors::default();
        let (names, levels) = factor_levels(&factors);
        assert_eq!(names.len(), 4);
        assert_eq!(levels[0].len(), 3);
        assert_eq!(levels[1].len(), 4);
        assert_eq!(levels[2].len(), 6);
        assert_eq!(levels[3].len(), 5);
    }

    #[test]
    fn reduced_experiment_runs_and_fits() {
        let factors = PaperFactors::reduced();
        let (data, points) =
            paper_factorial_experiment(DistributionKind::RandomUniform, 4_000, 100, &factors);
        assert_eq!(data.len(), factors.executions());
        assert_eq!(points.len(), factors.executions());
        // All executions sorted the same input size, so the relative run
        // length is positive everywhere.
        assert!(points.iter().all(|p| p.relative_run_length > 0.5));
        // The ANOVA machinery accepts the data.
        let table = FactorialAnova::fit(&data, &[vec![0], vec![1], vec![2], vec![3]]);
        assert!(table.total_sum_of_squares >= 0.0);
        assert_eq!(table.terms.len(), 4);
    }

    #[test]
    fn sorted_input_is_configuration_independent() {
        // §5.2.1: with sorted input every configuration produces one run, so
        // the response variance is zero.
        let factors = PaperFactors::reduced();
        let (data, points) =
            paper_factorial_experiment(DistributionKind::Sorted, 2_000, 100, &factors);
        assert!(points.iter().all(|p| p.runs == 1.0));
        let table = FactorialAnova::fit(&data, &[vec![0], vec![1], vec![2], vec![3]]);
        assert!(table.total_sum_of_squares.abs() < 1e-9);
    }
}
