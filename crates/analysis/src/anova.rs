//! Fixed-effects factorial ANOVA (Appendix B).
//!
//! The paper analyses the 2WRS configuration with a full crossed factorial
//! experiment: every combination of buffer setup, buffer size, input
//! heuristic and output heuristic is executed with several random seeds and
//! the number of generated runs is the response variable. The machinery
//! here reproduces that analysis:
//!
//! * [`FactorialData`] — the observations of a (possibly weighted) factorial
//!   experiment;
//! * [`FactorialAnova`] — sums of squares for main effects and
//!   arbitrary-order interactions, F tests, R², the coefficient of
//!   variation, and residual diagnostics, under either ordinary
//!   (minimum-least-squares) or weighted-least-squares estimation
//!   (Appendix B.5);
//! * [`FactorialAnova::tukey`] — pairwise comparison of the levels of one
//!   factor with the studentized-range test used in §5.2.5.
//!
//! The experiments of Chapter 5 are balanced (same number of replicates in
//! every cell), for which the classical decomposition used here is exact.

use crate::stats::distributions::{f_distribution_sf, studentized_range_cdf};
use std::collections::HashMap;

/// One observation of a factorial experiment.
#[derive(Debug, Clone, PartialEq)]
struct Observation {
    levels: Vec<usize>,
    value: f64,
    weight: f64,
}

/// The data of a factorial experiment.
#[derive(Debug, Clone)]
pub struct FactorialData {
    factor_names: Vec<String>,
    level_names: Vec<Vec<String>>,
    observations: Vec<Observation>,
}

impl FactorialData {
    /// Creates an empty dataset with the given factors and their level
    /// names.
    pub fn new(factor_names: Vec<String>, level_names: Vec<Vec<String>>) -> Self {
        assert_eq!(
            factor_names.len(),
            level_names.len(),
            "one level list per factor"
        );
        FactorialData {
            factor_names,
            level_names,
            observations: Vec::new(),
        }
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factor_names.len()
    }

    /// Name of factor `f`.
    pub fn factor_name(&self, f: usize) -> &str {
        &self.factor_names[f]
    }

    /// Names of the levels of factor `f`.
    pub fn levels_of(&self, f: usize) -> &[String] {
        &self.level_names[f]
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// `true` when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Records one observation (weight 1).
    pub fn push(&mut self, levels: Vec<usize>, value: f64) {
        self.push_weighted(levels, value, 1.0);
    }

    /// Records one observation with an explicit WLS weight.
    pub fn push_weighted(&mut self, levels: Vec<usize>, value: f64, weight: f64) {
        assert_eq!(levels.len(), self.num_factors(), "one level per factor");
        for (f, level) in levels.iter().enumerate() {
            assert!(
                *level < self.level_names[f].len(),
                "level {level} out of range for factor {}",
                self.factor_names[f]
            );
        }
        self.observations.push(Observation {
            levels,
            value,
            weight: weight.max(0.0),
        });
    }

    /// Replaces every weight by `1 / variance(level of factor f)` — the WLS
    /// weighting the paper applies when the response variance differs per
    /// level of one factor (§5.2.5: "The WLS weights are defined as
    /// w_i = 1/σ_i²").
    pub fn weight_by_factor_variance(&mut self, factor: usize) {
        let mut groups: HashMap<usize, Vec<f64>> = HashMap::new();
        for obs in &self.observations {
            groups
                .entry(obs.levels[factor])
                .or_default()
                .push(obs.value);
        }
        let variances: HashMap<usize, f64> = groups
            .into_iter()
            .map(|(level, values)| (level, crate::stats::variance(&values)))
            .collect();
        for obs in &mut self.observations {
            let var = variances.get(&obs.levels[factor]).copied().unwrap_or(0.0);
            obs.weight = if var > 0.0 { 1.0 / var } else { 1.0 };
        }
    }

    /// Values grouped by the level of one factor (used for per-level
    /// summaries and plots such as Figure 5.2).
    pub fn values_by_level(&self, factor: usize) -> Vec<Vec<f64>> {
        let mut groups = vec![Vec::new(); self.level_names[factor].len()];
        for obs in &self.observations {
            groups[obs.levels[factor]].push(obs.value);
        }
        groups
    }

    fn weighted_grand_mean(&self) -> f64 {
        let total_weight: f64 = self.observations.iter().map(|o| o.weight).sum();
        if total_weight == 0.0 {
            return 0.0;
        }
        self.observations
            .iter()
            .map(|o| o.weight * o.value)
            .sum::<f64>()
            / total_weight
    }
}

/// Summary of one model term (a main effect or an interaction).
#[derive(Debug, Clone, PartialEq)]
pub struct TermSummary {
    /// Which factors the term involves (indices into the data's factors).
    pub factors: Vec<usize>,
    /// Human-readable name, e.g. `"buffer-size"` or `"input×output"`.
    pub name: String,
    /// Sum of squares attributed to the term.
    pub sum_of_squares: f64,
    /// Degrees of freedom of the term.
    pub degrees_of_freedom: f64,
    /// Mean sum of squares (SS / df).
    pub mean_square: f64,
    /// F statistic against the residual mean square.
    pub f_value: f64,
    /// Significance (p-value) of the F test.
    pub significance: f64,
}

/// The fitted ANOVA model.
#[derive(Debug, Clone)]
pub struct AnovaTable {
    /// Per-term summaries, in the order the terms were requested.
    pub terms: Vec<TermSummary>,
    /// Residual (error) sum of squares.
    pub error_sum_of_squares: f64,
    /// Residual degrees of freedom.
    pub error_degrees_of_freedom: f64,
    /// Residual mean square (the σ̂² of Appendix B.2).
    pub error_mean_square: f64,
    /// Total (corrected) sum of squares.
    pub total_sum_of_squares: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Coefficient of variation, in percent (Appendix B.2).
    pub coefficient_of_variation: f64,
    /// Weighted grand mean of the response.
    pub grand_mean: f64,
}

impl AnovaTable {
    /// Renders the table in the style of the paper's Tables 5.2–5.11.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>14} {:>6} {:>14} {:>12} {:>8}\n",
            "Factor", "SS", "D.F.", "MSS", "F", "Sig."
        ));
        for term in &self.terms {
            out.push_str(&format!(
                "{:<18} {:>14.3} {:>6} {:>14.3} {:>12.3} {:>8.3}\n",
                term.name,
                term.sum_of_squares,
                term.degrees_of_freedom,
                term.mean_square,
                term.f_value,
                term.significance
            ));
        }
        out.push_str(&format!(
            "{:<18} {:>14.3} {:>6} {:>14.3}\n",
            "Error",
            self.error_sum_of_squares,
            self.error_degrees_of_freedom,
            self.error_mean_square
        ));
        out.push_str(&format!(
            "R^2 = {:.3}   sigma = {:.3}   CV = {:.2}%\n",
            self.r_squared,
            self.error_mean_square.sqrt(),
            self.coefficient_of_variation
        ));
        out
    }
}

/// Result of a Tukey pairwise comparison between two levels of a factor.
#[derive(Debug, Clone, PartialEq)]
pub struct TukeyComparison {
    /// First level index.
    pub level_a: usize,
    /// Second level index.
    pub level_b: usize,
    /// Difference of the level means (`mean_a - mean_b`).
    pub mean_difference: f64,
    /// Studentized range statistic.
    pub q_statistic: f64,
    /// Significance of the comparison (p-value of the studentized-range
    /// test).
    pub significance: f64,
}

/// Fixed-effects factorial ANOVA fitter.
#[derive(Debug, Clone, Default)]
pub struct FactorialAnova;

impl FactorialAnova {
    /// Fits the model containing the given terms. Each term is the set of
    /// factor indices it involves: `vec![0]` is the main effect of factor 0,
    /// `vec![0, 2]` the first-order interaction of factors 0 and 2, and so
    /// on.
    pub fn fit(data: &FactorialData, terms: &[Vec<usize>]) -> AnovaTable {
        assert!(!data.is_empty(), "cannot fit an ANOVA without observations");
        let grand_mean = data.weighted_grand_mean();
        let total_weight: f64 = data.observations.iter().map(|o| o.weight).sum();
        let total_ss: f64 = data
            .observations
            .iter()
            .map(|o| o.weight * (o.value - grand_mean).powi(2))
            .sum();
        let n = data.len() as f64;
        let _ = total_weight;

        // Effects are computed for the closure of the requested terms under
        // subset (the standard recursive definition of interaction
        // effects needs every sub-term).
        let mut closure: Vec<Vec<usize>> = Vec::new();
        for term in terms {
            let mut sorted = term.clone();
            sorted.sort_unstable();
            sorted.dedup();
            for subset in non_empty_subsets(&sorted) {
                if !closure.contains(&subset) {
                    closure.push(subset);
                }
            }
        }
        closure.sort_by_key(Vec::len);

        // effect[term] maps a level combination (restricted to the term's
        // factors) to its effect estimate.
        let mut effects: HashMap<Vec<usize>, HashMap<Vec<usize>, f64>> = HashMap::new();
        for term in &closure {
            let mut sums: HashMap<Vec<usize>, (f64, f64)> = HashMap::new();
            for obs in &data.observations {
                let key: Vec<usize> = term.iter().map(|f| obs.levels[*f]).collect();
                let entry = sums.entry(key).or_insert((0.0, 0.0));
                entry.0 += obs.weight * obs.value;
                entry.1 += obs.weight;
            }
            let mut term_effects = HashMap::new();
            for (key, (weighted_sum, weight)) in sums {
                let cell_mean = if weight > 0.0 {
                    weighted_sum / weight
                } else {
                    0.0
                };
                // Subtract the grand mean and every lower-order effect.
                let mut effect = cell_mean - grand_mean;
                for subset in non_empty_subsets(term) {
                    if subset == *term {
                        continue;
                    }
                    let sub_key: Vec<usize> = subset
                        .iter()
                        .filter_map(|f| term.iter().position(|t| t == f).map(|i| key[i]))
                        .collect();
                    if let Some(sub_effects) = effects.get(&subset) {
                        effect -= sub_effects.get(&sub_key).copied().unwrap_or(0.0);
                    }
                }
                term_effects.insert(key, effect);
            }
            effects.insert(term.clone(), term_effects);
        }

        // Sums of squares per requested term.
        let mut summaries = Vec::new();
        let mut model_ss = 0.0;
        let mut model_df = 0.0;
        for term in terms {
            let mut sorted = term.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let term_effects = &effects[&sorted];
            let ss: f64 = data
                .observations
                .iter()
                .map(|obs| {
                    let key: Vec<usize> = sorted.iter().map(|f| obs.levels[*f]).collect();
                    let effect = term_effects.get(&key).copied().unwrap_or(0.0);
                    obs.weight * effect * effect
                })
                .sum();
            let df: f64 = sorted
                .iter()
                .map(|f| (data.levels_of(*f).len().max(1) - 1) as f64)
                .product();
            model_ss += ss;
            model_df += df;
            summaries.push((sorted, ss, df));
        }

        let error_ss = (total_ss - model_ss).max(0.0);
        let error_df = (n - 1.0 - model_df).max(1.0);
        let error_ms = error_ss / error_df;

        let terms: Vec<TermSummary> = summaries
            .into_iter()
            .map(|(factors, ss, df)| {
                let ms = if df > 0.0 { ss / df } else { 0.0 };
                let f_value = if error_ms > 0.0 {
                    ms / error_ms
                } else {
                    f64::INFINITY
                };
                let significance = f_distribution_sf(f_value, df, error_df);
                let name = factors
                    .iter()
                    .map(|f| data.factor_name(*f).to_string())
                    .collect::<Vec<_>>()
                    .join("×");
                TermSummary {
                    factors,
                    name,
                    sum_of_squares: ss,
                    degrees_of_freedom: df,
                    mean_square: ms,
                    f_value,
                    significance,
                }
            })
            .collect();

        let r_squared = if total_ss > 0.0 {
            1.0 - error_ss / total_ss
        } else {
            1.0
        };
        let coefficient_of_variation = if grand_mean.abs() > f64::EPSILON {
            100.0 * error_ms.sqrt() / grand_mean.abs()
        } else {
            0.0
        };

        AnovaTable {
            terms,
            error_sum_of_squares: error_ss,
            error_degrees_of_freedom: error_df,
            error_mean_square: error_ms,
            total_sum_of_squares: total_ss,
            r_squared,
            coefficient_of_variation,
            grand_mean,
        }
    }

    /// Tukey pairwise comparisons of the levels of `factor`, using the
    /// residual mean square of a previously fitted model.
    pub fn tukey(data: &FactorialData, factor: usize, table: &AnovaTable) -> Vec<TukeyComparison> {
        let groups = data.values_by_level(factor);
        let k = groups.iter().filter(|g| !g.is_empty()).count();
        let mut comparisons = Vec::new();
        for a in 0..groups.len() {
            for b in (a + 1)..groups.len() {
                if groups[a].is_empty() || groups[b].is_empty() {
                    continue;
                }
                let mean_a = crate::stats::mean(&groups[a]);
                let mean_b = crate::stats::mean(&groups[b]);
                let n_a = groups[a].len() as f64;
                let n_b = groups[b].len() as f64;
                let standard_error =
                    (table.error_mean_square / 2.0 * (1.0 / n_a + 1.0 / n_b)).sqrt();
                let q = if standard_error > 0.0 {
                    (mean_a - mean_b).abs() / standard_error
                } else if mean_a == mean_b {
                    0.0
                } else {
                    f64::INFINITY
                };
                let significance = 1.0 - studentized_range_cdf(q, k.max(2));
                comparisons.push(TukeyComparison {
                    level_a: a,
                    level_b: b,
                    mean_difference: mean_a - mean_b,
                    q_statistic: q,
                    significance,
                });
            }
        }
        comparisons
    }
}

/// Every non-empty subset of `set` (which must be sorted and deduplicated).
fn non_empty_subsets(set: &[usize]) -> Vec<Vec<usize>> {
    let mut subsets = Vec::new();
    let n = set.len();
    for mask in 1u32..(1 << n) {
        let subset: Vec<usize> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| set[i])
            .collect();
        subsets.push(subset);
    }
    subsets
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a 2×3 balanced factorial with additive effects and no noise:
    /// y = 10 + a_i + b_j with a = [-2, 2], b = [-3, 0, 3], 2 replicates.
    fn additive_two_by_three() -> FactorialData {
        let mut data = FactorialData::new(
            vec!["A".into(), "B".into()],
            vec![
                vec!["a0".into(), "a1".into()],
                vec!["b0".into(), "b1".into(), "b2".into()],
            ],
        );
        let a = [-2.0, 2.0];
        let b = [-3.0, 0.0, 3.0];
        for (i, ai) in a.iter().enumerate() {
            for (j, bj) in b.iter().enumerate() {
                for _ in 0..2 {
                    data.push(vec![i, j], 10.0 + ai + bj);
                }
            }
        }
        data
    }

    #[test]
    fn additive_model_is_fully_explained() {
        let data = additive_two_by_three();
        let table = FactorialAnova::fit(&data, &[vec![0], vec![1], vec![0, 1]]);
        // SS_A = N_per_level_sum: each a_i appears 6 times → 6*(4+4) = 48.
        assert!((table.terms[0].sum_of_squares - 48.0).abs() < 1e-9);
        // SS_B = 4 * (9 + 0 + 9) = 72.
        assert!((table.terms[1].sum_of_squares - 72.0).abs() < 1e-9);
        // Purely additive: the interaction SS is zero.
        assert!(table.terms[2].sum_of_squares.abs() < 1e-9);
        // And the model explains everything.
        assert!(table.error_sum_of_squares.abs() < 1e-9);
        assert!((table.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(table.terms[0].degrees_of_freedom, 1.0);
        assert_eq!(table.terms[1].degrees_of_freedom, 2.0);
        assert_eq!(table.terms[2].degrees_of_freedom, 2.0);
    }

    #[test]
    fn interaction_is_detected() {
        // y = 10 + 5 * [i == j] for a 2×2 design: pure interaction.
        let mut data = FactorialData::new(
            vec!["A".into(), "B".into()],
            vec![vec!["0".into(), "1".into()], vec!["0".into(), "1".into()]],
        );
        for i in 0..2 {
            for j in 0..2 {
                for r in 0..3 {
                    let noise = (r as f64 - 1.0) * 0.01;
                    let value = 10.0 + if i == j { 5.0 } else { 0.0 } + noise;
                    data.push(vec![i, j], value);
                }
            }
        }
        let table = FactorialAnova::fit(&data, &[vec![0], vec![1], vec![0, 1]]);
        let main_a = &table.terms[0];
        let interaction = &table.terms[2];
        assert!(main_a.sum_of_squares < 1e-6);
        assert!(interaction.sum_of_squares > 70.0);
        assert!(interaction.significance < 0.001);
        assert!(main_a.significance > 0.5);
    }

    #[test]
    fn noise_only_data_has_insignificant_factors() {
        let mut data = FactorialData::new(
            vec!["A".into()],
            vec![vec!["0".into(), "1".into(), "2".into()]],
        );
        // A fixed pseudo-random sequence with no factor effect.
        let noise = [
            0.12, -0.7, 0.43, 0.9, -0.55, 0.31, -0.2, 0.05, -0.83, 0.64, 0.27, -0.44,
        ];
        for (i, n) in noise.iter().enumerate() {
            data.push(vec![i % 3], 5.0 + n);
        }
        let table = FactorialAnova::fit(&data, &[vec![0]]);
        assert!(table.terms[0].significance > 0.05);
        assert!(table.r_squared < 0.5);
    }

    #[test]
    fn one_way_anova_matches_hand_computation() {
        // Three groups with obvious separation.
        let mut data = FactorialData::new(
            vec!["group".into()],
            vec![vec!["g0".into(), "g1".into(), "g2".into()]],
        );
        let groups = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]];
        for (g, values) in groups.iter().enumerate() {
            for v in values {
                data.push(vec![g], *v);
            }
        }
        let table = FactorialAnova::fit(&data, &[vec![0]]);
        // Grand mean 5; SS_between = 3*((2-5)^2 + 0 + (8-5)^2) = 54;
        // SS_within = 3 * 2 = 6; F = (54/2) / (6/6) = 27.
        assert!((table.grand_mean - 5.0).abs() < 1e-12);
        assert!((table.terms[0].sum_of_squares - 54.0).abs() < 1e-9);
        assert!((table.error_sum_of_squares - 6.0).abs() < 1e-9);
        assert!((table.terms[0].f_value - 27.0).abs() < 1e-9);
        assert!(table.terms[0].significance < 0.01);
    }

    #[test]
    fn weights_shift_the_grand_mean() {
        let mut data = FactorialData::new(vec!["A".into()], vec![vec!["0".into(), "1".into()]]);
        data.push_weighted(vec![0], 10.0, 1.0);
        data.push_weighted(vec![1], 20.0, 3.0);
        let table = FactorialAnova::fit(&data, &[vec![0]]);
        assert!((table.grand_mean - 17.5).abs() < 1e-12);
    }

    #[test]
    fn weight_by_factor_variance_downweights_noisy_levels() {
        let mut data =
            FactorialData::new(vec!["A".into()], vec![vec!["quiet".into(), "noisy".into()]]);
        for v in [10.0, 10.1, 9.9, 10.05] {
            data.push(vec![0], v);
        }
        for v in [50.0, 10.0, 90.0, 30.0] {
            data.push(vec![1], v);
        }
        data.weight_by_factor_variance(0);
        let quiet_weight = data.observations[0].weight;
        let noisy_weight = data.observations[4].weight;
        assert!(quiet_weight > noisy_weight * 10.0);
    }

    #[test]
    fn tukey_separates_different_levels_only() {
        let mut data = FactorialData::new(
            vec!["A".into()],
            vec![vec!["low".into(), "also-low".into(), "high".into()]],
        );
        for r in 0..10 {
            let jitter = (r as f64) * 0.01;
            data.push(vec![0], 10.0 + jitter);
            data.push(vec![1], 10.02 + jitter);
            data.push(vec![2], 20.0 + jitter);
        }
        let table = FactorialAnova::fit(&data, &[vec![0]]);
        let comparisons = FactorialAnova::tukey(&data, 0, &table);
        assert_eq!(comparisons.len(), 3);
        let low_vs_also_low = &comparisons[0];
        let low_vs_high = &comparisons[1];
        assert!(low_vs_also_low.significance > 0.05);
        assert!(low_vs_high.significance < 0.01);
    }

    #[test]
    fn table_renders_as_text() {
        let data = additive_two_by_three();
        let table = FactorialAnova::fit(&data, &[vec![0], vec![1]]);
        let text = table.to_text();
        assert!(text.contains("Factor"));
        assert!(text.contains('A'));
        assert!(text.contains("R^2"));
    }

    #[test]
    #[should_panic(expected = "cannot fit an ANOVA without observations")]
    fn empty_data_panics() {
        let data = FactorialData::new(vec!["A".into()], vec![vec!["0".into()]]);
        FactorialAnova::fit(&data, &[vec![0]]);
    }
}
