//! Closed-form run-length results (§3.5 and §5.1, Theorems 1–7).
//!
//! These are the paper's analytical expectations for the average run length
//! of classic replacement selection and of 2WRS on the six evaluation
//! inputs, expressed relative to the memory size (the metric of
//! Table 5.13). They serve as oracles for the integration tests and as the
//! "paper" column printed by the run-length experiment binary.

use twrs_workloads::DistributionKind;

/// An analytical expectation for a relative run length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expectation {
    /// The algorithm produces a single run containing the whole input
    /// (reported as `inf` in Table 5.13).
    SingleRun,
    /// The average run length is (approximately) this multiple of the
    /// memory size.
    RelativeToMemory(f64),
    /// The average run length is (approximately) this multiple of the
    /// *input* size (used for the mixed datasets, where the paper reports
    /// two runs regardless of the memory size).
    FractionOfInput(f64),
}

impl Expectation {
    /// Converts the expectation into a relative-to-memory figure for a
    /// concrete input size and memory budget, so it can be compared with a
    /// measured value.
    pub fn relative_run_length(&self, records: u64, memory: usize) -> f64 {
        match self {
            Expectation::SingleRun => records as f64 / memory as f64,
            Expectation::RelativeToMemory(x) => *x,
            Expectation::FractionOfInput(fraction) => records as f64 * fraction / memory as f64,
        }
    }

    /// Formats the expectation the way Table 5.13 does (`inf`, a multiple of
    /// memory, or a multiple derived from the input size).
    pub fn label(&self, records: u64, memory: usize) -> String {
        match self {
            Expectation::SingleRun => "inf (1 run)".to_string(),
            Expectation::RelativeToMemory(x) => format!("{x:.2}"),
            Expectation::FractionOfInput(fraction) => {
                format!("{:.1}", records as f64 * fraction / memory as f64)
            }
        }
    }
}

/// Expected relative run length of classic replacement selection
/// (Theorems 1, 3, 5 and the snowplow result of §3.5).
pub fn rs_expected_relative_run_length(
    kind: DistributionKind,
    records: u64,
    memory: usize,
) -> Expectation {
    match kind {
        // Theorem 1: a single run.
        DistributionKind::Sorted => Expectation::SingleRun,
        // Theorem 3: runs of exactly the memory size.
        DistributionKind::ReverseSorted => Expectation::RelativeToMemory(1.0),
        // Theorem 5: about twice the memory when the sections are much
        // longer than the memory (1.94 measured in §5.2.3).
        DistributionKind::Alternating { sections } => {
            let section_len = records / u64::from(sections.max(1));
            Expectation::RelativeToMemory(
                theorem_5_average(section_len, memory as u64) / memory as f64,
            )
        }
        // §3.5 snowplow argument: twice the memory.
        DistributionKind::RandomUniform => Expectation::RelativeToMemory(2.0),
        // §5.2.5/§5.2.6: RS sees the mixed datasets as unpredictable and
        // stays at about twice the memory.
        DistributionKind::MixedBalanced | DistributionKind::MixedImbalanced { .. } => {
            Expectation::RelativeToMemory(2.0)
        }
        // Displacement bounded by the memory size is absorbed entirely by
        // the selection heap (the snowplow never runs dry), so the input
        // behaves like sorted input; beyond the bound it degrades towards
        // random input.
        DistributionKind::AlmostSorted { max_displacement } => {
            if max_displacement as usize <= memory {
                Expectation::SingleRun
            } else {
                Expectation::RelativeToMemory(2.0)
            }
        }
        // Low cardinality does not help RS: arrival order is still random,
        // so the snowplow argument gives twice the memory.
        DistributionKind::DuplicateHeavy { .. } => Expectation::RelativeToMemory(2.0),
    }
}

/// Expected relative run length of 2WRS with a good configuration
/// (Theorems 2, 4, 6 and the Chapter 5 statistical results).
pub fn twrs_expected_relative_run_length(
    kind: DistributionKind,
    records: u64,
    memory: usize,
) -> Expectation {
    let _ = records;
    match kind {
        // Theorem 2.
        DistributionKind::Sorted => Expectation::SingleRun,
        // Theorem 4 — the headline improvement over RS.
        DistributionKind::ReverseSorted => Expectation::SingleRun,
        // Theorem 6: one run per monotone section.
        DistributionKind::Alternating { sections } => {
            Expectation::FractionOfInput(1.0 / f64::from(sections.max(1)))
        }
        // §5.2.4: same as RS.
        DistributionKind::RandomUniform => Expectation::RelativeToMemory(2.0),
        // Table 5.13: two runs for the mixed datasets (125 × memory for the
        // paper's 25 M records / 100 K memory setting).
        DistributionKind::MixedBalanced | DistributionKind::MixedImbalanced { .. } => {
            Expectation::FractionOfInput(0.5)
        }
        // 2WRS is never worse than RS on nearly-sorted input: the ascending
        // heap alone absorbs the bounded displacement.
        DistributionKind::AlmostSorted { max_displacement } => {
            if max_displacement as usize <= memory {
                Expectation::SingleRun
            } else {
                Expectation::RelativeToMemory(2.0)
            }
        }
        // §5.2.4 carries over: random arrival order, twice the memory.
        DistributionKind::DuplicateHeavy { .. } => Expectation::RelativeToMemory(2.0),
    }
}

/// Expected relative run length of Load-Sort-Store, which fills memory,
/// sorts it and stores it: runs of exactly the memory size regardless of
/// the input distribution (§2.1.1) — a single run only when the whole input
/// fits in memory.
pub fn lss_expected_relative_run_length(
    _kind: DistributionKind,
    records: u64,
    memory: usize,
) -> Expectation {
    if records as usize <= memory {
        Expectation::SingleRun
    } else {
        Expectation::RelativeToMemory(1.0)
    }
}

/// Dispatches the analytical run-length expectation by the generator label
/// reported by the sorting pipeline (`"RS"`, `"LSS"`, `"2WRS"`); `None` for
/// generators without a closed-form expectation.
pub fn expected_relative_run_length(
    generator: &str,
    kind: DistributionKind,
    records: u64,
    memory: usize,
) -> Option<Expectation> {
    match generator {
        "RS" => Some(rs_expected_relative_run_length(kind, records, memory)),
        "LSS" => Some(lss_expected_relative_run_length(kind, records, memory)),
        "2WRS" => Some(twrs_expected_relative_run_length(kind, records, memory)),
        _ => None,
    }
}

/// Theorem 5's exact average run length (in records) for alternating input
/// with sections of `section_len` records and memory `memory`:
/// `2k / (1 + floor(k/m - 1/2))`.
pub fn theorem_5_average(section_len: u64, memory: u64) -> f64 {
    if memory == 0 || section_len == 0 {
        return 0.0;
    }
    let k = section_len as f64;
    let m = memory as f64;
    let denominator = 1.0 + (k / m - 0.5).floor().max(0.0);
    2.0 * k / denominator
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_5_limit_is_twice_memory() {
        // For k >> m the average tends to 2m.
        let avg = theorem_5_average(1_000_000, 1_000);
        assert!((avg / 1_000.0 - 2.0).abs() < 0.01);
        // And the maximum stated in the proof is 2m exactly when k is a
        // multiple of m.
        let avg = theorem_5_average(100_000, 100);
        assert!((avg - 200.0).abs() < 0.5);
    }

    #[test]
    fn theorem_5_degenerate_cases() {
        assert_eq!(theorem_5_average(0, 100), 0.0);
        assert_eq!(theorem_5_average(100, 0), 0.0);
        // Sections shorter than memory: a single "merge" of consecutive
        // sections, at least 2k.
        assert!(theorem_5_average(50, 100) >= 100.0);
    }

    #[test]
    fn expectations_match_table_5_13_shape() {
        let records = 25_000_000u64;
        let memory = 100_000usize;
        // RS row of Table 5.13.
        assert_eq!(
            rs_expected_relative_run_length(DistributionKind::ReverseSorted, records, memory),
            Expectation::RelativeToMemory(1.0)
        );
        let rs_alt = rs_expected_relative_run_length(
            DistributionKind::Alternating { sections: 50 },
            records,
            memory,
        );
        match rs_alt {
            Expectation::RelativeToMemory(x) => assert!((1.8..2.1).contains(&x)),
            _ => panic!("alternating RS expectation should be relative to memory"),
        }
        // 2WRS row: mixed = 125 × memory for the paper's sizes.
        let twrs_mixed =
            twrs_expected_relative_run_length(DistributionKind::MixedBalanced, records, memory);
        assert!((twrs_mixed.relative_run_length(records, memory) - 125.0).abs() < 1e-9);
        // 2WRS alternating = 50 runs → 5 × memory for the paper's sizes.
        let twrs_alt = twrs_expected_relative_run_length(
            DistributionKind::Alternating { sections: 50 },
            records,
            memory,
        );
        assert!((twrs_alt.relative_run_length(records, memory) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn almost_sorted_expectation_switches_on_the_memory_bound() {
        let kind = DistributionKind::AlmostSorted {
            max_displacement: 100,
        };
        assert_eq!(
            rs_expected_relative_run_length(kind, 10_000, 200),
            Expectation::SingleRun
        );
        assert_eq!(
            rs_expected_relative_run_length(kind, 10_000, 50),
            Expectation::RelativeToMemory(2.0)
        );
        assert_eq!(
            twrs_expected_relative_run_length(kind, 10_000, 200),
            Expectation::SingleRun
        );
    }

    #[test]
    fn lss_runs_are_exactly_the_memory_size() {
        let kind = DistributionKind::RandomUniform;
        assert_eq!(
            lss_expected_relative_run_length(kind, 10_000, 500),
            Expectation::RelativeToMemory(1.0)
        );
        assert_eq!(
            lss_expected_relative_run_length(kind, 400, 500),
            Expectation::SingleRun
        );
    }

    #[test]
    fn dispatcher_matches_pipeline_labels() {
        let kind = DistributionKind::DuplicateHeavy { distinct: 16 };
        assert_eq!(
            expected_relative_run_length("RS", kind, 10_000, 500),
            Some(Expectation::RelativeToMemory(2.0))
        );
        assert_eq!(
            expected_relative_run_length("LSS", kind, 10_000, 500),
            Some(Expectation::RelativeToMemory(1.0))
        );
        assert_eq!(
            expected_relative_run_length("2WRS", kind, 10_000, 500),
            Some(Expectation::RelativeToMemory(2.0))
        );
        assert_eq!(expected_relative_run_length("DS", kind, 10_000, 500), None);
    }

    #[test]
    fn labels_are_table_like() {
        assert_eq!(
            twrs_expected_relative_run_length(DistributionKind::Sorted, 1_000, 10).label(1_000, 10),
            "inf (1 run)"
        );
        assert_eq!(
            rs_expected_relative_run_length(DistributionKind::RandomUniform, 1_000, 10)
                .label(1_000, 10),
            "2.00"
        );
    }
}
