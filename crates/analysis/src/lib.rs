//! Analytical and statistical toolkit for the 2WRS evaluation.
//!
//! The paper supports its claims with three kinds of analysis, all
//! reproduced by this crate:
//!
//! * **Statistical models (Chapter 5, Appendix B)** — a full crossed
//!   factorial experiment over the 2WRS configuration factors analysed with
//!   fixed-effects ANOVA: sums of squares with arbitrary-order interaction
//!   terms, F significance tests, R² and coefficient-of-variation model
//!   quality measures, weighted-least-squares refits when homoscedasticity
//!   fails and Tukey-style pairwise comparisons of factor levels
//!   ([`anova`], [`stats`], [`doe`]).
//! * **A continuous model of replacement selection (§3.6)** — the snowplow
//!   system of differential equations for the memory-content density
//!   `m(x, t)` and output position `p(t)`, integrated numerically to show
//!   convergence to the stable `2 − 2x` profile and the 2×-memory run
//!   length ([`model`]).
//! * **Closed-form results (§3.5, §5.1)** — the expected run lengths of RS
//!   and 2WRS on the structured inputs (Theorems 1–7), used as oracles by
//!   the test-suite and by the experiment harness ([`theory`]).

#![warn(missing_docs)]

pub mod anova;
pub mod doe;
pub mod model;
pub mod stats;
pub mod theory;

pub use anova::{AnovaTable, FactorialAnova, FactorialData, TermSummary, TukeyComparison};
pub use doe::{paper_factorial_experiment, ExperimentPoint, FactorLevels, PaperFactors};
pub use model::{SnowplowModel, SnowplowSnapshot};
pub use theory::{
    expected_relative_run_length, lss_expected_relative_run_length,
    rs_expected_relative_run_length, twrs_expected_relative_run_length, Expectation,
};
