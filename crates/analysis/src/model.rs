//! The continuous "snowplow" model of replacement selection (§3.6).
//!
//! The paper models the memory contents of RS as a density `m(x, t)` over
//! the key space `[0, 1)` and the value currently being output as a
//! position `p(t)`:
//!
//! * `dp/dt = k₁ / m(p(t) mod 1, t)` — output advances slower where memory
//!   is denser (Equation 3.2);
//! * `∂m/∂t = (k₁/k₂) · data(x)` — new input raises the density following
//!   the input distribution (Equation 3.5);
//! * the density is cleared at the output position (Equation 3.4);
//! * `∫ m dx ≤ 1` — memory is bounded (Equation 3.1).
//!
//! For uniform input the stable solution has density `2 − 2x` ahead of the
//! plough and run length 2 (twice the memory); §3.6.1 verifies it and
//! Figure 3.8 shows numerically that an initially uniform density converges
//! to it within a few runs. [`SnowplowModel`] reproduces that numerical
//! experiment on a discretised density with a fourth-order Runge–Kutta
//! integrator for the plough position.

/// A snapshot of the density at the end of a run (one curve of Figure 3.8).
#[derive(Debug, Clone)]
pub struct SnowplowSnapshot {
    /// Index of the run that just completed (0 = state before the first
    /// run).
    pub run: usize,
    /// Length of the completed run relative to the memory size (undefined —
    /// 0 — for the initial snapshot).
    pub run_length: f64,
    /// The density `m(x)` sampled at the centre of each grid cell.
    pub density: Vec<f64>,
}

/// Numerical integration of the replacement-selection model.
#[derive(Debug, Clone)]
pub struct SnowplowModel {
    /// Number of grid cells discretising the key space `[0, 1)`.
    cells: usize,
    /// Input density `data(x)` sampled per cell (uniform input = all ones).
    data: Vec<f64>,
    /// Throughput constant k₁ (records output per unit time).
    k1: f64,
}

impl SnowplowModel {
    /// Creates the model for uniformly distributed input.
    pub fn uniform(cells: usize) -> Self {
        SnowplowModel {
            cells: cells.max(8),
            data: vec![1.0; cells.max(8)],
            k1: 1.0,
        }
    }

    /// Creates the model for an arbitrary input density; `data` is sampled
    /// per cell and normalised so that `∫ data dx = 1` (the paper's k₂).
    pub fn with_input_density(data: Vec<f64>) -> Self {
        let cells = data.len().max(8);
        let mut data = if data.len() < 8 { vec![1.0; 8] } else { data };
        let sum: f64 = data.iter().sum();
        if sum > 0.0 {
            let scale = cells as f64 / sum;
            for v in &mut data {
                *v *= scale;
            }
        }
        SnowplowModel {
            cells,
            data,
            k1: 1.0,
        }
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Simulates `runs` runs starting from the initial density `m(x, 0) = 1`
    /// (memory filled with uniformly distributed data, as in Figure 3.8) and
    /// returns one snapshot per completed run plus the initial state.
    pub fn simulate(&self, runs: usize) -> Vec<SnowplowSnapshot> {
        self.simulate_from(vec![1.0; self.cells], runs)
    }

    /// Simulates `runs` runs starting from an arbitrary initial density.
    pub fn simulate_from(&self, initial: Vec<f64>, runs: usize) -> Vec<SnowplowSnapshot> {
        let cells = self.cells;
        let dx = 1.0 / cells as f64;
        let mut density = initial;
        density.resize(cells, 0.0);
        // Normalise the initial memory contents to exactly fill the memory.
        let total: f64 = density.iter().sum::<f64>() * dx;
        if total > 0.0 {
            for v in &mut density {
                *v /= total;
            }
        }

        let mut snapshots = vec![SnowplowSnapshot {
            run: 0,
            run_length: 0.0,
            density: density.clone(),
        }];

        // Time step: small enough that the plough crosses a cell in several
        // steps even at its fastest.
        let dt = dx / (self.k1 * 8.0);
        let mut position = 0.0f64; // p(t) mod 1
        for run in 1..=runs {
            let mut swept = 0.0f64;
            loop {
                // Runge–Kutta 4 on dp/dt = k1 / m(p) with the density frozen
                // over the step (the density varies slowly compared with dt).
                let f = |p: f64, density: &[f64]| -> f64 {
                    let cell = ((p % 1.0) * cells as f64) as usize % cells;
                    let m = density[cell].max(1e-9);
                    self.k1 / m
                };
                let k1 = f(position, &density);
                let k2 = f(position + 0.5 * dt * k1, &density);
                let k3 = f(position + 0.5 * dt * k2, &density);
                let k4 = f(position + dt * k3, &density);
                let advance = dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
                let end_position = position + advance;

                // Sweep every cell whose far edge the plough has now passed:
                // its mass is output of the current run (the path integral of
                // §3.6.1) and the cell is cleared (Equation 3.4). Working at
                // cell granularity keeps the removal exact for the density
                // that was in front of the plough.
                let first_cell = (position * cells as f64) as usize;
                let passed_cells = (end_position * cells as f64).floor() as usize;
                for cell_density in density
                    .iter_mut()
                    .take(passed_cells.min(cells))
                    .skip(first_cell)
                {
                    swept += *cell_density * dx;
                    *cell_density = 0.0;
                }

                // Refill from the input at rate k1/k2 · data(x): the total
                // inflow per unit time equals the throughput, keeping the
                // memory full (Equation 3.8).
                let inflow = self.k1 * dt;
                for (cell, value) in density.iter_mut().enumerate() {
                    *value += inflow * self.data[cell];
                }

                position = end_position;
                if position >= 1.0 {
                    position -= 1.0;
                    break;
                }
            }
            snapshots.push(SnowplowSnapshot {
                run,
                run_length: swept,
                density: density.clone(),
            });
        }
        snapshots
    }

    /// The stable density profile in front of the plough for uniform input,
    /// `m(x) = 2 − 2x` (§3.6.1), sampled at the cell centres relative to the
    /// plough position 0.
    pub fn stable_profile(&self) -> Vec<f64> {
        (0..self.cells)
            .map(|i| {
                let x = (i as f64 + 0.5) / self.cells as f64;
                2.0 - 2.0 * x
            })
            .collect()
    }
}

/// Root-mean-square difference between two densities (used to measure
/// convergence to the stable profile).
pub fn density_rms_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_input_converges_to_the_stable_profile() {
        // Figure 3.8: starting from m(x, 0) = 1 the density approaches
        // 2 − 2x within two or three runs.
        let model = SnowplowModel::uniform(256);
        let snapshots = model.simulate(4);
        let stable = model.stable_profile();
        let initial_distance = density_rms_distance(&snapshots[0].density, &stable);
        let final_distance = density_rms_distance(&snapshots[4].density, &stable);
        assert!(
            final_distance < initial_distance / 3.0,
            "density did not converge: initial {initial_distance}, final {final_distance}"
        );
        assert!(final_distance < 0.2, "final distance {final_distance}");
    }

    #[test]
    fn run_length_approaches_twice_the_memory() {
        // §3.5/§3.6.1: the stable run length for uniform input is 2×memory.
        let model = SnowplowModel::uniform(256);
        let snapshots = model.simulate(6);
        let last = snapshots.last().unwrap();
        assert!(
            (1.7..2.3).contains(&last.run_length),
            "run length {} not close to 2",
            last.run_length
        );
        // The first run starts from a uniform density and is shorter.
        assert!(snapshots[1].run_length < last.run_length);
    }

    #[test]
    fn memory_stays_bounded() {
        // Equation 3.1: ∫ m dx stays at (or below) the available memory.
        let model = SnowplowModel::uniform(128);
        let snapshots = model.simulate(5);
        for snapshot in &snapshots {
            let integral: f64 =
                snapshot.density.iter().sum::<f64>() / snapshot.density.len() as f64;
            assert!(integral < 1.3, "memory overflowed: {integral}");
            assert!(integral > 0.5, "memory drained: {integral}");
        }
    }

    #[test]
    fn starting_at_the_stable_profile_stays_there() {
        let model = SnowplowModel::uniform(256);
        let stable_start: Vec<f64> = (0..256)
            .map(|i| 2.0 - 2.0 * ((i as f64 + 0.5) / 256.0))
            .collect();
        let snapshots = model.simulate_from(stable_start, 3);
        let stable = model.stable_profile();
        for snapshot in snapshots.iter().skip(1) {
            let d = density_rms_distance(&snapshot.density, &stable);
            assert!(
                d < 0.15,
                "run {} drifted from the stable profile by {d}",
                snapshot.run
            );
            assert!((1.7..2.3).contains(&snapshot.run_length));
        }
    }

    #[test]
    fn skewed_input_density_changes_run_length() {
        // With input concentrated near 0 the plough crawls through the dense
        // region: the model still runs and memory stays bounded.
        let data: Vec<f64> = (0..128).map(|i| if i < 32 { 3.0 } else { 0.5 }).collect();
        let model = SnowplowModel::with_input_density(data);
        let snapshots = model.simulate(4);
        assert_eq!(snapshots.len(), 5);
        for s in snapshots.iter().skip(1) {
            assert!(s.run_length > 0.5);
        }
    }

    #[test]
    fn tiny_grids_are_padded() {
        let model = SnowplowModel::uniform(2);
        assert!(model.cells() >= 8);
        let model = SnowplowModel::with_input_density(vec![1.0; 3]);
        assert!(model.cells() >= 8);
    }
}
