//! Probability distributions needed by the ANOVA: the F distribution for
//! factor significance (Appendix B.4), Student's t for simple pairwise
//! comparisons, the standard normal and the studentized range used by
//! Tukey's test (§5.2.5).

use super::special::regularized_incomplete_beta;

/// Survival function `P(F > f)` of the Fisher–Snedecor distribution with
/// `d1` and `d2` degrees of freedom — the p-value of an ANOVA F test.
pub fn f_distribution_sf(f: f64, d1: f64, d2: f64) -> f64 {
    if f <= 0.0 {
        return 1.0;
    }
    if !f.is_finite() {
        return 0.0;
    }
    let x = d2 / (d2 + d1 * f);
    regularized_incomplete_beta(d2 / 2.0, d1 / 2.0, x).clamp(0.0, 1.0)
}

/// Two-sided survival function `P(|T| > t)` of Student's t distribution
/// with `df` degrees of freedom.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    let t = t.abs();
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    regularized_incomplete_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Probability density of the standard normal distribution.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Cumulative distribution of the standard normal (Abramowitz–Stegun 7.1.26
/// style erf approximation, |error| < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Cumulative distribution of the studentized range `Q` for `k` groups with
/// a large (effectively infinite) error degree of freedom:
///
/// `P(Q ≤ q) = k ∫ φ(z) [Φ(z) − Φ(z − q)]^{k−1} dz`
///
/// The 2WRS experiments have thousands of residual degrees of freedom, so
/// the infinite-df form is an excellent approximation for the Tukey pairwise
/// tests of §5.2.5–§5.2.6.
pub fn studentized_range_cdf(q: f64, k: usize) -> f64 {
    if q <= 0.0 {
        return 0.0;
    }
    if k < 2 {
        return 1.0;
    }
    // Numerical integration over z with Simpson's rule on [-8, 8].
    let steps = 2_000usize;
    let (lo, hi) = (-8.0f64, 8.0f64);
    let h = (hi - lo) / steps as f64;
    let integrand = |z: f64| -> f64 {
        let inner = normal_cdf(z) - normal_cdf(z - q);
        normal_pdf(z) * inner.powi(k as i32 - 1)
    };
    let mut sum = integrand(lo) + integrand(hi);
    for i in 1..steps {
        let z = lo + i as f64 * h;
        sum += integrand(z) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    (k as f64 * sum * h / 3.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn f_sf_matches_reference_values() {
        // Reference values from standard F tables.
        assert!(close(f_distribution_sf(1.0, 1.0, 1.0), 0.5, 1e-9));
        // P(F_{3,10} > 3.7083) ≈ 0.05.
        assert!(close(f_distribution_sf(3.7083, 3.0, 10.0), 0.05, 2e-3));
        // P(F_{5,20} > 2.7109) ≈ 0.05.
        assert!(close(f_distribution_sf(2.7109, 5.0, 20.0), 0.05, 2e-3));
        // Huge F values are essentially impossible under H0.
        assert!(f_distribution_sf(1_000.0, 3.0, 1_000.0) < 1e-12);
    }

    #[test]
    fn f_sf_is_monotone_decreasing() {
        let mut last = 1.0;
        for i in 1..50 {
            let f = i as f64 * 0.25;
            let p = f_distribution_sf(f, 4.0, 30.0);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn student_t_matches_reference_values() {
        // Two-sided p for t = 2.228, df = 10 is 0.05.
        assert!(close(student_t_sf(2.228, 10.0), 0.05, 2e-3));
        // Symmetric in the sign of t.
        assert!(close(
            student_t_sf(-2.228, 10.0),
            student_t_sf(2.228, 10.0),
            1e-12
        ));
        // t = 0 has p = 1.
        assert!(close(student_t_sf(0.0, 5.0), 1.0, 1e-12));
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!(close(normal_cdf(0.0), 0.5, 1e-9));
        assert!(close(normal_cdf(1.959_964), 0.975, 1e-4));
        assert!(close(normal_cdf(-1.959_964), 0.025, 1e-4));
    }

    #[test]
    fn studentized_range_reference_values() {
        // Critical values for alpha = 0.05, infinite df: q(2) = 2.772,
        // q(3) = 3.314, q(5) = 3.858 (standard tables).
        assert!(close(studentized_range_cdf(2.772, 2), 0.95, 5e-3));
        assert!(close(studentized_range_cdf(3.314, 3), 0.95, 5e-3));
        assert!(close(studentized_range_cdf(3.858, 5), 0.95, 5e-3));
    }

    #[test]
    fn studentized_range_is_monotone_in_q() {
        let mut last = 0.0;
        for i in 0..40 {
            let q = i as f64 * 0.2;
            let p = studentized_range_cdf(q, 4);
            assert!(p >= last - 1e-12);
            last = p;
        }
        assert!(last > 0.99);
    }
}
