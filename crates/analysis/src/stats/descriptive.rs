//! Descriptive statistics helpers.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample variance with Bessel's correction (0 for fewer than two values).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Quantile by linear interpolation between order statistics
/// (`q` in `[0, 1]`).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        sorted[lower]
    } else {
        let frac = pos - lower as f64;
        sorted[lower] * (1.0 - frac) + sorted[upper] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&values) - 5.0).abs() < 1e-12);
        assert!((variance(&values) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&values) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&values, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&values, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&values, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&values, 0.25) - 1.75).abs() < 1e-12);
    }
}
