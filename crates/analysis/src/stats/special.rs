//! Special functions: log-gamma and the regularized incomplete beta
//! function, the building blocks of the F and Student-t distributions.

/// Natural logarithm of the gamma function (Lanczos approximation,
/// accurate to ~15 significant digits for positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` computed with the
/// continued-fraction expansion (Numerical Recipes style).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Lentz's algorithm for the continued fraction of the incomplete beta.
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-14;
    const TINY: f64 = 1.0e-30;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), (24.0f64).ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            (std::f64::consts::PI).sqrt().ln(),
            1e-12
        ));
        assert!(close(ln_gamma(10.5), 13.940_625_219_404_43, 1e-9));
    }

    #[test]
    fn incomplete_beta_matches_known_values() {
        // I_x(1, 1) = x.
        assert!(close(
            regularized_incomplete_beta(1.0, 1.0, 0.3),
            0.3,
            1e-12
        ));
        // I_x(2, 2) = x^2 (3 - 2x).
        let x: f64 = 0.7;
        assert!(close(
            regularized_incomplete_beta(2.0, 2.0, x),
            x * x * (3.0 - 2.0 * x),
            1e-10
        ));
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        let v = regularized_incomplete_beta(3.2, 5.1, 0.4);
        let w = 1.0 - regularized_incomplete_beta(5.1, 3.2, 0.6);
        assert!(close(v, w, 1e-10));
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }
}
