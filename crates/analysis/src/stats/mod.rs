//! Statistical primitives used by the ANOVA machinery.

pub mod descriptive;
pub mod distributions;
pub mod special;

pub use descriptive::{mean, quantile, std_dev, variance};
pub use distributions::{
    f_distribution_sf, normal_cdf, normal_pdf, student_t_sf, studentized_range_cdf,
};
pub use special::{ln_gamma, regularized_incomplete_beta};
