//! The six input data distributions of §5.2 (Figure 5.1).
//!
//! Every distribution is generated deterministically from a seed. Following
//! the paper, a uniformly distributed jitter in `[1, 1000]` can be added to
//! each key so replicated executions of a deterministic algorithm produce
//! different observations (needed by the ANOVA replications of Chapter 5);
//! the total key range is `[0, 10^9]` as in the paper. The jitter can be
//! disabled to obtain the *exact* structured inputs assumed by the
//! closed-form theorems of §5.1.

use crate::record::Record;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Upper bound of the key space used by the paper (keys span `1..10^9`).
pub const KEY_RANGE: u64 = 1_000_000_000;

/// Jitter magnitude the paper adds to every record (`U(1, 1000)`).
pub const JITTER_RANGE: u64 = 1_000;

/// The shape of an input dataset (Figure 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistributionKind {
    /// Keys already in ascending order.
    Sorted,
    /// Keys in descending order (the worst case of classic RS).
    ReverseSorted,
    /// `sections` interleaved ascending and descending intervals, each
    /// spanning the full key range (the paper uses 50 sections: 25 up and
    /// 25 down).
    Alternating {
        /// Total number of monotone sections.
        sections: u32,
    },
    /// Independent uniformly random keys.
    RandomUniform,
    /// One record of an ascending sequence alternating with one record of a
    /// descending sequence.
    MixedBalanced,
    /// One ascending record alternating with `descending_per_ascending`
    /// descending records (the paper uses 3).
    MixedImbalanced {
        /// Number of descending records between consecutive ascending ones.
        descending_per_ascending: u32,
    },
    /// Ascending keys where every record is displaced from its sorted
    /// position by at most `max_displacement` positions (a bulk load whose
    /// source was sorted on a correlated column). When the displacement
    /// bound fits in memory, replacement selection absorbs the disorder
    /// entirely and emits a single run.
    AlmostSorted {
        /// Upper bound, in record positions, on how far any record sits
        /// from its position in the fully sorted output.
        max_displacement: u32,
    },
    /// Independent uniformly random keys drawn from only `distinct` values
    /// (a low-cardinality column: country codes, status flags). Run-length
    /// behaviour matches random input — ties break on the payload — but the
    /// duplicate density stresses comparison and heuristic paths. The
    /// ±U(1,1000) jitter is never applied to this shape (it would spread
    /// the buckets back into distinct keys); replicated executions differ
    /// through the seeded bucket draw instead.
    DuplicateHeavy {
        /// Number of distinct key values in the input.
        distinct: u32,
    },
}

impl DistributionKind {
    /// The six distributions evaluated by the paper, in the order of
    /// Table 5.13 (with the paper's default parameters).
    pub fn paper_set() -> [DistributionKind; 6] {
        [
            DistributionKind::Sorted,
            DistributionKind::ReverseSorted,
            DistributionKind::Alternating { sections: 50 },
            DistributionKind::RandomUniform,
            DistributionKind::MixedBalanced,
            DistributionKind::MixedImbalanced {
                descending_per_ascending: 3,
            },
        ]
    }

    /// A short stable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            DistributionKind::Sorted => "sorted",
            DistributionKind::ReverseSorted => "reverse-sorted",
            DistributionKind::Alternating { .. } => "alternating",
            DistributionKind::RandomUniform => "random",
            DistributionKind::MixedBalanced => "mixed",
            DistributionKind::MixedImbalanced { .. } => "mixed-imbalanced",
            DistributionKind::AlmostSorted { .. } => "almost-sorted",
            DistributionKind::DuplicateHeavy { .. } => "duplicate-heavy",
        }
    }
}

/// A reproducible generator for one of the paper's input distributions.
#[derive(Debug, Clone)]
pub struct Distribution {
    kind: DistributionKind,
    records: u64,
    seed: u64,
    jitter: bool,
}

impl Distribution {
    /// Creates a generator for `records` records of the given shape, with
    /// jitter enabled (the paper's experimental setting).
    pub fn new(kind: DistributionKind, records: u64, seed: u64) -> Self {
        Distribution {
            kind,
            records,
            seed,
            jitter: true,
        }
    }

    /// Creates a generator without jitter; structured inputs are then exact
    /// (every theorem of §5.1 applies literally).
    pub fn exact(kind: DistributionKind, records: u64) -> Self {
        Distribution {
            kind,
            records,
            seed: 0,
            jitter: false,
        }
    }

    /// Enables or disables the ±U(1,1000) jitter.
    pub fn with_jitter(mut self, jitter: bool) -> Self {
        self.jitter = jitter;
        self
    }

    /// The distribution shape.
    pub fn kind(&self) -> DistributionKind {
        self.kind
    }

    /// Number of records the generator will produce.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// `true` when the generator produces no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The seed used for the random number generator.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns an iterator over the generated records.
    ///
    /// The payload of each record is its position in the input, which keeps
    /// comparisons total and lets tests verify stability-related properties.
    pub fn records(&self) -> DistributionIter {
        DistributionIter {
            kind: self.kind,
            total: self.records,
            produced: 0,
            rng: SmallRng::seed_from_u64(self.seed),
            jitter: self.jitter,
        }
    }

    /// Generates the whole dataset into a vector.
    pub fn collect(&self) -> Vec<Record> {
        self.records().collect()
    }
}

/// Iterator produced by [`Distribution::records`].
#[derive(Debug, Clone)]
pub struct DistributionIter {
    kind: DistributionKind,
    total: u64,
    produced: u64,
    rng: SmallRng,
    jitter: bool,
}

impl DistributionIter {
    fn base_key(&mut self, i: u64) -> u64 {
        let n = self.total.max(1);
        // Spacing between consecutive base keys so the whole dataset spans
        // the paper's [0, KEY_RANGE] key space.
        let step = (KEY_RANGE / n).max(1);
        match self.kind {
            DistributionKind::Sorted => i * step,
            DistributionKind::ReverseSorted => (n - 1 - i) * step,
            DistributionKind::Alternating { sections } => {
                let sections = u64::from(sections.max(1));
                let section_len = (n / sections).max(1);
                let section = (i / section_len).min(sections - 1);
                let pos = i % section_len;
                let within_step = (KEY_RANGE / section_len).max(1);
                if section % 2 == 0 {
                    pos * within_step
                } else {
                    KEY_RANGE.saturating_sub(pos * within_step)
                }
            }
            DistributionKind::RandomUniform => self.rng.gen_range(0..KEY_RANGE),
            DistributionKind::MixedBalanced => {
                // Even positions walk up, odd positions walk down; both
                // sequences span the full key range over n/2 records.
                let half = (n / 2).max(1);
                let seq_step = (KEY_RANGE / half).max(1);
                let k = i / 2;
                if i % 2 == 0 {
                    k * seq_step
                } else {
                    KEY_RANGE.saturating_sub(k * seq_step)
                }
            }
            DistributionKind::MixedImbalanced {
                descending_per_ascending,
            } => {
                let group = u64::from(descending_per_ascending.max(1)) + 1;
                let groups = (n / group).max(1);
                let g = i / group;
                let within = i % group;
                if within == 0 {
                    // The ascending sequence: one record per group.
                    let seq_step = (KEY_RANGE / groups).max(1);
                    g * seq_step
                } else {
                    // The descending sequence: `descending_per_ascending`
                    // records per group.
                    let desc_total = (n - groups).max(1);
                    let k = g * (group - 1) + (within - 1);
                    let seq_step = (KEY_RANGE / desc_total).max(1);
                    KEY_RANGE.saturating_sub(k * seq_step)
                }
            }
            DistributionKind::AlmostSorted { max_displacement } => {
                // A forward shove of up to `max_displacement` positions: the
                // record can overtake at most that many of its successors,
                // so no record ends up farther than the bound from its
                // sorted position.
                let shove = self.rng.gen_range(0..=u64::from(max_displacement));
                (i + shove).min(n - 1) * step
            }
            DistributionKind::DuplicateHeavy { distinct } => {
                let distinct = u64::from(distinct.max(1));
                let value_step = (KEY_RANGE / distinct).max(1);
                self.rng.gen_range(0..distinct) * value_step
            }
        }
    }
}

impl Iterator for DistributionIter {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.produced >= self.total {
            return None;
        }
        let i = self.produced;
        let mut key = self.base_key(i);
        // Duplicate-heavy input is *defined* by its low key cardinality;
        // per-record jitter would spread the buckets back into (nearly)
        // distinct keys. Replicated executions already differ through the
        // seeded bucket draw, so the jitter's purpose is served without it.
        let duplicate_heavy = matches!(self.kind, DistributionKind::DuplicateHeavy { .. });
        if self.jitter && !duplicate_heavy {
            key = key.saturating_add(self.rng.gen_range(1..=JITTER_RANGE));
        }
        self.produced += 1;
        Some(Record::new(key, i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total - self.produced) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for DistributionIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(kind: DistributionKind, n: u64, jitter: bool) -> Vec<u64> {
        Distribution::new(kind, n, 42)
            .with_jitter(jitter)
            .records()
            .map(|r| r.key)
            .collect()
    }

    fn ascending_fraction(keys: &[u64]) -> f64 {
        if keys.len() < 2 {
            return 1.0;
        }
        let ups = keys.windows(2).filter(|w| w[1] >= w[0]).count();
        ups as f64 / (keys.len() - 1) as f64
    }

    #[test]
    fn generators_produce_requested_length() {
        for kind in DistributionKind::paper_set() {
            let d = Distribution::new(kind, 1_000, 7);
            assert_eq!(d.collect().len(), 1_000, "{kind:?}");
            assert_eq!(d.records().len(), 1_000);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Distribution::new(DistributionKind::RandomUniform, 500, 1).collect();
        let b = Distribution::new(DistributionKind::RandomUniform, 500, 1).collect();
        let c = Distribution::new(DistributionKind::RandomUniform, 500, 2).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exact_sorted_is_monotone() {
        let keys = keys(DistributionKind::Sorted, 2_000, false);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn exact_reverse_sorted_is_antitone() {
        let keys = keys(DistributionKind::ReverseSorted, 2_000, false);
        assert!(keys.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn jittered_sorted_is_mostly_ascending() {
        let keys = keys(DistributionKind::Sorted, 10_000, true);
        assert!(ascending_fraction(&keys) > 0.5);
        // Globally still spans the key range upward.
        assert!(keys[keys.len() - 1] > keys[0]);
    }

    #[test]
    fn alternating_has_expected_number_of_direction_changes() {
        let keys = keys(
            DistributionKind::Alternating { sections: 10 },
            10_000,
            false,
        );
        // Count sign changes of the discrete derivative; an exact
        // 10-section zigzag has 9 interior direction changes.
        let mut changes = 0;
        let mut last_dir = 0i8;
        for w in keys.windows(2) {
            let dir = match w[1].cmp(&w[0]) {
                std::cmp::Ordering::Greater => 1i8,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
            if dir != 0 {
                if last_dir != 0 && dir != last_dir {
                    changes += 1;
                }
                last_dir = dir;
            }
        }
        assert!((8..=11).contains(&changes), "changes = {changes}");
    }

    #[test]
    fn random_is_roughly_uniform() {
        let keys = keys(DistributionKind::RandomUniform, 50_000, true);
        let below_half = keys.iter().filter(|k| **k < KEY_RANGE / 2).count();
        let fraction = below_half as f64 / keys.len() as f64;
        assert!((0.47..0.53).contains(&fraction), "fraction = {fraction}");
        // Roughly half the adjacent pairs ascend.
        let asc = ascending_fraction(&keys);
        assert!((0.45..0.55).contains(&asc), "ascending fraction = {asc}");
    }

    #[test]
    fn mixed_balanced_interleaves_two_monotone_sequences() {
        let keys = keys(DistributionKind::MixedBalanced, 10_000, false);
        let evens: Vec<u64> = keys.iter().copied().step_by(2).collect();
        let odds: Vec<u64> = keys.iter().copied().skip(1).step_by(2).collect();
        assert!(evens.windows(2).all(|w| w[0] <= w[1]));
        assert!(odds.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn mixed_imbalanced_has_three_descending_per_ascending() {
        let keys = keys(
            DistributionKind::MixedImbalanced {
                descending_per_ascending: 3,
            },
            8_000,
            false,
        );
        // Every 4th record belongs to the ascending sequence.
        let asc: Vec<u64> = keys.iter().copied().step_by(4).collect();
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        // The records in between belong to the descending sequence.
        let desc: Vec<u64> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 0)
            .map(|(_, k)| *k)
            .collect();
        assert!(desc.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn almost_sorted_displacement_is_bounded() {
        let d = 40u32;
        let records = Distribution::new(
            DistributionKind::AlmostSorted {
                max_displacement: d,
            },
            5_000,
            13,
        )
        .collect();
        let mut sorted = records.clone();
        sorted.sort_unstable();
        // Each record sits within `max_displacement` positions of its
        // sorted slot (the property RS exploits to emit a single run).
        for (pos, record) in records.iter().enumerate() {
            let sorted_pos = sorted.binary_search(record).expect("record present");
            assert!(
                pos.abs_diff(sorted_pos) <= d as usize,
                "record {pos} displaced to {sorted_pos}"
            );
        }
        // And it is genuinely not sorted.
        assert_ne!(records, sorted);
    }

    #[test]
    fn duplicate_heavy_uses_few_distinct_keys() {
        // The defining property must hold with AND without jitter: the
        // jitter is documented as a no-op for this shape (it would spread
        // the buckets into ~n distinct keys and silently turn every
        // duplicate-heavy scenario into a random one).
        for jitter in [false, true] {
            let keys = keys(
                DistributionKind::DuplicateHeavy { distinct: 16 },
                4_000,
                jitter,
            );
            let mut unique: Vec<u64> = keys.clone();
            unique.sort_unstable();
            unique.dedup();
            assert!(
                unique.len() <= 16,
                "jitter={jitter}: distinct = {}",
                unique.len()
            );
            // Random order: roughly half the adjacent pairs ascend.
            let asc = ascending_fraction(&keys);
            assert!(
                (0.35..0.65).contains(&asc),
                "jitter={jitter}: ascending fraction = {asc}"
            );
        }
    }

    #[test]
    fn payload_records_input_position() {
        let records = Distribution::new(DistributionKind::RandomUniform, 100, 3).collect();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.payload, i as u64);
        }
    }

    #[test]
    fn keys_stay_in_range() {
        for kind in DistributionKind::paper_set() {
            let keys = keys(kind, 5_000, true);
            assert!(
                keys.iter().all(|k| *k <= KEY_RANGE + JITTER_RANGE),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn empty_distribution() {
        let d = Distribution::new(DistributionKind::Sorted, 0, 0);
        assert!(d.is_empty());
        assert_eq!(d.collect(), Vec::new());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DistributionKind::Sorted.label(), "sorted");
        assert_eq!(
            DistributionKind::MixedImbalanced {
                descending_per_ascending: 3
            }
            .label(),
            "mixed-imbalanced"
        );
    }
}
