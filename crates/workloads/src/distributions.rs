//! The six input data distributions of §5.2 (Figure 5.1).
//!
//! Every distribution is generated deterministically from a seed. Following
//! the paper, a uniformly distributed jitter in `[1, 1000]` can be added to
//! each key so replicated executions of a deterministic algorithm produce
//! different observations (needed by the ANOVA replications of Chapter 5);
//! the total key range is `[0, 10^9]` as in the paper. The jitter can be
//! disabled to obtain the *exact* structured inputs assumed by the
//! closed-form theorems of §5.1.

use crate::record::Record;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Upper bound of the key space used by the paper (keys span `1..10^9`).
pub const KEY_RANGE: u64 = 1_000_000_000;

/// Jitter magnitude the paper adds to every record (`U(1, 1000)`).
pub const JITTER_RANGE: u64 = 1_000;

/// The shape of an input dataset (Figure 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistributionKind {
    /// Keys already in ascending order.
    Sorted,
    /// Keys in descending order (the worst case of classic RS).
    ReverseSorted,
    /// `sections` interleaved ascending and descending intervals, each
    /// spanning the full key range (the paper uses 50 sections: 25 up and
    /// 25 down).
    Alternating {
        /// Total number of monotone sections.
        sections: u32,
    },
    /// Independent uniformly random keys.
    RandomUniform,
    /// One record of an ascending sequence alternating with one record of a
    /// descending sequence.
    MixedBalanced,
    /// One ascending record alternating with `descending_per_ascending`
    /// descending records (the paper uses 3).
    MixedImbalanced {
        /// Number of descending records between consecutive ascending ones.
        descending_per_ascending: u32,
    },
}

impl DistributionKind {
    /// The six distributions evaluated by the paper, in the order of
    /// Table 5.13 (with the paper's default parameters).
    pub fn paper_set() -> [DistributionKind; 6] {
        [
            DistributionKind::Sorted,
            DistributionKind::ReverseSorted,
            DistributionKind::Alternating { sections: 50 },
            DistributionKind::RandomUniform,
            DistributionKind::MixedBalanced,
            DistributionKind::MixedImbalanced {
                descending_per_ascending: 3,
            },
        ]
    }

    /// A short stable label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            DistributionKind::Sorted => "sorted",
            DistributionKind::ReverseSorted => "reverse-sorted",
            DistributionKind::Alternating { .. } => "alternating",
            DistributionKind::RandomUniform => "random",
            DistributionKind::MixedBalanced => "mixed",
            DistributionKind::MixedImbalanced { .. } => "mixed-imbalanced",
        }
    }
}

/// A reproducible generator for one of the paper's input distributions.
#[derive(Debug, Clone)]
pub struct Distribution {
    kind: DistributionKind,
    records: u64,
    seed: u64,
    jitter: bool,
}

impl Distribution {
    /// Creates a generator for `records` records of the given shape, with
    /// jitter enabled (the paper's experimental setting).
    pub fn new(kind: DistributionKind, records: u64, seed: u64) -> Self {
        Distribution {
            kind,
            records,
            seed,
            jitter: true,
        }
    }

    /// Creates a generator without jitter; structured inputs are then exact
    /// (every theorem of §5.1 applies literally).
    pub fn exact(kind: DistributionKind, records: u64) -> Self {
        Distribution {
            kind,
            records,
            seed: 0,
            jitter: false,
        }
    }

    /// Enables or disables the ±U(1,1000) jitter.
    pub fn with_jitter(mut self, jitter: bool) -> Self {
        self.jitter = jitter;
        self
    }

    /// The distribution shape.
    pub fn kind(&self) -> DistributionKind {
        self.kind
    }

    /// Number of records the generator will produce.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// `true` when the generator produces no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The seed used for the random number generator.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns an iterator over the generated records.
    ///
    /// The payload of each record is its position in the input, which keeps
    /// comparisons total and lets tests verify stability-related properties.
    pub fn records(&self) -> DistributionIter {
        DistributionIter {
            kind: self.kind,
            total: self.records,
            produced: 0,
            rng: SmallRng::seed_from_u64(self.seed),
            jitter: self.jitter,
        }
    }

    /// Generates the whole dataset into a vector.
    pub fn collect(&self) -> Vec<Record> {
        self.records().collect()
    }
}

/// Iterator produced by [`Distribution::records`].
#[derive(Debug, Clone)]
pub struct DistributionIter {
    kind: DistributionKind,
    total: u64,
    produced: u64,
    rng: SmallRng,
    jitter: bool,
}

impl DistributionIter {
    fn base_key(&mut self, i: u64) -> u64 {
        let n = self.total.max(1);
        // Spacing between consecutive base keys so the whole dataset spans
        // the paper's [0, KEY_RANGE] key space.
        let step = (KEY_RANGE / n).max(1);
        match self.kind {
            DistributionKind::Sorted => i * step,
            DistributionKind::ReverseSorted => (n - 1 - i) * step,
            DistributionKind::Alternating { sections } => {
                let sections = u64::from(sections.max(1));
                let section_len = (n / sections).max(1);
                let section = (i / section_len).min(sections - 1);
                let pos = i % section_len;
                let within_step = (KEY_RANGE / section_len).max(1);
                if section % 2 == 0 {
                    pos * within_step
                } else {
                    KEY_RANGE.saturating_sub(pos * within_step)
                }
            }
            DistributionKind::RandomUniform => self.rng.gen_range(0..KEY_RANGE),
            DistributionKind::MixedBalanced => {
                // Even positions walk up, odd positions walk down; both
                // sequences span the full key range over n/2 records.
                let half = (n / 2).max(1);
                let seq_step = (KEY_RANGE / half).max(1);
                let k = i / 2;
                if i % 2 == 0 {
                    k * seq_step
                } else {
                    KEY_RANGE.saturating_sub(k * seq_step)
                }
            }
            DistributionKind::MixedImbalanced {
                descending_per_ascending,
            } => {
                let group = u64::from(descending_per_ascending.max(1)) + 1;
                let groups = (n / group).max(1);
                let g = i / group;
                let within = i % group;
                if within == 0 {
                    // The ascending sequence: one record per group.
                    let seq_step = (KEY_RANGE / groups).max(1);
                    g * seq_step
                } else {
                    // The descending sequence: `descending_per_ascending`
                    // records per group.
                    let desc_total = (n - groups).max(1);
                    let k = g * (group - 1) + (within - 1);
                    let seq_step = (KEY_RANGE / desc_total).max(1);
                    KEY_RANGE.saturating_sub(k * seq_step)
                }
            }
        }
    }
}

impl Iterator for DistributionIter {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.produced >= self.total {
            return None;
        }
        let i = self.produced;
        let mut key = self.base_key(i);
        if self.jitter {
            key = key.saturating_add(self.rng.gen_range(1..=JITTER_RANGE));
        }
        self.produced += 1;
        Some(Record::new(key, i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total - self.produced) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for DistributionIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(kind: DistributionKind, n: u64, jitter: bool) -> Vec<u64> {
        Distribution::new(kind, n, 42)
            .with_jitter(jitter)
            .records()
            .map(|r| r.key)
            .collect()
    }

    fn ascending_fraction(keys: &[u64]) -> f64 {
        if keys.len() < 2 {
            return 1.0;
        }
        let ups = keys.windows(2).filter(|w| w[1] >= w[0]).count();
        ups as f64 / (keys.len() - 1) as f64
    }

    #[test]
    fn generators_produce_requested_length() {
        for kind in DistributionKind::paper_set() {
            let d = Distribution::new(kind, 1_000, 7);
            assert_eq!(d.collect().len(), 1_000, "{kind:?}");
            assert_eq!(d.records().len(), 1_000);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Distribution::new(DistributionKind::RandomUniform, 500, 1).collect();
        let b = Distribution::new(DistributionKind::RandomUniform, 500, 1).collect();
        let c = Distribution::new(DistributionKind::RandomUniform, 500, 2).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exact_sorted_is_monotone() {
        let keys = keys(DistributionKind::Sorted, 2_000, false);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn exact_reverse_sorted_is_antitone() {
        let keys = keys(DistributionKind::ReverseSorted, 2_000, false);
        assert!(keys.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn jittered_sorted_is_mostly_ascending() {
        let keys = keys(DistributionKind::Sorted, 10_000, true);
        assert!(ascending_fraction(&keys) > 0.5);
        // Globally still spans the key range upward.
        assert!(keys[keys.len() - 1] > keys[0]);
    }

    #[test]
    fn alternating_has_expected_number_of_direction_changes() {
        let keys = keys(
            DistributionKind::Alternating { sections: 10 },
            10_000,
            false,
        );
        // Count sign changes of the discrete derivative; an exact
        // 10-section zigzag has 9 interior direction changes.
        let mut changes = 0;
        let mut last_dir = 0i8;
        for w in keys.windows(2) {
            let dir = match w[1].cmp(&w[0]) {
                std::cmp::Ordering::Greater => 1i8,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
            if dir != 0 {
                if last_dir != 0 && dir != last_dir {
                    changes += 1;
                }
                last_dir = dir;
            }
        }
        assert!((8..=11).contains(&changes), "changes = {changes}");
    }

    #[test]
    fn random_is_roughly_uniform() {
        let keys = keys(DistributionKind::RandomUniform, 50_000, true);
        let below_half = keys.iter().filter(|k| **k < KEY_RANGE / 2).count();
        let fraction = below_half as f64 / keys.len() as f64;
        assert!((0.47..0.53).contains(&fraction), "fraction = {fraction}");
        // Roughly half the adjacent pairs ascend.
        let asc = ascending_fraction(&keys);
        assert!((0.45..0.55).contains(&asc), "ascending fraction = {asc}");
    }

    #[test]
    fn mixed_balanced_interleaves_two_monotone_sequences() {
        let keys = keys(DistributionKind::MixedBalanced, 10_000, false);
        let evens: Vec<u64> = keys.iter().copied().step_by(2).collect();
        let odds: Vec<u64> = keys.iter().copied().skip(1).step_by(2).collect();
        assert!(evens.windows(2).all(|w| w[0] <= w[1]));
        assert!(odds.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn mixed_imbalanced_has_three_descending_per_ascending() {
        let keys = keys(
            DistributionKind::MixedImbalanced {
                descending_per_ascending: 3,
            },
            8_000,
            false,
        );
        // Every 4th record belongs to the ascending sequence.
        let asc: Vec<u64> = keys.iter().copied().step_by(4).collect();
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        // The records in between belong to the descending sequence.
        let desc: Vec<u64> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 0)
            .map(|(_, k)| *k)
            .collect();
        assert!(desc.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn payload_records_input_position() {
        let records = Distribution::new(DistributionKind::RandomUniform, 100, 3).collect();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.payload, i as u64);
        }
    }

    #[test]
    fn keys_stay_in_range() {
        for kind in DistributionKind::paper_set() {
            let keys = keys(kind, 5_000, true);
            assert!(
                keys.iter().all(|k| *k <= KEY_RANGE + JITTER_RANGE),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn empty_distribution() {
        let d = Distribution::new(DistributionKind::Sorted, 0, 0);
        assert!(d.is_empty());
        assert_eq!(d.collect(), Vec::new());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DistributionKind::Sorted.label(), "sorted");
        assert_eq!(
            DistributionKind::MixedImbalanced {
                descending_per_ascending: 3
            }
            .label(),
            "mixed-imbalanced"
        );
    }
}
