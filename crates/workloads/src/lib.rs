//! Input workloads for the two-way replacement selection evaluation.
//!
//! Chapter 5 of the paper evaluates run generation on six characteristic
//! input distributions — *sorted*, *reverse sorted*, *alternating*,
//! *random*, *mixed balanced* and *mixed imbalanced* (Figure 5.1) — arguing
//! that realistic database inputs are combinations of these basic shapes
//! (e.g. sorting an anticorrelated column produces reverse-sorted input).
//! This crate provides:
//!
//! * [`record::Record`] — the fixed-size record sorted throughout the
//!   reproduction (a 64-bit key plus a 64-bit payload/row id);
//! * [`distributions::Distribution`] — seeded generators for the six
//!   distributions with the same ±U(1,1000) jitter the paper adds to make
//!   replicated executions differ;
//! * [`composite`] — concatenations and the anticorrelated-columns database
//!   scenario used to motivate the basic shapes;
//! * [`dataset`] — helpers to materialise a workload onto a storage device
//!   and measure how sorted an input already is;
//! * [`user_event::UserEvent`] — a second, wider record type (32-byte
//!   event) with a monotone mapping from [`record::Record`], so every
//!   distribution can be replayed through the generic pipeline.
//!
//! Beyond the paper's six shapes, [`distributions::DistributionKind`] adds
//! *almost-sorted* (bounded displacement) and *duplicate-heavy* (low key
//! cardinality) inputs for the scenario matrix of `twrs-bench`, and
//! [`arrivals::ArrivalTrace`] generates deterministic multi-tenant
//! job-arrival traces for the sort-service contention scenarios.

#![warn(missing_docs)]

pub mod arrivals;
pub mod composite;
pub mod dataset;
pub mod distributions;
pub mod record;
pub mod user_event;

pub use arrivals::{ArrivalTrace, JobArrival};
pub use composite::{AnticorrelatedTable, Concatenation};
pub use dataset::{materialize, read_dataset, sortedness, DatasetStats};
pub use distributions::{Distribution, DistributionKind, KEY_RANGE};
pub use record::Record;
pub use user_event::UserEvent;
