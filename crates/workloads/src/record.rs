//! The record type sorted throughout the reproduction.

use twrs_storage::{FixedSizeRecord, SortableRecord};

/// A fixed-size sortable record.
///
/// The paper sorts 4-byte integer keys; we widen the key to 64 bits so the
/// jittered key space of large datasets never overflows, and carry a 64-bit
/// payload that stands in for the rest of a database row (and doubles as a
/// stable tie-breaker, making every sort comparison total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Record {
    /// The sort key.
    pub key: u64,
    /// Opaque payload carried along with the key (e.g. a row id).
    pub payload: u64,
}

impl Record {
    /// Creates a record from a key and payload.
    pub fn new(key: u64, payload: u64) -> Self {
        Record { key, payload }
    }

    /// Creates a record whose payload is zero; convenient in tests.
    pub fn from_key(key: u64) -> Self {
        Record { key, payload: 0 }
    }
}

impl PartialOrd for Record {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Record {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| self.payload.cmp(&other.payload))
    }
}

impl FixedSizeRecord for Record {
    const SIZE: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&self.key.to_le_bytes());
        buf[8..16].copy_from_slice(&self.payload.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        Record {
            key: twrs_storage::u64_le_at(buf, 0),
            payload: twrs_storage::u64_le_at(buf, 8),
        }
    }
}

impl SortableRecord for Record {
    fn sort_key(&self) -> u64 {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_key_major_payload_minor() {
        assert!(Record::new(1, 99) < Record::new(2, 0));
        assert!(Record::new(5, 1) < Record::new(5, 2));
        assert_eq!(
            Record::new(5, 1).cmp(&Record::new(5, 1)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn serialization_round_trips() {
        let r = Record::new(0xDEAD_BEEF_1234_5678, 42);
        let mut buf = [0u8; 16];
        r.write_to(&mut buf);
        assert_eq!(Record::read_from(&buf), r);
    }

    #[test]
    fn size_matches_layout() {
        assert_eq!(<Record as FixedSizeRecord>::SIZE, 16);
    }
}
