//! Materialising workloads onto a storage device and measuring them.
//!
//! The timing experiments of Chapter 6 read the input from disk rather than
//! generating it on the fly, so the input scan is charged to the sort like
//! in the paper's setup. [`materialize`] writes a generated workload to a
//! device file; [`read_dataset`] streams it back; [`sortedness`] quantifies
//! how ordered an input already is, which is the property the run-length
//! results hinge on.

use crate::record::Record;
use twrs_storage::{Result, RunReader, RunWriter, StorageDevice};

/// Summary statistics of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of records.
    pub records: u64,
    /// Fraction of adjacent pairs that are non-decreasing (1.0 for sorted
    /// input, 0.0 for strictly decreasing input, ≈0.5 for random input).
    pub ascending_fraction: f64,
    /// Number of maximal non-decreasing segments (the number of runs an
    /// idealised zero-memory run generator would produce).
    pub ascending_segments: u64,
    /// Smallest key in the dataset.
    pub min_key: u64,
    /// Largest key in the dataset.
    pub max_key: u64,
}

/// Writes every record produced by `source` into the file `name` on
/// `device`, returning the number of records written.
pub fn materialize(
    device: &dyn StorageDevice,
    name: &str,
    source: impl IntoIterator<Item = Record>,
) -> Result<u64> {
    let mut writer = RunWriter::<Record>::create(device, name)?;
    for record in source {
        writer.push(&record)?;
    }
    writer.finish()
}

/// Opens a dataset previously written by [`materialize`] and returns a
/// streaming reader over its records.
pub fn read_dataset(device: &dyn StorageDevice, name: &str) -> Result<RunReader<Record>> {
    RunReader::<Record>::open(device, name)
}

/// Computes the [`DatasetStats`] of a record stream.
pub fn sortedness(records: impl IntoIterator<Item = Record>) -> DatasetStats {
    let mut iter = records.into_iter();
    let first = match iter.next() {
        Some(r) => r,
        None => {
            return DatasetStats {
                records: 0,
                ascending_fraction: 1.0,
                ascending_segments: 0,
                min_key: 0,
                max_key: 0,
            }
        }
    };
    let mut prev = first.key;
    let mut count: u64 = 1;
    let mut ascending_pairs: u64 = 0;
    let mut segments: u64 = 1;
    let mut min_key = first.key;
    let mut max_key = first.key;
    for record in iter {
        count += 1;
        if record.key >= prev {
            ascending_pairs += 1;
        } else {
            segments += 1;
        }
        min_key = min_key.min(record.key);
        max_key = max_key.max(record.key);
        prev = record.key;
    }
    let pairs = count.saturating_sub(1);
    DatasetStats {
        records: count,
        ascending_fraction: if pairs == 0 {
            1.0
        } else {
            ascending_pairs as f64 / pairs as f64
        },
        ascending_segments: segments,
        min_key,
        max_key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Distribution, DistributionKind};
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;

    #[test]
    fn materialize_and_read_round_trip() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let dist = Distribution::new(DistributionKind::RandomUniform, 3_000, 11);
        let expected = dist.collect();
        let written = materialize(&device, "input", expected.iter().copied()).unwrap();
        assert_eq!(written, 3_000);
        let mut reader = read_dataset(&device, "input").unwrap();
        let read: Vec<Record> = reader.read_all().unwrap();
        assert_eq!(read, expected);
    }

    #[test]
    fn sortedness_of_sorted_input_is_one() {
        let stats = sortedness(Distribution::exact(DistributionKind::Sorted, 1_000).records());
        assert_eq!(stats.records, 1_000);
        assert_eq!(stats.ascending_fraction, 1.0);
        assert_eq!(stats.ascending_segments, 1);
    }

    #[test]
    fn sortedness_of_reverse_input_is_zero() {
        let stats =
            sortedness(Distribution::exact(DistributionKind::ReverseSorted, 1_000).records());
        assert!(stats.ascending_fraction < 0.01);
        assert_eq!(stats.ascending_segments, 1_000);
    }

    #[test]
    fn sortedness_of_random_is_about_half() {
        let stats =
            sortedness(Distribution::new(DistributionKind::RandomUniform, 20_000, 5).records());
        assert!((0.45..0.55).contains(&stats.ascending_fraction));
    }

    #[test]
    fn empty_dataset_stats() {
        let stats = sortedness(Vec::new());
        assert_eq!(stats.records, 0);
        assert_eq!(stats.ascending_segments, 0);
    }

    #[test]
    fn alternating_has_as_many_segments_as_upward_sections() {
        let stats = sortedness(
            Distribution::exact(DistributionKind::Alternating { sections: 10 }, 10_000).records(),
        );
        // Each descending section contributes many one-record segments, so
        // the segment count is dominated by them; just verify the extremes
        // span the key range.
        assert!(stats.max_key > stats.min_key);
        assert_eq!(stats.records, 10_000);
    }
}
