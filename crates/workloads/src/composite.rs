//! Composite workloads built from the basic distributions.
//!
//! The paper argues (§5.2, Chapter 7) that the six basic shapes are the
//! building blocks of realistic database inputs: a column anticorrelated
//! with the current sort order yields a reverse-sorted input, a
//! two-attribute key stored flat yields a concatenation of sorted inputs,
//! and so on. This module provides those composition operators so examples
//! and integration tests can exercise realistic scenarios.

use crate::distributions::{Distribution, KEY_RANGE};
use crate::record::Record;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A concatenation of several basic distributions, e.g. "a sorted chunk
/// followed by a random chunk" (the flat-number/door-number example of
/// Chapter 7).
#[derive(Debug, Clone)]
pub struct Concatenation {
    parts: Vec<Distribution>,
}

impl Concatenation {
    /// Creates an empty concatenation.
    pub fn new() -> Self {
        Concatenation { parts: Vec::new() }
    }

    /// Appends a part to the concatenation.
    pub fn then(mut self, part: Distribution) -> Self {
        self.parts.push(part);
        self
    }

    /// Total number of records across every part.
    pub fn len(&self) -> u64 {
        self.parts.iter().map(Distribution::len).sum()
    }

    /// `true` when no part produces any records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the records of every part in order.
    ///
    /// Payloads are rewritten to the global input position so they remain a
    /// unique tie-breaker across parts.
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        self.parts
            .iter()
            .flat_map(|part| part.records())
            .enumerate()
            .map(|(i, r)| Record::new(r.key, i as u64))
    }

    /// Generates the whole concatenated dataset.
    pub fn collect(&self) -> Vec<Record> {
        self.records().collect()
    }
}

impl Default for Concatenation {
    fn default() -> Self {
        Self::new()
    }
}

/// A two-column table where column `b` is anticorrelated with column `a`.
///
/// When the table is stored sorted by `a` and a query needs it ordered by
/// `b`, the sort operator receives a reverse-sorted input — the worst case
/// of classic replacement selection and the motivating scenario of the
/// paper's introduction.
#[derive(Debug, Clone)]
pub struct AnticorrelatedTable {
    rows: u64,
    seed: u64,
    noise: u64,
}

impl AnticorrelatedTable {
    /// Creates a table with `rows` rows using `seed` for the per-row noise.
    pub fn new(rows: u64, seed: u64) -> Self {
        AnticorrelatedTable {
            rows,
            seed,
            noise: 1_000,
        }
    }

    /// Sets the magnitude of the noise added to the anticorrelation
    /// (`b = KEY_RANGE - a ± noise`).
    pub fn with_noise(mut self, noise: u64) -> Self {
        self.noise = noise;
        self
    }

    /// Number of rows in the table.
    pub fn len(&self) -> u64 {
        self.rows
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Iterates over `(a, b)` pairs in storage order (sorted by `a`).
    pub fn rows(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.rows.max(1);
        let step = (KEY_RANGE / n).max(1);
        let noise = self.noise;
        (0..self.rows).map(move |i| {
            let a = i * step;
            let jitter = if noise == 0 {
                0
            } else {
                rng.gen_range(0..=noise)
            };
            let b = KEY_RANGE.saturating_sub(a).saturating_add(jitter);
            (a, b)
        })
    }

    /// The input seen by a sort on column `b` while the table is scanned in
    /// `a` order: a (jittered) reverse-sorted stream.
    pub fn sort_by_b_input(&self) -> impl Iterator<Item = Record> + '_ {
        self.rows()
            .enumerate()
            .map(|(i, (_a, b))| Record::new(b, i as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::DistributionKind;

    #[test]
    fn concatenation_appends_parts_in_order() {
        let concat = Concatenation::new()
            .then(Distribution::exact(DistributionKind::Sorted, 100))
            .then(Distribution::exact(DistributionKind::ReverseSorted, 50));
        assert_eq!(concat.len(), 150);
        let records = concat.collect();
        assert_eq!(records.len(), 150);
        // First part ascending, second part descending.
        assert!(records[..100].windows(2).all(|w| w[0].key <= w[1].key));
        assert!(records[100..].windows(2).all(|w| w[0].key >= w[1].key));
    }

    #[test]
    fn concatenation_payloads_are_global_positions() {
        let concat = Concatenation::new()
            .then(Distribution::exact(DistributionKind::Sorted, 10))
            .then(Distribution::exact(DistributionKind::Sorted, 10));
        let records = concat.collect();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.payload, i as u64);
        }
    }

    #[test]
    fn empty_concatenation() {
        let concat = Concatenation::new();
        assert!(concat.is_empty());
        assert_eq!(concat.collect(), Vec::new());
    }

    #[test]
    fn anticorrelated_table_is_sorted_by_a() {
        let table = AnticorrelatedTable::new(1_000, 3);
        let a_values: Vec<u64> = table.rows().map(|(a, _)| a).collect();
        assert!(a_values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sort_by_b_sees_reverse_sorted_input() {
        let table = AnticorrelatedTable::new(1_000, 3).with_noise(0);
        let b_keys: Vec<u64> = table.sort_by_b_input().map(|r| r.key).collect();
        assert!(b_keys.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn noise_keeps_global_trend() {
        let table = AnticorrelatedTable::new(10_000, 9).with_noise(1_000);
        let b_keys: Vec<u64> = table.sort_by_b_input().map(|r| r.key).collect();
        assert!(b_keys.first().unwrap() > b_keys.last().unwrap());
        let descending = b_keys.windows(2).filter(|w| w[1] <= w[0]).count();
        assert!(descending as f64 / (b_keys.len() - 1) as f64 > 0.5);
    }
}
