//! Deterministic job-arrival traces for multi-job sort-service scenarios.
//!
//! A single sort is characterised by its input distribution; a sort
//! *service* is characterised by how jobs arrive — how many tenants, how
//! bursty, how big each job is. [`ArrivalTrace`] generates a seeded,
//! reproducible sequence of [`JobArrival`]s the bench suite replays
//! against a `SortService`: same seed, same trace, same deterministic
//! per-job I/O counters.

use crate::distributions::DistributionKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One job of an arrival trace.
#[derive(Debug, Clone)]
pub struct JobArrival {
    /// Tenant submitting the job.
    pub tenant: String,
    /// Arrival time, as an offset from the start of the trace. Replays
    /// that only care about queue contention (not open-loop pacing) may
    /// ignore it and submit in trace order.
    pub offset: Duration,
    /// Input size of the job, in records.
    pub records: usize,
    /// Memory budget the job's generator asks for, in records.
    pub memory_records: usize,
    /// Shape of the job's input.
    pub distribution: DistributionKind,
    /// Seed for the job's input distribution.
    pub seed: u64,
}

/// A reproducible sequence of job arrivals.
#[derive(Debug, Clone)]
pub struct ArrivalTrace {
    jobs: Vec<JobArrival>,
}

/// The input shapes a synthetic trace cycles through — the paper's two
/// extremes plus the mixed shape, so a trace stresses short-run and
/// long-run jobs alike.
const TRACE_DISTRIBUTIONS: [DistributionKind; 3] = [
    DistributionKind::RandomUniform,
    DistributionKind::ReverseSorted,
    DistributionKind::MixedBalanced,
];

impl ArrivalTrace {
    /// A synthetic trace of `jobs` arrivals dealt round-robin over
    /// `tenants` tenants (`tenant-0`, `tenant-1`, …).
    ///
    /// Every job sorts `records` records under a requested budget of
    /// `memory_records`; input shapes cycle deterministically and each job
    /// gets its own input seed derived from `seed`. Interarrival gaps are
    /// drawn uniformly from `0..2 * mean_gap` (so they average `mean_gap`)
    /// with the same seeded generator — the whole trace is a pure function
    /// of its arguments.
    pub fn synthetic(
        tenants: usize,
        jobs: usize,
        records: usize,
        memory_records: usize,
        mean_gap: Duration,
        seed: u64,
    ) -> Self {
        let tenants = tenants.max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut offset = Duration::ZERO;
        let jobs = (0..jobs)
            .map(|index| {
                let gap_us = 2 * mean_gap.as_micros() as u64;
                if gap_us > 0 {
                    offset += Duration::from_micros(rng.gen_range(0..gap_us));
                }
                JobArrival {
                    tenant: format!("tenant-{}", index % tenants),
                    offset,
                    records,
                    memory_records,
                    distribution: TRACE_DISTRIBUTIONS[index % TRACE_DISTRIBUTIONS.len()],
                    seed: seed
                        .wrapping_add(index as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                }
            })
            .collect();
        ArrivalTrace { jobs }
    }

    /// The arrivals, in trace order (non-decreasing offsets).
    pub fn jobs(&self) -> &[JobArrival] {
        &self.jobs
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The distinct tenants of the trace, in first-appearance order.
    pub fn tenants(&self) -> Vec<String> {
        let mut tenants: Vec<String> = Vec::new();
        for job in &self.jobs {
            if !tenants.contains(&job.tenant) {
                tenants.push(job.tenant.clone());
            }
        }
        tenants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible() {
        let a = ArrivalTrace::synthetic(2, 8, 1_000, 100, Duration::from_millis(1), 42);
        let b = ArrivalTrace::synthetic(2, 8, 1_000, 100, Duration::from_millis(1), 42);
        assert_eq!(a.len(), 8);
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.offset, y.offset);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.distribution.label(), y.distribution.label());
        }
        // A different seed changes the jobs' input seeds.
        let c = ArrivalTrace::synthetic(2, 8, 1_000, 100, Duration::from_millis(1), 43);
        assert!(a.jobs().iter().zip(c.jobs()).any(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn tenants_rotate_and_offsets_grow() {
        let trace = ArrivalTrace::synthetic(3, 7, 500, 64, Duration::from_millis(2), 7);
        assert_eq!(
            trace.tenants(),
            vec!["tenant-0", "tenant-1", "tenant-2"],
            "round-robin tenant assignment"
        );
        let offsets: Vec<_> = trace.jobs().iter().map(|j| j.offset).collect();
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zero_gap_means_simultaneous_arrivals() {
        let trace = ArrivalTrace::synthetic(1, 4, 100, 10, Duration::ZERO, 1);
        assert!(trace.jobs().iter().all(|j| j.offset == Duration::ZERO));
        assert!(!trace.is_empty());
    }
}
