//! A "bring your own record type" workload record: a 32-byte event.
//!
//! The sorting pipeline is generic over `SortableRecord`; the paper's
//! [`Record`] is merely the default. `UserEvent` is the
//! second shape exercised throughout the benches and tests — an 8-byte
//! lexicographic string-prefix key, a timestamp and an opaque payload, the
//! kind of record a log-ingestion workload sorts by user. The scenario
//! matrix of `twrs-bench` sorts every input distribution through it, so the
//! generic pipeline is measured on a record twice the size of the default
//! one.

use crate::record::Record;
use twrs_storage::{FixedSizeRecord, SortableRecord};

/// A 32-byte event record: 8-byte string-prefix key, 8-byte timestamp,
/// 16-byte opaque payload. Ordered by `(prefix, timestamp, payload)`, which
/// is total, so independently produced sorted outputs are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserEvent {
    /// Lexicographic 8-byte key prefix (e.g. a user name).
    pub prefix: [u8; 8],
    /// Event timestamp; secondary sort key.
    pub timestamp: u64,
    /// Opaque payload carried along with the event.
    pub payload: [u8; 16],
}

impl UserEvent {
    /// Creates an event from a string key (truncated or zero-padded to
    /// 8 bytes), a timestamp and a payload tag.
    pub fn new(user: &str, timestamp: u64, tag: u8) -> Self {
        let mut prefix = [0u8; 8];
        let bytes = user.as_bytes();
        let n = bytes.len().min(8);
        prefix[..n].copy_from_slice(&bytes[..n]);
        UserEvent {
            prefix,
            timestamp,
            payload: [tag; 16],
        }
    }
}

impl From<Record> for UserEvent {
    /// Maps a workload [`Record`] onto an event so every input distribution
    /// can be replayed on the wider record type. Big-endian key bytes make
    /// the lexicographic prefix order equal the numeric key order, so the
    /// mapping is monotone and preserves the distribution's shape exactly.
    fn from(record: Record) -> Self {
        let mut payload = [0u8; 16];
        payload[0..8].copy_from_slice(&record.payload.to_le_bytes());
        payload[8..16].copy_from_slice(&record.key.to_le_bytes());
        UserEvent {
            prefix: record.key.to_be_bytes(),
            timestamp: record.payload,
            payload,
        }
    }
}

impl FixedSizeRecord for UserEvent {
    const SIZE: usize = 32;

    fn write_to(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&self.prefix);
        buf[8..16].copy_from_slice(&self.timestamp.to_le_bytes());
        buf[16..32].copy_from_slice(&self.payload);
    }

    fn read_from(buf: &[u8]) -> Self {
        UserEvent {
            prefix: twrs_storage::array_at(buf, 0),
            timestamp: twrs_storage::u64_le_at(buf, 8),
            payload: twrs_storage::array_at(buf, 16),
        }
    }
}

impl SortableRecord for UserEvent {
    /// Big-endian bytes of the prefix preserve lexicographic order, so the
    /// projection is monotone with respect to `Ord`.
    fn sort_key(&self) -> u64 {
        u64::from_be_bytes(self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Distribution, DistributionKind};

    #[test]
    fn round_trips_through_bytes() {
        let event = UserEvent::new("user0042", 7, 9);
        let mut buf = [0u8; 32];
        event.write_to(&mut buf);
        assert_eq!(UserEvent::read_from(&buf), event);
    }

    #[test]
    fn from_record_is_monotone() {
        let records = Distribution::new(DistributionKind::RandomUniform, 2_000, 5).collect();
        let mut by_record = records.clone();
        by_record.sort_unstable();
        let mut by_event: Vec<Record> = records;
        by_event.sort_unstable_by_key(|r| UserEvent::from(*r));
        assert_eq!(by_record, by_event);
    }

    #[test]
    fn sort_key_is_monotone() {
        let mut sample: Vec<UserEvent> =
            Distribution::new(DistributionKind::MixedBalanced, 1_000, 3)
                .records()
                .map(UserEvent::from)
                .collect();
        sample.sort_unstable();
        assert!(sample
            .windows(2)
            .all(|w| w[0].sort_key() <= w[1].sort_key()));
    }

    #[test]
    fn distinct_records_map_to_distinct_events() {
        let a = UserEvent::from(Record::new(1, 1));
        let b = UserEvent::from(Record::new(1, 2));
        assert_ne!(a, b);
        assert!(a < b);
    }
}
