//! Property-based tests for the external-sort substrate: every
//! run-generation algorithm and both merge strategies must sort arbitrary
//! inputs correctly, and the storage round trip must be lossless.

use proptest::prelude::*;
use twrs_extsort::{
    polyphase_merge, ExternalSorter, KWayMerger, LoadSortStore, MergeConfig,
    ParallelExternalSorter, ParallelSorterConfig, ReplacementSelection, RunCursor, RunGenerator,
    RunHandle, SorterConfig,
};
use twrs_storage::ModelId;
use twrs_storage::{SimDevice, SpillNamer};
use twrs_workloads::Record;

fn records_from(keys: &[u64]) -> Vec<Record> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| Record::new(*k, i as u64))
        .collect()
}

fn sorted_copy(records: &[Record]) -> Vec<Record> {
    let mut sorted = records.to_vec();
    sorted.sort_unstable();
    sorted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Classic replacement selection produces sorted runs covering exactly
    /// the input multiset for arbitrary keys and memory budgets.
    #[test]
    fn replacement_selection_runs_are_sorted_and_complete(
        keys in prop::collection::vec(0u64..100_000, 0..1_500),
        memory in 1usize..300,
    ) {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("prop-rs");
        let input = records_from(&keys);
        let mut generator = ReplacementSelection::new(memory);
        let mut iter = input.clone().into_iter();
        let set = generator.generate(&device, &namer, &mut iter).unwrap();
        prop_assert_eq!(set.records as usize, input.len());

        let mut all: Vec<Record> = Vec::new();
        for handle in &set.runs {
            let run = RunCursor::<Record>::open(&device, handle)
                .unwrap()
                .read_all()
                .unwrap();
            prop_assert!(run.windows(2).all(|w| w[0] <= w[1]));
            all.extend(run);
        }
        all.sort_unstable();
        prop_assert_eq!(all, sorted_copy(&input));
    }

    /// The end-to-end sorter (RS run generation + multi-pass k-way merge)
    /// equals a std sort for arbitrary inputs, fan-ins and read-ahead sizes.
    #[test]
    fn external_sorter_matches_std_sort(
        keys in prop::collection::vec(0u64..1_000_000, 0..1_500),
        memory in 2usize..200,
        fan_in in 2usize..8,
        read_ahead in 1usize..512,
    ) {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let input = records_from(&keys);
        let config = SorterConfig {
            merge: MergeConfig { fan_in, read_ahead_records: read_ahead },
            verify: true,
        };
        let mut sorter = ExternalSorter::with_config(ReplacementSelection::new(memory), config);
        let mut iter = input.clone().into_iter();
        let report = sorter.sort_iter(&device, &mut iter, "out").unwrap();
        prop_assert_eq!(report.records as usize, input.len());

        let output = RunCursor::<Record>::open(&device, &RunHandle::Forward("out".into()))
            .unwrap()
            .read_all()
            .unwrap();
        prop_assert_eq!(output, sorted_copy(&input));
    }

    /// The parallel sorter equals a std sort (and therefore the sequential
    /// sorter) for arbitrary inputs, thread counts, fan-ins, read-aheads
    /// and pipeline queue depths — and its I/O accounting is honest: the
    /// aggregated counters are exactly the shard sums, and splitting the
    /// memory budget across shards never *reduces* the spill volume below
    /// the single-threaded sorter's.
    #[test]
    fn parallel_sorter_matches_sequential_and_accounts_io(
        keys in prop::collection::vec(0u64..1_000_000, 0..1_200),
        memory in 4usize..150,
        threads in 1usize..8,
        fan_in in 2usize..8,
        read_ahead in 1usize..256,
        queue in 1usize..64,
        parcel in 1usize..200,
    ) {
        let input = records_from(&keys);
        let merge = MergeConfig { fan_in, read_ahead_records: read_ahead };

        // Sequential reference on its own device.
        let seq_device = SimDevice::with_model(ModelId::Hdd7200);
        let mut seq = ExternalSorter::with_config(
            ReplacementSelection::new(memory),
            SorterConfig { merge, verify: true },
        );
        let mut iter = input.clone().into_iter();
        let seq_report = seq.sort_iter(&seq_device, &mut iter, "out").unwrap();

        // Parallel sorter with the same total budget and merge parameters.
        let par_device = SimDevice::with_model(ModelId::Hdd7200);
        let mut par = ParallelExternalSorter::with_config(
            ReplacementSelection::new(memory),
            ParallelSorterConfig {
                threads,
                merge,
                verify: true,
                spill_queue_pages: queue,
                prefetch_batches: 1 + queue % 4,
                shard_batch_records: parcel,
            },
        );
        let mut iter = input.clone().into_iter();
        let report = par.sort_iter(&par_device, &mut iter, "out").unwrap();

        // Output equals the sorted input (hence the sequential output).
        let output = RunCursor::<Record>::open(&par_device, &RunHandle::Forward("out".into()))
            .unwrap()
            .read_all()
            .unwrap();
        prop_assert_eq!(output, sorted_copy(&input));
        prop_assert_eq!(report.report.records as usize, input.len());

        // Honest accounting: the shards own all generation writes, and the
        // phase's reads cover everything the shards read…
        prop_assert!(report.io_is_consistent());
        let sum = report.shard_io_sum();
        prop_assert_eq!(sum.counters.pages_written, report.report.run_generation.pages_written);
        prop_assert!(report.report.run_generation.pages_read >= sum.counters.pages_read);
        // …every shard that generated runs also reports the writes for
        // them…
        for shard in &report.shards {
            prop_assert!(shard.num_runs == 0 || shard.io.counters.pages_written > 0);
        }
        // …and dividing memory across shards can only produce more runs
        // and more spill pages than the single big heap, never fewer
        // (dropped I/O would show up here as an impossible decrease).
        prop_assert!(report.report.num_runs >= seq_report.num_runs || threads == 1);
        prop_assert!(
            report.report.run_generation.pages_written
                >= seq_report.run_generation.pages_written
        );
    }

    /// Polyphase merge and k-way merge agree on the same run set.
    #[test]
    fn polyphase_and_kway_agree(
        keys in prop::collection::vec(0u64..50_000, 1..1_200),
        memory in 8usize..120,
        tapes in 3usize..6,
    ) {
        let input = records_from(&keys);

        let run_and_merge = |use_polyphase: bool| -> Vec<Record> {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let namer = SpillNamer::new("prop-merge");
            let mut generator = LoadSortStore::new(memory);
            let mut iter = input.clone().into_iter();
            let set = generator.generate(&device, &namer, &mut iter).unwrap();
            if use_polyphase {
                polyphase_merge::<_, Record>(&device, &namer, set.runs, tapes, "out").unwrap();
            } else {
                KWayMerger::new(MergeConfig { fan_in: tapes.max(2), read_ahead_records: 64 })
                    .merge_into::<_, Record>(&device, &namer, set.runs, "out")
                    .unwrap();
            }
            RunCursor::<Record>::open(&device, &RunHandle::Forward("out".into()))
                .unwrap()
                .read_all()
                .unwrap()
        };

        let polyphase = run_and_merge(true);
        let kway = run_and_merge(false);
        prop_assert_eq!(&polyphase, &kway);
        prop_assert_eq!(polyphase, sorted_copy(&input));
    }
}
