//! Property-based tests for the external-sort substrate: every
//! run-generation algorithm and both merge strategies must sort arbitrary
//! inputs correctly, and the storage round trip must be lossless.

use proptest::prelude::*;
use twrs_extsort::{
    polyphase_merge, ExternalSorter, KWayMerger, LoadSortStore, MergeConfig, ReplacementSelection,
    RunCursor, RunGenerator, RunHandle, SorterConfig,
};
use twrs_storage::{SimDevice, SpillNamer};
use twrs_workloads::Record;

fn records_from(keys: &[u64]) -> Vec<Record> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| Record::new(*k, i as u64))
        .collect()
}

fn sorted_copy(records: &[Record]) -> Vec<Record> {
    let mut sorted = records.to_vec();
    sorted.sort_unstable();
    sorted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Classic replacement selection produces sorted runs covering exactly
    /// the input multiset for arbitrary keys and memory budgets.
    #[test]
    fn replacement_selection_runs_are_sorted_and_complete(
        keys in prop::collection::vec(0u64..100_000, 0..1_500),
        memory in 1usize..300,
    ) {
        let device = SimDevice::new();
        let namer = SpillNamer::new("prop-rs");
        let input = records_from(&keys);
        let mut generator = ReplacementSelection::new(memory);
        let mut iter = input.clone().into_iter();
        let set = generator.generate(&device, &namer, &mut iter).unwrap();
        prop_assert_eq!(set.records as usize, input.len());

        let mut all = Vec::new();
        for handle in &set.runs {
            let run = RunCursor::open(&device, handle).unwrap().read_all().unwrap();
            prop_assert!(run.windows(2).all(|w| w[0] <= w[1]));
            all.extend(run);
        }
        all.sort_unstable();
        prop_assert_eq!(all, sorted_copy(&input));
    }

    /// The end-to-end sorter (RS run generation + multi-pass k-way merge)
    /// equals a std sort for arbitrary inputs, fan-ins and read-ahead sizes.
    #[test]
    fn external_sorter_matches_std_sort(
        keys in prop::collection::vec(0u64..1_000_000, 0..1_500),
        memory in 2usize..200,
        fan_in in 2usize..8,
        read_ahead in 1usize..512,
    ) {
        let device = SimDevice::new();
        let input = records_from(&keys);
        let config = SorterConfig {
            merge: MergeConfig { fan_in, read_ahead_records: read_ahead },
            verify: true,
        };
        let mut sorter = ExternalSorter::with_config(ReplacementSelection::new(memory), config);
        let mut iter = input.clone().into_iter();
        let report = sorter.sort_iter(&device, &mut iter, "out").unwrap();
        prop_assert_eq!(report.records as usize, input.len());

        let output = RunCursor::open(&device, &RunHandle::Forward("out".into()))
            .unwrap()
            .read_all()
            .unwrap();
        prop_assert_eq!(output, sorted_copy(&input));
    }

    /// Polyphase merge and k-way merge agree on the same run set.
    #[test]
    fn polyphase_and_kway_agree(
        keys in prop::collection::vec(0u64..50_000, 1..1_200),
        memory in 8usize..120,
        tapes in 3usize..6,
    ) {
        let input = records_from(&keys);

        let run_and_merge = |use_polyphase: bool| -> Vec<Record> {
            let device = SimDevice::new();
            let namer = SpillNamer::new("prop-merge");
            let mut generator = LoadSortStore::new(memory);
            let mut iter = input.clone().into_iter();
            let set = generator.generate(&device, &namer, &mut iter).unwrap();
            if use_polyphase {
                polyphase_merge(&device, &namer, set.runs, tapes, "out").unwrap();
            } else {
                KWayMerger::new(MergeConfig { fan_in: tapes.max(2), read_ahead_records: 64 })
                    .merge_into(&device, &namer, set.runs, "out")
                    .unwrap();
            }
            RunCursor::open(&device, &RunHandle::Forward("out".into()))
                .unwrap()
                .read_all()
                .unwrap()
        };

        let polyphase = run_and_merge(true);
        let kway = run_and_merge(false);
        prop_assert_eq!(&polyphase, &kway);
        prop_assert_eq!(polyphase, sorted_copy(&input));
    }
}
