//! Error type for the external sorting pipeline.

use std::fmt;
use twrs_storage::StorageError;

/// Convenient result alias used throughout the sorting crates.
pub type Result<T> = std::result::Result<T, SortError>;

/// Errors raised while generating runs, merging or sorting.
#[derive(Debug)]
pub enum SortError {
    /// An error from the storage substrate.
    Storage(StorageError),
    /// The configuration is invalid (e.g. zero memory or a fan-in below 2).
    InvalidConfig(String),
    /// The sorted output failed a verification check.
    VerificationFailed(String),
    /// A [`RecordSink`](crate::sink::RecordSink) refused a record or was
    /// finished twice — e.g. a channel sink whose receiver hung up.
    SinkClosed(String),
    /// The job was canceled — while still queued, or cooperatively
    /// preempted at a phase/page boundary after it started running (see
    /// [`JobHandle::cancel`](crate::service::JobHandle::cancel) and
    /// [`CancellationToken`](crate::cancel::CancellationToken)).
    Canceled(String),
    /// The sort pipeline panicked while the job was running. The service
    /// worker catches the unwind, releases the job's memory lease and
    /// completes the job as `Failed` with this error; the engines' drop
    /// guards sweep the job's spill files during the unwind.
    JobPanicked(String),
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::Storage(e) => write!(f, "storage error: {e}"),
            SortError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SortError::VerificationFailed(msg) => write!(f, "verification failed: {msg}"),
            SortError::SinkClosed(msg) => write!(f, "record sink closed: {msg}"),
            SortError::Canceled(msg) => write!(f, "sort job canceled: {msg}"),
            SortError::JobPanicked(msg) => write!(f, "sort job panicked: {msg}"),
        }
    }
}

impl std::error::Error for SortError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SortError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SortError {
    fn from(e: StorageError) -> Self {
        SortError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert_and_chain() {
        let err: SortError = StorageError::NotFound("run".into()).into();
        assert!(matches!(err, SortError::Storage(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("run"));
    }

    #[test]
    fn config_errors_display_message() {
        let err = SortError::InvalidConfig("fan-in must be at least 2".into());
        assert!(err.to_string().contains("fan-in"));
    }

    #[test]
    fn sink_errors_display_message() {
        let err = SortError::SinkClosed("receiver hung up".into());
        assert!(err.to_string().contains("sink closed"));
        assert!(err.to_string().contains("receiver hung up"));
    }
}
