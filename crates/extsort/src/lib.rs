//! External merge-sort substrate: run generation baselines, the merge
//! phase, distribution sort and the end-to-end external sorter.
//!
//! The paper's contribution (two-way replacement selection, crate
//! `twrs-core`) is one *run-generation* algorithm inside a larger external
//! sorting pipeline (Chapter 2). This crate provides everything else that
//! pipeline needs, so 2WRS and the baselines can be compared apples to
//! apples:
//!
//! * [`run_generation`] — the [`run_generation::RunGenerator`] trait, the
//!   description of a generated run set and unified cursors over forward and
//!   reverse (Appendix A) run files;
//! * [`load_sort_store`] — the Load-Sort-Store baseline of §2.1.1;
//! * [`replacement_selection`] — classic replacement selection (Algorithm 1);
//! * [`merge`] — the k-way merge with a tournament (loser) tree, multi-pass
//!   merging with a configurable fan-in and per-run read-ahead (§2.1.2,
//!   §6.1.1), plus polyphase merge (Table 2.1);
//! * [`distribution_sort`] — external bucket/distribution sort (§2.2);
//! * [`sorter`] — [`sorter::ExternalSorter`], the run-generation + merge
//!   pipeline measured in Chapter 6, instrumented with per-phase I/O and
//!   timing reports;
//! * [`sort_job`] — [`sort_job::SortJob`], the builder-style front door
//!   that drives either sorter from one description of the work
//!   (`SortJob::new(g).on(&device).threads(n).run_iter(input, "out")`);
//! * [`sink`] — the [`sink::RecordSink`] output abstraction: the final
//!   merge pass drains into a device file, a `Vec`, a callback or a bounded
//!   channel (`run_iter`/`run_file` are thin wrappers over the file sink);
//! * [`stream`] — [`stream::SortedStream`], the pull-style counterpart: the
//!   final k-way merge is suspended and performed lazily on `next()`, so a
//!   streaming consumer pays **zero** final-output write I/O;
//! * [`service`] — [`service::SortService`], the multi-tenant front end:
//!   a bounded job queue with round-robin tenant fairness, an admission
//!   controller leasing per-job memory from one global budget
//!   (`sum(per-job budgets) <= global` at every rebalance), and a
//!   submission-handle API (`submit` → [`service::JobHandle`] with
//!   `wait`/`try_status`/`cancel`), with per-tenant
//!   [`service::Priority`] classes weighting both the dequeue
//!   rotation and the memory grant;
//! * [`cancel`] — [`cancel::CancellationToken`], the cooperative
//!   cancellation flag the service threads into the phase loops so a
//!   *running* job observes `cancel()` at the next phase/page boundary,
//!   cleans up its spill files and completes as `Canceled`;
//! * [`parallel`] — [`parallel::ParallelExternalSorter`], the sharded
//!   variant of the same pipeline: run generation fans out over
//!   budget-divided worker threads, spill writes move to dedicated writer
//!   threads behind bounded channels, and the merge prefetches every input
//!   run in the background. Produces byte-identical output to the
//!   sequential sorter.

#![warn(missing_docs)]

pub mod cancel;
pub mod distribution_sort;
pub mod error;
pub mod load_sort_store;
pub mod merge;
pub mod parallel;
pub mod replacement_selection;
pub mod run_generation;
pub mod service;
pub mod sink;
pub mod sort_job;
pub mod sorter;
pub mod stream;
pub mod sync;

pub use cancel::CancellationToken;
pub use error::{Result, SortError};
pub use load_sort_store::LoadSortStore;
pub use merge::kway::{KWayMerger, MergeConfig};
pub use merge::polyphase::{polyphase_merge, polyphase_schedule};
pub use parallel::{
    shard_budget, ParallelExternalSorter, ParallelSortReport, ParallelSorterConfig, ShardReport,
    ShardableGenerator, SpillWriteDevice,
};
pub use replacement_selection::ReplacementSelection;
pub use run_generation::{
    BudgetedGenerator, Device, ForwardRunBuilder, ReverseRunBuilder, RunCursor, RunGenerator,
    RunHandle, RunSet,
};
pub use service::{
    CompletedJob, GrantPolicy, JobHandle, JobStatus, LatencyPercentiles, MemoryArbiter, Priority,
    RebalanceEvent, RebalanceKind, ServiceConfig, ServiceReport, SortService, TenantReport,
};
pub use sink::{CallbackSink, ChannelSink, FileSink, RecordSink, VecSink};
pub use sort_job::{BoundSortJob, SortJob, SortJobReport};
pub use sorter::{ExternalSorter, FinalPassKind, PhaseReport, SortReport, SorterConfig};
pub use stream::SortedStream;
