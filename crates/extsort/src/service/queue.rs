//! Per-tenant job queues with weighted round-robin fairness.
//!
//! One busy tenant must not starve the others: jobs are kept in one FIFO
//! queue *per tenant*, and workers take jobs by rotating over the tenants
//! — each tenant is served up to `weight` consecutive jobs per turn of
//! the rotation (its *credits*), then the rotation advances. With every
//! weight at 1 this degenerates to plain round-robin: each pop serves the
//! next tenant (in first-appearance order) that has anything queued.
//! Within a tenant, jobs stay in submission order.

use std::collections::VecDeque;

/// One tenant's slot in the rotation.
struct TenantSlot<T> {
    tenant: String,
    queue: VecDeque<T>,
    /// Jobs this tenant may take per full turn of the rotation.
    weight: usize,
    /// Jobs left in the tenant's current turn.
    credit: usize,
}

/// Weighted round-robin queues, one per tenant.
pub(crate) struct TenantQueues<T> {
    /// Tenant slots in first-appearance order (the rotation order).
    queues: Vec<TenantSlot<T>>,
    /// Index of the tenant the next pop starts looking at.
    cursor: usize,
    len: usize,
}

impl<T> TenantQueues<T> {
    pub(crate) fn new() -> Self {
        TenantQueues {
            queues: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Total queued jobs across all tenants.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Appends a job to `tenant`'s queue (creating the slot on first
    /// sight). `weight` is the tenant's priority share — how many jobs it
    /// may take per turn of the rotation (clamped to at least 1).
    pub(crate) fn push(&mut self, tenant: &str, weight: usize, item: T) {
        let weight = weight.max(1);
        self.len += 1;
        if let Some(slot) = self.queues.iter_mut().find(|slot| slot.tenant == tenant) {
            slot.weight = weight;
            slot.queue.push_back(item);
        } else {
            let mut queue = VecDeque::new();
            queue.push_back(item);
            self.queues.push(TenantSlot {
                tenant: tenant.to_string(),
                queue,
                weight,
                credit: weight,
            });
        }
    }

    /// Pops the next job in weighted round-robin tenant order; `None`
    /// when every queue is empty.
    pub(crate) fn pop(&mut self) -> Option<T> {
        let n = self.queues.len();
        if n == 0 {
            return None;
        }
        for probe in 0..n {
            let index = (self.cursor + probe) % n;
            if probe > 0 {
                // The rotation skipped past this tenant (everyone before
                // it was empty); it starts a fresh turn.
                self.queues[index].credit = self.queues[index].weight;
            }
            let slot = &mut self.queues[index];
            let Some(item) = slot.queue.pop_front() else {
                continue;
            };
            slot.credit = slot.credit.saturating_sub(1);
            self.len -= 1;
            if slot.credit == 0 {
                // Turn exhausted: advance the rotation and hand the next
                // tenant a fresh turn.
                self.cursor = (index + 1) % n;
                let next = self.cursor;
                self.queues[next].credit = self.queues[next].weight;
            } else {
                self.cursor = index;
            }
            return Some(item);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut queues = TenantQueues::new();
        for job in ["a1", "a2", "a3"] {
            queues.push("alpha", 1, job);
        }
        for job in ["b1", "b2"] {
            queues.push("beta", 1, job);
        }
        assert_eq!(queues.len(), 5);
        let order: Vec<_> = std::iter::from_fn(|| queues.pop()).collect();
        // One tenant with a deep queue does not starve the other.
        assert_eq!(order, vec!["a1", "b1", "a2", "b2", "a3"]);
        assert_eq!(queues.len(), 0);
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut queues = TenantQueues::new();
        queues.push("only", 1, 1);
        queues.push("only", 1, 2);
        queues.push("only", 1, 3);
        assert_eq!(queues.pop(), Some(1));
        assert_eq!(queues.pop(), Some(2));
        assert_eq!(queues.pop(), Some(3));
        assert_eq!(queues.pop(), None);
    }

    #[test]
    fn late_tenants_join_the_rotation() {
        let mut queues = TenantQueues::new();
        queues.push("a", 1, "a1");
        queues.push("a", 1, "a2");
        assert_eq!(queues.pop(), Some("a1"));
        // "b" joins after the rotation wrapped back to "a"; it is served
        // on the next turn of the rotation, never starved.
        queues.push("b", 1, "b1");
        assert_eq!(queues.pop(), Some("a2"));
        assert_eq!(queues.pop(), Some("b1"));
        assert_eq!(queues.pop(), None);
    }

    #[test]
    fn weighted_tenants_get_proportional_turns() {
        let mut queues = TenantQueues::new();
        for job in ["a1", "a2", "a3", "a4", "a5", "a6"] {
            queues.push("gold", 3, job);
        }
        for job in ["b1", "b2"] {
            queues.push("bronze", 1, job);
        }
        let order: Vec<_> = std::iter::from_fn(|| queues.pop()).collect();
        // 3 gold jobs per bronze job, then gold drains alone.
        assert_eq!(order, vec!["a1", "a2", "a3", "b1", "a4", "a5", "a6", "b2"]);
    }

    #[test]
    fn weighted_tenant_with_shallow_queue_yields_its_turn() {
        let mut queues = TenantQueues::new();
        queues.push("gold", 3, "a1");
        for job in ["b1", "b2"] {
            queues.push("bronze", 1, job);
        }
        // Gold's turn ends early when its queue empties; bronze still
        // rotates normally afterwards.
        assert_eq!(queues.pop(), Some("a1"));
        assert_eq!(queues.pop(), Some("b1"));
        assert_eq!(queues.pop(), Some("b2"));
        assert_eq!(queues.pop(), None);
    }
}
