//! Per-tenant job queues with round-robin fairness.
//!
//! One busy tenant must not starve the others: jobs are kept in one FIFO
//! queue *per tenant*, and workers take jobs by rotating over the tenants
//! — each pop serves the next tenant (in first-appearance order) that has
//! anything queued, then advances the rotation. Within a tenant, jobs stay
//! in submission order.

use std::collections::VecDeque;

/// Round-robin queues, one per tenant.
pub(crate) struct TenantQueues<T> {
    /// Tenant queues in first-appearance order (the rotation order).
    queues: Vec<(String, VecDeque<T>)>,
    /// Index of the tenant the next pop starts looking at.
    cursor: usize,
    len: usize,
}

impl<T> TenantQueues<T> {
    pub(crate) fn new() -> Self {
        TenantQueues {
            queues: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Total queued jobs across all tenants.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Appends a job to `tenant`'s queue (creating it on first sight).
    pub(crate) fn push(&mut self, tenant: &str, item: T) {
        self.len += 1;
        if let Some((_, queue)) = self.queues.iter_mut().find(|(name, _)| name == tenant) {
            queue.push_back(item);
        } else {
            let mut queue = VecDeque::new();
            queue.push_back(item);
            self.queues.push((tenant.to_string(), queue));
        }
    }

    /// Pops the next job in round-robin tenant order; `None` when every
    /// queue is empty.
    pub(crate) fn pop(&mut self) -> Option<T> {
        if self.queues.is_empty() {
            return None;
        }
        for probe in 0..self.queues.len() {
            let index = (self.cursor + probe) % self.queues.len();
            if let Some(item) = self.queues[index].1.pop_front() {
                // The *next* pop starts at the tenant after the one just
                // served.
                self.cursor = (index + 1) % self.queues.len();
                self.len -= 1;
                return Some(item);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut queues = TenantQueues::new();
        for job in ["a1", "a2", "a3"] {
            queues.push("alpha", job);
        }
        for job in ["b1", "b2"] {
            queues.push("beta", job);
        }
        assert_eq!(queues.len(), 5);
        let order: Vec<_> = std::iter::from_fn(|| queues.pop()).collect();
        // One tenant with a deep queue does not starve the other.
        assert_eq!(order, vec!["a1", "b1", "a2", "b2", "a3"]);
        assert_eq!(queues.len(), 0);
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut queues = TenantQueues::new();
        queues.push("only", 1);
        queues.push("only", 2);
        queues.push("only", 3);
        assert_eq!(queues.pop(), Some(1));
        assert_eq!(queues.pop(), Some(2));
        assert_eq!(queues.pop(), Some(3));
        assert_eq!(queues.pop(), None);
    }

    #[test]
    fn late_tenants_join_the_rotation() {
        let mut queues = TenantQueues::new();
        queues.push("a", "a1");
        queues.push("a", "a2");
        assert_eq!(queues.pop(), Some("a1"));
        // "b" joins after the rotation wrapped back to "a"; it is served
        // on the next turn of the rotation, never starved.
        queues.push("b", "b1");
        assert_eq!(queues.pop(), Some("a2"));
        assert_eq!(queues.pop(), Some("b1"));
        assert_eq!(queues.pop(), None);
    }
}
