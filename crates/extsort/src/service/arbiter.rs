//! The global memory arbiter: leases page-budget grants to jobs.
//!
//! Every job asks for the memory its generator was built with; the arbiter
//! grants at most a *fair share* of the global budget and never more than
//! what is currently unleased, blocking the admitting worker until enough
//! memory frees up. The governing invariant — checked by an audit trail of
//! [`RebalanceEvent`]s — is
//!
//! ```text
//! sum(outstanding leases) <= global budget      (at every rebalance point)
//! ```
//!
//! Rebalance points are job start (lease) and job finish (release): grants
//! shrink as concurrency rises and grow back as jobs drain, using the same
//! [`shard_budget`] split the parallel sorter uses to divide one budget
//! across shards.
//!
//! Grants are *weighted*: a tenant with priority weight `w` counts as `w`
//! shares in the split, so a weight-3 tenant's cap is three times a
//! weight-1 tenant's (both clamped to the global budget). Weight 1
//! everywhere reproduces the unweighted formulas exactly.

use crate::cancel::CancellationToken;
use crate::error::{Result, SortError};
use crate::parallel::shard_budget;
use crate::sync::{lock_or_poison, wait_or_poison};
use std::sync::{Condvar, Mutex};

/// How the arbiter caps an individual grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantPolicy {
    /// A new job's grant is capped at the largest shard of an
    /// `(active + 1)`-way split of the global budget: the first job can
    /// take everything, the second arrival at most half, and so on.
    /// Adapts to load, but a job's grant depends on how many jobs were
    /// active at its admission instant.
    Adaptive,
    /// Every grant is capped at the largest shard of a fixed `shares`-way
    /// split of the global budget, regardless of current load. Grants —
    /// and therefore per-job I/O counters — are independent of admission
    /// timing, which is what the bench suite's deterministic baseline
    /// gate needs.
    FixedShare {
        /// Number of ways the global budget is notionally split.
        shares: usize,
    },
}

/// What happened at one rebalance point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceKind {
    /// A job was granted a lease (job start).
    Lease,
    /// A job returned its lease (job finish).
    Release,
}

/// One entry of the arbiter's audit trail, recorded at every rebalance
/// point so tests (and the bench suite) can check the lease invariant at
/// each of them.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceEvent {
    /// Lease or release.
    pub kind: RebalanceKind,
    /// What the job originally asked for (its generator's budget).
    pub requested: usize,
    /// What the arbiter granted (for a release: what is being returned).
    pub granted: usize,
    /// Total outstanding leases *after* this event.
    pub leased_after: usize,
    /// Number of jobs holding leases *after* this event.
    pub active_after: usize,
}

struct ArbiterState {
    leased: usize,
    active: usize,
    /// Sum of the priority weights of the jobs holding leases; equals
    /// `active` when every tenant runs at the default weight.
    active_weight: usize,
    max_leased: usize,
    events: Vec<RebalanceEvent>,
}

/// The global memory-budget arbiter of a
/// [`SortService`](crate::service::SortService).
pub struct MemoryArbiter {
    global: usize,
    policy: GrantPolicy,
    state: Mutex<ArbiterState>,
    freed: Condvar,
}

impl MemoryArbiter {
    /// Creates an arbiter over `global` records of memory.
    pub fn new(global: usize, policy: GrantPolicy) -> Result<Self> {
        if global == 0 {
            return Err(SortError::InvalidConfig(
                "the service needs a global memory budget of at least one record".into(),
            ));
        }
        if let GrantPolicy::FixedShare { shares: 0 } = policy {
            return Err(SortError::InvalidConfig(
                "GrantPolicy::FixedShare needs at least one share".into(),
            ));
        }
        Ok(MemoryArbiter {
            global,
            policy,
            state: Mutex::new(ArbiterState {
                leased: 0,
                active: 0,
                active_weight: 0,
                max_leased: 0,
                events: Vec::new(),
            }),
            freed: Condvar::new(),
        })
    }

    /// The global budget, in records.
    pub fn global(&self) -> usize {
        self.global
    }

    /// A `weight`-share cap given `active_weight` shares already leased.
    /// The weighted budget is clamped to the global so a heavy tenant's
    /// `want` can never exceed what a fully drained arbiter could grant —
    /// otherwise a lone high-priority job would block forever.
    fn cap(&self, active_weight: usize, weight: usize) -> usize {
        match self.policy {
            // Largest shard of the split — shard 0 gets base + remainder.
            GrantPolicy::Adaptive => shard_budget(
                self.global.saturating_mul(weight),
                0,
                active_weight + weight,
            )
            .min(self.global),
            GrantPolicy::FixedShare { shares } => {
                shard_budget(self.global.saturating_mul(weight), 0, shares).min(self.global)
            }
        }
    }

    /// Blocks until a grant is available and leases it. The grant is at
    /// least one record and at most `min(requested, fair share)`; the sum
    /// of outstanding leases never exceeds the global budget. Equivalent
    /// to [`lease_cancelable`](MemoryArbiter::lease_cancelable) at weight
    /// 1 with a token nobody cancels.
    pub fn lease(&self, requested: usize) -> usize {
        self.lease_cancelable(requested, 1, &CancellationToken::new())
            // twrs-lint: allow(no-lib-panic) a fresh token is never canceled
            .expect("a fresh token is never canceled")
    }

    /// Like [`lease`](MemoryArbiter::lease), but the grant is a
    /// `weight`-share cut of the budget and the wait aborts — returning
    /// `None` without booking anything — once `cancel` trips. Cancellation
    /// while blocked relies on the canceler calling the crate-private
    /// `notify_waiters` after firing the token.
    pub fn lease_cancelable(
        &self,
        requested: usize,
        weight: usize,
        cancel: &CancellationToken,
    ) -> Option<usize> {
        let weight = weight.max(1);
        let mut state = lock_or_poison(&self.state);
        loop {
            if cancel.is_canceled() {
                return None;
            }
            // Recomputed on every wake-up: the fair share moves with the
            // total weight of active jobs.
            let want = requested.clamp(1, self.cap(state.active_weight, weight));
            let available = self.global - state.leased;
            if want <= available {
                state.leased += want;
                state.active += 1;
                state.active_weight += weight;
                state.max_leased = state.max_leased.max(state.leased);
                let event = RebalanceEvent {
                    kind: RebalanceKind::Lease,
                    requested,
                    granted: want,
                    leased_after: state.leased,
                    active_after: state.active,
                };
                state.events.push(event);
                return Some(want);
            }
            state = wait_or_poison(&self.freed, state);
        }
    }

    /// Returns a lease obtained from [`lease`](MemoryArbiter::lease) and
    /// wakes every waiting admission.
    pub fn release(&self, granted: usize) {
        self.release_weighted(granted, 1);
    }

    /// Returns a lease obtained from
    /// [`lease_cancelable`](MemoryArbiter::lease_cancelable) with the same
    /// `weight` and wakes every waiting admission.
    pub fn release_weighted(&self, granted: usize, weight: usize) {
        let weight = weight.max(1);
        let mut state = lock_or_poison(&self.state);
        debug_assert!(state.leased >= granted && state.active >= 1);
        state.leased = state.leased.saturating_sub(granted);
        state.active = state.active.saturating_sub(1);
        state.active_weight = state.active_weight.saturating_sub(weight);
        let event = RebalanceEvent {
            kind: RebalanceKind::Release,
            requested: granted,
            granted,
            leased_after: state.leased,
            active_after: state.active,
        };
        state.events.push(event);
        self.freed.notify_all();
    }

    /// Wakes every blocked [`lease_cancelable`] so it can re-check its
    /// token. Takes the state lock first: a waiter sits either *holding*
    /// the lock (about to check the token) or *inside* the condvar wait,
    /// so a notify issued under the lock can never slip into the gap
    /// between its check and its wait.
    ///
    /// [`lease_cancelable`]: MemoryArbiter::lease_cancelable
    pub(crate) fn notify_waiters(&self) {
        let _state = lock_or_poison(&self.state);
        self.freed.notify_all();
    }

    /// Total outstanding leases right now.
    pub fn leased(&self) -> usize {
        lock_or_poison(&self.state).leased
    }

    /// High-water mark of outstanding leases over the arbiter's lifetime.
    pub fn max_leased(&self) -> usize {
        lock_or_poison(&self.state).max_leased
    }

    /// The audit trail so far, in rebalance order.
    pub fn events(&self) -> Vec<RebalanceEvent> {
        lock_or_poison(&self.state).events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_job_gets_everything_later_jobs_get_fair_shares() {
        let arbiter = MemoryArbiter::new(900, GrantPolicy::Adaptive).unwrap();
        let a = arbiter.lease(900);
        // No other active jobs: the whole global budget is on offer.
        assert_eq!(a, 900);
        arbiter.release(a);
        let a = arbiter.lease(100);
        // Requested less than the fair share: get what was asked.
        assert_eq!(a, 100);
        let b = arbiter.lease(900);
        // One job active: capped at half the global budget.
        assert_eq!(b, 450);
        let c = arbiter.lease(900);
        // Two jobs active: capped at a third.
        assert_eq!(c, 300);
        assert_eq!(arbiter.leased(), 100 + 450 + 300);
        assert!(arbiter.leased() <= arbiter.global());
        arbiter.release(b);
        arbiter.release(c);
        arbiter.release(a);
        assert_eq!(arbiter.leased(), 0);
    }

    #[test]
    fn fixed_share_grants_ignore_load() {
        let arbiter = MemoryArbiter::new(1000, GrantPolicy::FixedShare { shares: 4 }).unwrap();
        let a = arbiter.lease(1000);
        let b = arbiter.lease(1000);
        assert_eq!(a, 250);
        assert_eq!(b, 250);
        arbiter.release(a);
        assert_eq!(arbiter.lease(1000), 250);
    }

    #[test]
    fn lease_blocks_until_memory_frees() {
        let arbiter =
            Arc::new(MemoryArbiter::new(100, GrantPolicy::FixedShare { shares: 1 }).unwrap());
        let first = arbiter.lease(100);
        assert_eq!(first, 100);
        let waiter = {
            let arbiter = arbiter.clone();
            std::thread::spawn(move || {
                let grant = arbiter.lease(80);
                arbiter.release(grant);
                grant
            })
        };
        // Give the waiter time to block, then free the budget.
        std::thread::sleep(std::time::Duration::from_millis(20));
        arbiter.release(first);
        assert_eq!(waiter.join().unwrap(), 80);
        assert_eq!(arbiter.leased(), 0);
        assert_eq!(arbiter.max_leased(), 100);
    }

    #[test]
    fn every_event_respects_the_invariant() {
        let arbiter = MemoryArbiter::new(500, GrantPolicy::Adaptive).unwrap();
        let a = arbiter.lease(400);
        let c = arbiter.lease(50);
        arbiter.release(a);
        let b = arbiter.lease(400);
        arbiter.release(c);
        arbiter.release(b);
        let events = arbiter.events();
        assert_eq!(events.len(), 6);
        for event in &events {
            assert!(
                event.leased_after <= arbiter.global(),
                "lease invariant violated at {event:?}"
            );
        }
        assert_eq!(events.last().unwrap().leased_after, 0);
    }

    #[test]
    fn zero_budget_is_rejected() {
        assert!(MemoryArbiter::new(0, GrantPolicy::Adaptive).is_err());
        assert!(MemoryArbiter::new(10, GrantPolicy::FixedShare { shares: 0 }).is_err());
    }

    #[test]
    fn weighted_grants_scale_with_priority() {
        // FixedShare: a weight-3 tenant's cap is 3 of 4 shares, a
        // weight-1 tenant's is 1 of 4 — and both fit concurrently.
        let arbiter = MemoryArbiter::new(240, GrantPolicy::FixedShare { shares: 4 }).unwrap();
        let high = arbiter
            .lease_cancelable(240, 3, &CancellationToken::new())
            .unwrap();
        let low = arbiter
            .lease_cancelable(240, 1, &CancellationToken::new())
            .unwrap();
        assert_eq!(high, 180);
        assert_eq!(low, 60);
        assert!(high >= 2 * low);
        arbiter.release_weighted(high, 3);
        arbiter.release_weighted(low, 1);
        assert_eq!(arbiter.leased(), 0);

        // Adaptive: with one weight-1 job active, a weight-3 arrival gets
        // 3 of the 4 outstanding shares; a lone heavy job is still capped
        // at the global budget.
        let arbiter = MemoryArbiter::new(240, GrantPolicy::Adaptive).unwrap();
        let alone = arbiter
            .lease_cancelable(500, 3, &CancellationToken::new())
            .unwrap();
        assert_eq!(alone, 240);
        arbiter.release_weighted(alone, 3);
        let low = arbiter
            .lease_cancelable(30, 1, &CancellationToken::new())
            .unwrap();
        let high = arbiter
            .lease_cancelable(240, 3, &CancellationToken::new())
            .unwrap();
        assert_eq!(high, shard_budget(240 * 3, 0, 4));
        arbiter.release_weighted(high, 3);
        arbiter.release_weighted(low, 1);
    }

    #[test]
    fn a_canceled_waiter_unblocks_without_a_lease() {
        let arbiter =
            Arc::new(MemoryArbiter::new(100, GrantPolicy::FixedShare { shares: 1 }).unwrap());
        let first = arbiter.lease(100);
        let token = CancellationToken::new();
        let waiter = {
            let arbiter = arbiter.clone();
            let token = token.clone();
            std::thread::spawn(move || arbiter.lease_cancelable(80, 1, &token))
        };
        // Let the waiter block, then cancel and wake it: it must return
        // None with nothing booked, while the original lease stands.
        std::thread::sleep(std::time::Duration::from_millis(20));
        token.cancel();
        arbiter.notify_waiters();
        assert_eq!(waiter.join().unwrap(), None);
        assert_eq!(arbiter.leased(), 100);
        arbiter.release(first);
        assert_eq!(arbiter.leased(), 0);
    }
}
