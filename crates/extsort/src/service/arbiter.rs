//! The global memory arbiter: leases page-budget grants to jobs.
//!
//! Every job asks for the memory its generator was built with; the arbiter
//! grants at most a *fair share* of the global budget and never more than
//! what is currently unleased, blocking the admitting worker until enough
//! memory frees up. The governing invariant — checked by an audit trail of
//! [`RebalanceEvent`]s — is
//!
//! ```text
//! sum(outstanding leases) <= global budget      (at every rebalance point)
//! ```
//!
//! Rebalance points are job start (lease) and job finish (release): grants
//! shrink as concurrency rises and grow back as jobs drain, using the same
//! [`shard_budget`] split the parallel sorter uses to divide one budget
//! across shards.

use crate::error::{Result, SortError};
use crate::parallel::shard_budget;
use std::sync::{Condvar, Mutex};

/// How the arbiter caps an individual grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantPolicy {
    /// A new job's grant is capped at the largest shard of an
    /// `(active + 1)`-way split of the global budget: the first job can
    /// take everything, the second arrival at most half, and so on.
    /// Adapts to load, but a job's grant depends on how many jobs were
    /// active at its admission instant.
    Adaptive,
    /// Every grant is capped at the largest shard of a fixed `shares`-way
    /// split of the global budget, regardless of current load. Grants —
    /// and therefore per-job I/O counters — are independent of admission
    /// timing, which is what the bench suite's deterministic baseline
    /// gate needs.
    FixedShare {
        /// Number of ways the global budget is notionally split.
        shares: usize,
    },
}

/// What happened at one rebalance point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceKind {
    /// A job was granted a lease (job start).
    Lease,
    /// A job returned its lease (job finish).
    Release,
}

/// One entry of the arbiter's audit trail, recorded at every rebalance
/// point so tests (and the bench suite) can check the lease invariant at
/// each of them.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceEvent {
    /// Lease or release.
    pub kind: RebalanceKind,
    /// What the job originally asked for (its generator's budget).
    pub requested: usize,
    /// What the arbiter granted (for a release: what is being returned).
    pub granted: usize,
    /// Total outstanding leases *after* this event.
    pub leased_after: usize,
    /// Number of jobs holding leases *after* this event.
    pub active_after: usize,
}

struct ArbiterState {
    leased: usize,
    active: usize,
    max_leased: usize,
    events: Vec<RebalanceEvent>,
}

/// The global memory-budget arbiter of a
/// [`SortService`](crate::service::SortService).
pub struct MemoryArbiter {
    global: usize,
    policy: GrantPolicy,
    state: Mutex<ArbiterState>,
    freed: Condvar,
}

impl MemoryArbiter {
    /// Creates an arbiter over `global` records of memory.
    pub fn new(global: usize, policy: GrantPolicy) -> Result<Self> {
        if global == 0 {
            return Err(SortError::InvalidConfig(
                "the service needs a global memory budget of at least one record".into(),
            ));
        }
        if let GrantPolicy::FixedShare { shares: 0 } = policy {
            return Err(SortError::InvalidConfig(
                "GrantPolicy::FixedShare needs at least one share".into(),
            ));
        }
        Ok(MemoryArbiter {
            global,
            policy,
            state: Mutex::new(ArbiterState {
                leased: 0,
                active: 0,
                max_leased: 0,
                events: Vec::new(),
            }),
            freed: Condvar::new(),
        })
    }

    /// The global budget, in records.
    pub fn global(&self) -> usize {
        self.global
    }

    fn cap(&self, active: usize) -> usize {
        match self.policy {
            // Largest shard of the split — shard 0 gets base + remainder.
            GrantPolicy::Adaptive => shard_budget(self.global, 0, active + 1),
            GrantPolicy::FixedShare { shares } => shard_budget(self.global, 0, shares),
        }
    }

    /// Blocks until a grant is available and leases it. The grant is at
    /// least one record and at most `min(requested, fair share)`; the sum
    /// of outstanding leases never exceeds the global budget.
    pub fn lease(&self, requested: usize) -> usize {
        let mut state = self.state.lock().unwrap();
        loop {
            // Recomputed on every wake-up: the fair share moves with the
            // number of active jobs.
            let want = requested.clamp(1, self.cap(state.active));
            let available = self.global - state.leased;
            if want <= available {
                state.leased += want;
                state.active += 1;
                state.max_leased = state.max_leased.max(state.leased);
                let event = RebalanceEvent {
                    kind: RebalanceKind::Lease,
                    requested,
                    granted: want,
                    leased_after: state.leased,
                    active_after: state.active,
                };
                state.events.push(event);
                return want;
            }
            state = self.freed.wait(state).unwrap();
        }
    }

    /// Returns a lease obtained from [`lease`](MemoryArbiter::lease) and
    /// wakes every waiting admission.
    pub fn release(&self, granted: usize) {
        let mut state = self.state.lock().unwrap();
        debug_assert!(state.leased >= granted && state.active >= 1);
        state.leased = state.leased.saturating_sub(granted);
        state.active = state.active.saturating_sub(1);
        let event = RebalanceEvent {
            kind: RebalanceKind::Release,
            requested: granted,
            granted,
            leased_after: state.leased,
            active_after: state.active,
        };
        state.events.push(event);
        self.freed.notify_all();
    }

    /// Total outstanding leases right now.
    pub fn leased(&self) -> usize {
        self.state.lock().unwrap().leased
    }

    /// High-water mark of outstanding leases over the arbiter's lifetime.
    pub fn max_leased(&self) -> usize {
        self.state.lock().unwrap().max_leased
    }

    /// The audit trail so far, in rebalance order.
    pub fn events(&self) -> Vec<RebalanceEvent> {
        self.state.lock().unwrap().events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_job_gets_everything_later_jobs_get_fair_shares() {
        let arbiter = MemoryArbiter::new(900, GrantPolicy::Adaptive).unwrap();
        let a = arbiter.lease(900);
        // No other active jobs: the whole global budget is on offer.
        assert_eq!(a, 900);
        arbiter.release(a);
        let a = arbiter.lease(100);
        // Requested less than the fair share: get what was asked.
        assert_eq!(a, 100);
        let b = arbiter.lease(900);
        // One job active: capped at half the global budget.
        assert_eq!(b, 450);
        let c = arbiter.lease(900);
        // Two jobs active: capped at a third.
        assert_eq!(c, 300);
        assert_eq!(arbiter.leased(), 100 + 450 + 300);
        assert!(arbiter.leased() <= arbiter.global());
        arbiter.release(b);
        arbiter.release(c);
        arbiter.release(a);
        assert_eq!(arbiter.leased(), 0);
    }

    #[test]
    fn fixed_share_grants_ignore_load() {
        let arbiter = MemoryArbiter::new(1000, GrantPolicy::FixedShare { shares: 4 }).unwrap();
        let a = arbiter.lease(1000);
        let b = arbiter.lease(1000);
        assert_eq!(a, 250);
        assert_eq!(b, 250);
        arbiter.release(a);
        assert_eq!(arbiter.lease(1000), 250);
    }

    #[test]
    fn lease_blocks_until_memory_frees() {
        let arbiter =
            Arc::new(MemoryArbiter::new(100, GrantPolicy::FixedShare { shares: 1 }).unwrap());
        let first = arbiter.lease(100);
        assert_eq!(first, 100);
        let waiter = {
            let arbiter = arbiter.clone();
            std::thread::spawn(move || {
                let grant = arbiter.lease(80);
                arbiter.release(grant);
                grant
            })
        };
        // Give the waiter time to block, then free the budget.
        std::thread::sleep(std::time::Duration::from_millis(20));
        arbiter.release(first);
        assert_eq!(waiter.join().unwrap(), 80);
        assert_eq!(arbiter.leased(), 0);
        assert_eq!(arbiter.max_leased(), 100);
    }

    #[test]
    fn every_event_respects_the_invariant() {
        let arbiter = MemoryArbiter::new(500, GrantPolicy::Adaptive).unwrap();
        let a = arbiter.lease(400);
        let c = arbiter.lease(50);
        arbiter.release(a);
        let b = arbiter.lease(400);
        arbiter.release(c);
        arbiter.release(b);
        let events = arbiter.events();
        assert_eq!(events.len(), 6);
        for event in &events {
            assert!(
                event.leased_after <= arbiter.global(),
                "lease invariant violated at {event:?}"
            );
        }
        assert_eq!(events.last().unwrap().leased_after, 0);
    }

    #[test]
    fn zero_budget_is_rejected() {
        assert!(MemoryArbiter::new(0, GrantPolicy::Adaptive).is_err());
        assert!(MemoryArbiter::new(10, GrantPolicy::FixedShare { shares: 0 }).is_err());
    }
}
