//! `SortService`: many concurrent [`SortJob`]s under one global memory
//! budget, behind a submission-handle API.
//!
//! The rest of this crate sorts one job at a time; a production deployment
//! faces a *stream* of jobs from many tenants, all competing for the same
//! memory. [`SortService`] turns the single-shot library into a servable
//! system:
//!
//! * a **bounded job queue** with per-tenant weighted round-robin
//!   fairness (one deep-queued tenant cannot starve the others; a
//!   [`Priority`]-weighted tenant gets proportionally more turns) and
//!   backpressure — when the queue is full,
//!   [`submit`](SortService::submit) blocks until a worker drains it;
//! * an **admission controller** backed by a global [`MemoryArbiter`]:
//!   each job's generator budget is re-leased at admission through
//!   [`BudgetedGenerator::with_budget`], shrunk to a fair share of the
//!   global budget so that `sum(per-job budgets) <= global budget` holds
//!   at every rebalance point (job start and finish) — the same
//!   [`shard_budget`](crate::parallel::shard_budget) arithmetic
//!   `TwrsConfig::for_shard`/`split_across` use to divide one budget
//!   across parallel shards;
//! * a **worker pool** running up to `workers` jobs in flight, each on a
//!   private [`ScopedDevice`] scope of its submitted device, so per-job
//!   (and per-tenant) I/O attribution survives arbitrary interleaving;
//! * a **submission-handle API** — [`submit`](SortService::submit)
//!   returns a [`JobHandle`] with [`wait`](JobHandle::wait),
//!   [`try_status`](JobHandle::try_status) and
//!   [`cancel`](JobHandle::cancel) — and a [`ServiceReport`] aggregating
//!   p50/p95/p99 queue, sort and cancellation latency plus per-tenant
//!   counters;
//! * **cooperative preemption** — [`cancel`](JobHandle::cancel) reaches
//!   *running* jobs through a [`CancellationToken`] threaded into the
//!   sort pipeline's phase loops: the job stops at the next phase/page
//!   boundary, removes its spill files and partial output, releases its
//!   memory lease, and completes as [`Canceled`](JobStatus::Canceled).
//!
//! Every job funnels through the same internal
//! `BoundSortJob::execute` spine the direct `run_*`/`sink_*`/`stream_*`
//! methods use, so a service job is byte-identical to the same job run
//! directly (sorted output does not depend on the memory budget, only the
//! run/merge counts do).
//!
//! ```
//! use twrs_extsort::service::{ServiceConfig, SortService};
//! use twrs_extsort::{ReplacementSelection, SortJob};
//! use twrs_storage::{ModelId, SimDevice};
//! use twrs_workloads::{Distribution, DistributionKind};
//!
//! let device = SimDevice::with_model(ModelId::Hdd7200);
//! let service = SortService::new(ServiceConfig::new(300).workers(2)).unwrap();
//! let handles: Vec<_> = (0..4)
//!     .map(|i| {
//!         let input = Distribution::new(DistributionKind::RandomUniform, 2_000, i);
//!         let job = SortJob::new(ReplacementSelection::new(200)).on(&device);
//!         service
//!             .submit(format!("tenant-{}", i % 2), job, input.records(), format!("out-{i}"))
//!             .unwrap()
//!     })
//!     .collect();
//! for handle in handles {
//!     let done = handle.wait().unwrap();
//!     assert_eq!(done.report.report.records, 2_000);
//!     assert!(done.granted_memory <= 300);
//! }
//! let report = service.shutdown();
//! assert_eq!(report.jobs_completed, 4);
//! assert!(report.max_leased <= report.global_memory_records);
//! ```

pub mod arbiter;
pub mod handle;
mod queue;

pub use arbiter::{GrantPolicy, MemoryArbiter, RebalanceEvent, RebalanceKind};
pub use handle::{CompletedJob, JobHandle, JobStatus};

use crate::cancel::CancellationToken;
use crate::error::{Result, SortError};
use crate::parallel::ShardableGenerator;
use crate::run_generation::{BudgetedGenerator, Device};
use crate::sink::RecordSink;
use crate::sort_job::{BoundSortJob, SortJob, SortJobReport};
use crate::sync::{lock_or_poison, wait_or_poison};
use handle::{CompletionGuard, JobState};
use queue::TenantQueues;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use twrs_storage::{IoStatsSnapshot, ScopedDevice, SortableRecord};

/// A tenant's priority class: its *weight* in both schedulers.
///
/// A weight-`w` tenant takes `w` consecutive jobs per turn of the queue
/// rotation and counts as `w` shares in the arbiter's grant split, so it
/// both dequeues more often and gets a proportionally larger memory grant.
/// The default weight is 1 (every tenant equal), which reproduces the
/// unweighted scheduling exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Priority {
    weight: usize,
}

impl Priority {
    /// The default class: weight 1.
    pub const NORMAL: Priority = Priority { weight: 1 };
    /// A convenient elevated class: weight 3.
    pub const HIGH: Priority = Priority { weight: 3 };

    /// A priority with an explicit weight (clamped to at least 1).
    pub fn with_weight(weight: usize) -> Self {
        Priority {
            weight: weight.max(1),
        }
    }

    /// The scheduling weight.
    pub fn weight(&self) -> usize {
        self.weight
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

/// Configuration of a [`SortService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads = jobs in flight at once.
    pub workers: usize,
    /// Global memory budget (in records) the arbiter leases from.
    pub global_memory_records: usize,
    /// Maximum queued (not yet admitted) jobs across all tenants;
    /// [`SortService::submit`] blocks while the queue is full.
    pub queue_capacity: usize,
    /// How individual grants are capped.
    pub grant_policy: GrantPolicy,
    /// Per-tenant priority classes; tenants not listed run at
    /// [`Priority::NORMAL`].
    pub tenant_priorities: BTreeMap<String, Priority>,
}

impl ServiceConfig {
    /// A service with `global_memory_records` of leasable memory, two
    /// workers, a 64-job queue, the adaptive grant policy and every
    /// tenant at [`Priority::NORMAL`].
    pub fn new(global_memory_records: usize) -> Self {
        ServiceConfig {
            workers: 2,
            global_memory_records,
            queue_capacity: 64,
            grant_policy: GrantPolicy::Adaptive,
            tenant_priorities: BTreeMap::new(),
        }
    }

    /// Sets the number of worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the grant policy.
    pub fn grant_policy(mut self, policy: GrantPolicy) -> Self {
        self.grant_policy = policy;
        self
    }

    /// Assigns `tenant` a [`Priority`] class: its weight multiplies both
    /// its share of queue turns and its memory-grant cap.
    pub fn tenant_priority(mut self, tenant: impl Into<String>, priority: Priority) -> Self {
        self.tenant_priorities.insert(tenant.into(), priority);
        self
    }
}

/// What a job thunk hands back to its worker.
struct JobOutput {
    report: SortJobReport,
    io: IoStatsSnapshot,
}

type JobThunk = Box<dyn FnOnce(usize) -> Result<JobOutput> + Send>;

struct QueuedJob {
    state: Arc<JobState>,
    thunk: JobThunk,
    requested: usize,
    submitted: Instant,
    tenant: String,
    /// The job's cooperative token — shared with the handle (which fires
    /// it) and with the sort pipeline inside the thunk (which polls it).
    cancel: CancellationToken,
}

struct QueueState {
    queues: TenantQueues<QueuedJob>,
    shutdown: bool,
}

#[derive(Default)]
struct TenantAccum {
    jobs: usize,
    records: u64,
    io: Option<IoStatsSnapshot>,
}

#[derive(Default)]
struct ServiceStats {
    queue_waits: Vec<Duration>,
    sort_walls: Vec<Duration>,
    completed: usize,
    failed: usize,
    /// Canceled before the sort started (still queued, at admission, or
    /// while waiting for a memory lease).
    canceled_queued: usize,
    /// Cooperatively preempted after the sort started.
    canceled_running: usize,
    /// Request→completion latency of explicitly canceled jobs.
    cancel_latencies: Vec<Duration>,
    tenants: BTreeMap<String, TenantAccum>,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Workers wait here for jobs.
    job_ready: Condvar,
    /// Submitters wait here for queue space.
    space_free: Condvar,
    arbiter: MemoryArbiter,
    stats: Mutex<ServiceStats>,
    queue_capacity: usize,
    /// Tenant → scheduling weight (absent = 1), fixed at construction.
    priorities: BTreeMap<String, usize>,
}

impl Shared {
    fn weight_of(&self, tenant: &str) -> usize {
        self.priorities.get(tenant).copied().unwrap_or(1)
    }

    /// Books a canceled-before-running job, with a latency sample when
    /// the cancellation was an explicit request (shutdown cancels have no
    /// request timestamp).
    fn record_canceled_queued(&self, state: &JobState) {
        let mut stats = lock_or_poison(&self.stats);
        stats.canceled_queued += 1;
        if let Some(latency) = state.time_since_cancel_request() {
            stats.cancel_latencies.push(latency);
        }
    }
}

/// Latency percentiles over one family of duration samples
/// (nearest-rank; all zero when there were no samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Largest observed sample.
    pub max: Duration,
}

impl LatencyPercentiles {
    /// Nearest-rank percentiles of `samples`.
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencyPercentiles {
                p50: Duration::ZERO,
                p95: Duration::ZERO,
                p99: Duration::ZERO,
                max: Duration::ZERO,
            };
        }
        samples.sort_unstable();
        let rank = |p: f64| {
            let n = samples.len();
            let index = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
            samples[index]
        };
        LatencyPercentiles {
            p50: rank(50.0),
            p95: rank(95.0),
            p99: rank(99.0),
            max: samples.last().copied().unwrap_or_default(),
        }
    }
}

/// Per-tenant rollup of everything the tenant's jobs did.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Successfully completed jobs.
    pub jobs: usize,
    /// Records sorted across those jobs.
    pub records: u64,
    /// The tenant's total I/O, merged from each job's
    /// [`ScopedDevice`] attribution (`None` when the tenant completed no
    /// jobs).
    pub io: Option<IoStatsSnapshot>,
}

/// Aggregate report of a service's lifetime, returned by
/// [`SortService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Jobs that finished successfully.
    pub jobs_completed: usize,
    /// Jobs that finished with an error.
    pub jobs_failed: usize,
    /// All canceled jobs:
    /// [`jobs_canceled_queued`](ServiceReport::jobs_canceled_queued) `+`
    /// [`jobs_canceled_running`](ServiceReport::jobs_canceled_running).
    pub jobs_canceled: usize,
    /// Jobs canceled before their sort started — while queued, at
    /// admission, while waiting for a memory lease, or drained by
    /// shutdown.
    pub jobs_canceled_queued: usize,
    /// Running jobs cooperatively preempted at a phase/page boundary.
    pub jobs_canceled_running: usize,
    /// Queue + admission latency percentiles (submission → memory lease
    /// held).
    pub queue_latency: LatencyPercentiles,
    /// Sort execution latency percentiles.
    pub sort_latency: LatencyPercentiles,
    /// Cancellation latency percentiles: [`JobHandle::cancel`] request →
    /// the job completing as Canceled (all zero when nothing was
    /// explicitly canceled).
    pub cancel_latency: LatencyPercentiles,
    /// Per-tenant rollups, in tenant-name order.
    pub tenants: Vec<TenantReport>,
    /// The arbiter's global budget.
    pub global_memory_records: usize,
    /// High-water mark of simultaneously leased memory; always `<=`
    /// [`global_memory_records`](ServiceReport::global_memory_records).
    pub max_leased: usize,
    /// The arbiter's full audit trail (one entry per rebalance point).
    pub rebalances: Vec<RebalanceEvent>,
}

/// A pool of workers executing submitted [`SortJob`]s under one global
/// memory budget. See the [module documentation](self).
pub struct SortService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl SortService {
    /// Starts the service: spawns the worker pool and opens the queue.
    pub fn new(config: ServiceConfig) -> Result<Self> {
        if config.workers == 0 {
            return Err(SortError::InvalidConfig(
                "the service needs at least one worker".into(),
            ));
        }
        if config.queue_capacity == 0 {
            return Err(SortError::InvalidConfig(
                "the service needs a queue capacity of at least one job".into(),
            ));
        }
        let arbiter = MemoryArbiter::new(config.global_memory_records, config.grant_policy)?;
        let priorities = config
            .tenant_priorities
            .iter()
            .map(|(tenant, priority)| (tenant.clone(), priority.weight()))
            .collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queues: TenantQueues::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            space_free: Condvar::new(),
            arbiter,
            stats: Mutex::new(ServiceStats::default()),
            queue_capacity: config.queue_capacity,
            priorities,
        });
        let mut workers = Vec::with_capacity(config.workers);
        for index in 0..config.workers {
            let worker_shared = shared.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("twrs-sort-worker-{index}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Wake and join the workers that did start, then report
                    // the spawn failure instead of panicking mid-construction.
                    lock_or_poison(&shared.state).shutdown = true;
                    shared.job_ready.notify_all();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(SortError::Storage(twrs_storage::StorageError::Io(e)));
                }
            }
        }
        Ok(SortService {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        })
    }

    /// Submits a job that sorts `input` into the forward run file `output`
    /// on the job's bound device, under `tenant`'s queue. Returns at once
    /// with a [`JobHandle`] — unless the queue is full, in which case the
    /// call blocks until a worker makes room (backpressure).
    ///
    /// Concurrent jobs sharing one device must use distinct `output`
    /// names: the output name also namespaces the job's spill files.
    pub fn submit<G, D, R, I>(
        &self,
        tenant: impl Into<String>,
        job: BoundSortJob<G, D>,
        input: I,
        output: impl Into<String>,
    ) -> Result<JobHandle>
    where
        G: BudgetedGenerator + ShardableGenerator,
        D: Device,
        R: SortableRecord,
        I: IntoIterator<Item = R>,
        I::IntoIter: Send + 'static,
    {
        let output = output.into();
        let mut input = input.into_iter();
        self.enqueue(tenant.into(), job, move |bound| {
            bound.run_iter(&mut input, &output)
        })
    }

    /// Submits a job that drains its sorted output into `sink` instead of
    /// a file — e.g. a bounded [`ChannelSink`](crate::sink::ChannelSink),
    /// whose backpressure then reaches all the way into the final merge
    /// pass of the job.
    pub fn submit_sink<G, D, R, I, K>(
        &self,
        tenant: impl Into<String>,
        job: BoundSortJob<G, D>,
        input: I,
        mut sink: K,
    ) -> Result<JobHandle>
    where
        G: BudgetedGenerator + ShardableGenerator,
        D: Device,
        R: SortableRecord,
        I: IntoIterator<Item = R>,
        I::IntoIter: Send + 'static,
        K: RecordSink<R> + Send + 'static,
    {
        let mut input = input.into_iter();
        self.enqueue(tenant.into(), job, move |bound| {
            bound.sink_iter(&mut input, &mut sink)
        })
    }

    fn enqueue<G, D, F>(&self, tenant: String, job: BoundSortJob<G, D>, run: F) -> Result<JobHandle>
    where
        G: BudgetedGenerator + ShardableGenerator,
        D: Device,
        F: FnOnce(BoundSortJob<G, ScopedDevice<D>>) -> Result<SortJobReport> + Send + 'static,
    {
        if job.job.threads == 0 {
            return Err(SortError::InvalidConfig(
                "a sort job needs at least one thread".into(),
            ));
        }
        let requested = job.job.generator.memory_records();
        // One token, three holders: the handle fires it, the worker polls
        // it around admission, and the pipeline polls it at every
        // phase/page boundary. A token installed via
        // `cancel_token` before submission keeps working.
        let cancel = job.job.cancel.clone();
        let state = Arc::new(JobState::new(cancel.clone()));
        let thunk: JobThunk = Box::new(move |granted| {
            let BoundSortJob { job, device } = job;
            // The job's private I/O scope: phase windows and seek counts
            // are measured as if the job had the device to itself, so
            // per-job counters stay deterministic under concurrency.
            let scoped = ScopedDevice::new(device);
            let rebudgeted = SortJob {
                generator: job.generator.with_budget(granted),
                threads: job.threads,
                config: job.config,
                cancel: job.cancel,
            };
            let report = run(rebudgeted.on(&scoped))?;
            Ok(JobOutput {
                report,
                io: scoped.local_stats(),
            })
        });
        let queued = QueuedJob {
            state: state.clone(),
            thunk,
            requested,
            submitted: Instant::now(),
            tenant: tenant.clone(),
            cancel,
        };
        let weight = self.shared.weight_of(&tenant);
        let mut queue = lock_or_poison(&self.shared.state);
        loop {
            if queue.shutdown {
                return Err(SortError::Canceled(
                    "the service is shut down; the job was not accepted".into(),
                ));
            }
            if queue.queues.len() < self.shared.queue_capacity {
                break;
            }
            queue = wait_or_poison(&self.shared.space_free, queue);
        }
        queue.queues.push(&tenant, weight, queued);
        drop(queue);
        self.shared.job_ready.notify_one();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Ok(JobHandle::new(state, id, tenant))
    }

    /// Number of jobs currently queued (admitted/running jobs excluded).
    pub fn pending(&self) -> usize {
        lock_or_poison(&self.shared.state).queues.len()
    }

    /// The arbiter, for inspection (current leases, audit trail).
    pub fn arbiter(&self) -> &MemoryArbiter {
        &self.shared.arbiter
    }

    /// Drains the queue, waits for every in-flight job, stops the workers
    /// and returns the aggregate [`ServiceReport`].
    pub fn shutdown(mut self) -> ServiceReport {
        self.stop();
        let stats = {
            let mut stats = lock_or_poison(&self.shared.stats);
            std::mem::take(&mut *stats)
        };
        let tenants = stats
            .tenants
            .into_iter()
            .map(|(tenant, accum)| TenantReport {
                tenant,
                jobs: accum.jobs,
                records: accum.records,
                io: accum.io,
            })
            .collect();
        ServiceReport {
            jobs_completed: stats.completed,
            jobs_failed: stats.failed,
            jobs_canceled: stats.canceled_queued + stats.canceled_running,
            jobs_canceled_queued: stats.canceled_queued,
            jobs_canceled_running: stats.canceled_running,
            queue_latency: LatencyPercentiles::from_samples(stats.queue_waits),
            sort_latency: LatencyPercentiles::from_samples(stats.sort_walls),
            cancel_latency: LatencyPercentiles::from_samples(stats.cancel_latencies),
            tenants,
            global_memory_records: self.shared.arbiter.global(),
            max_leased: self.shared.arbiter.max_leased(),
            rebalances: self.shared.arbiter.events(),
        }
    }

    fn stop(&mut self) {
        // Drain still-queued jobs under the lock, complete them outside
        // it: their handles must observe Canceled (not a stale Queued)
        // and their `wait()` must return instead of hanging forever.
        let drained = {
            let mut queue = lock_or_poison(&self.shared.state);
            queue.shutdown = true;
            let mut drained = Vec::new();
            while let Some(job) = queue.queues.pop() {
                drained.push(job);
            }
            drained
        };
        self.shared.job_ready.notify_all();
        self.shared.space_free.notify_all();
        for job in drained {
            self.shared.record_canceled_queued(&job.state);
            job.state.complete(Err(SortError::Canceled(
                "service shut down before the job was admitted".into(),
            )));
        }
        for worker in self.workers.drain(..) {
            // A worker that panicked already failed its job through the
            // completion guard; nothing more to salvage here.
            let _ = worker.join();
        }
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock_or_poison(&shared.state);
            loop {
                if let Some(job) = queue.queues.pop() {
                    shared.space_free.notify_one();
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = wait_or_poison(&shared.job_ready, queue);
            }
        };
        if !job.state.begin_admission() {
            shared.record_canceled_queued(&job.state);
            continue;
        }
        let guard = CompletionGuard::arm(job.state.clone());
        // A cancel arriving while this worker blocks inside the arbiter
        // must wake it; the waker holds a Weak so a long-lived handle
        // can't keep the service's shared state alive.
        {
            let waker = Arc::downgrade(shared);
            job.cancel.on_cancel(move || {
                if let Some(shared) = waker.upgrade() {
                    shared.arbiter.notify_waiters();
                }
            });
        }
        let weight = shared.weight_of(&job.tenant);
        let Some(granted) = shared
            .arbiter
            .lease_cancelable(job.requested, weight, &job.cancel)
        else {
            shared.record_canceled_queued(&job.state);
            guard.complete(Err(SortError::Canceled(
                "canceled while waiting for a memory lease".into(),
            )));
            continue;
        };
        // A cancel can land in the window between the dequeue and the
        // lease grant; without this re-check the request would be lost
        // and the job would run to completion. Nothing has touched the
        // device yet, so the lease goes straight back.
        if job.cancel.is_canceled() {
            shared.arbiter.release_weighted(granted, weight);
            shared.record_canceled_queued(&job.state);
            guard.complete(Err(SortError::Canceled(
                "canceled at admission, before the sort started".into(),
            )));
            continue;
        }
        let queue_wait = job.submitted.elapsed();
        job.state.set_running();
        let started = Instant::now();
        // Catch a panicking pipeline: the lease must go back and the
        // worker must survive to serve the next job. The engines' own
        // drop guards already swept the job's spill files during the
        // unwind.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.thunk)(granted)));
        let sort_wall = started.elapsed();
        shared.arbiter.release_weighted(granted, weight);
        match result {
            Ok(Ok(output)) => {
                let mut stats = lock_or_poison(&shared.stats);
                stats.completed += 1;
                stats.queue_waits.push(queue_wait);
                stats.sort_walls.push(sort_wall);
                let accum = stats.tenants.entry(job.tenant.clone()).or_default();
                accum.jobs += 1;
                accum.records += output.report.report.records;
                accum.io = Some(match accum.io.take() {
                    Some(io) => io.merged(&output.io),
                    None => output.io,
                });
                drop(stats);
                guard.complete(Ok(CompletedJob {
                    report: output.report,
                    tenant: job.tenant,
                    granted_memory: granted,
                    queue_wait,
                    sort_wall,
                    io: output.io,
                }));
            }
            Ok(Err(error @ SortError::Canceled(_))) => {
                let mut stats = lock_or_poison(&shared.stats);
                stats.canceled_running += 1;
                if let Some(latency) = job.state.time_since_cancel_request() {
                    stats.cancel_latencies.push(latency);
                }
                drop(stats);
                guard.complete(Err(error));
            }
            Ok(Err(error)) => {
                lock_or_poison(&shared.stats).failed += 1;
                guard.complete(Err(error));
            }
            Err(_panic) => {
                lock_or_poison(&shared.stats).failed += 1;
                guard.complete(Err(SortError::JobPanicked(
                    "the sort pipeline panicked mid-job".into(),
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement_selection::ReplacementSelection;
    use crate::run_generation::{RunCursor, RunGenerator, RunHandle, RunSet};
    use crate::sink::ChannelSink;
    use twrs_storage::{ModelId, SimDevice, SpillNamer, StorageDevice};
    use twrs_workloads::{Distribution, DistributionKind, Record};

    fn read_records(device: &SimDevice, name: &str) -> Vec<Record> {
        RunCursor::<Record>::open(device, &RunHandle::Forward(name.into()))
            .unwrap()
            .read_all()
            .unwrap()
    }

    #[test]
    fn stop_joins_every_worker_thread() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut service = SortService::new(ServiceConfig::new(200).workers(3)).unwrap();
        assert_eq!(service.workers.len(), 3);
        let input = Distribution::new(DistributionKind::RandomUniform, 800, 11);
        let job = SortJob::new(ReplacementSelection::new(100)).on(&device);
        let handle = service.submit("t", job, input.records(), "joined").unwrap();
        handle.wait().unwrap();
        service.stop();
        assert!(
            service.workers.is_empty(),
            "stop must drain and join every worker handle"
        );
        // Each worker held a clone of the shared state; once they have all
        // been joined the service owns the only remaining reference.
        assert_eq!(Arc::strong_count(&service.shared), 1);
    }

    #[test]
    fn service_jobs_match_direct_runs() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let service = SortService::new(ServiceConfig::new(250).workers(3)).unwrap();
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let input = Distribution::new(DistributionKind::RandomUniform, 1_500, i);
                let job = SortJob::new(ReplacementSelection::new(120)).on(&device);
                service
                    .submit(
                        format!("tenant-{}", i % 2),
                        job,
                        input.records(),
                        format!("svc-{i}"),
                    )
                    .unwrap()
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let done = handle.wait().unwrap();
            assert_eq!(done.report.report.records, 1_500);
            assert!(done.granted_memory >= 1 && done.granted_memory <= 120);
            let solo_device = SimDevice::with_model(ModelId::Hdd7200);
            let input = Distribution::new(DistributionKind::RandomUniform, 1_500, i as u64);
            SortJob::new(ReplacementSelection::new(120))
                .on(&solo_device)
                .run_iter(input.records(), "solo")
                .unwrap();
            assert_eq!(
                read_records(&device, &format!("svc-{i}")),
                read_records(&solo_device, "solo"),
                "service job {i} diverged from its solo run"
            );
        }
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 6);
        assert_eq!(report.jobs_failed, 0);
        assert_eq!(report.tenants.len(), 2);
        assert!(report.max_leased <= report.global_memory_records);
        for event in &report.rebalances {
            assert!(event.leased_after <= report.global_memory_records);
        }
        // Tenant I/O rolls up to real page traffic.
        for tenant in &report.tenants {
            assert_eq!(tenant.jobs, 3);
            assert_eq!(tenant.records, 4_500);
            assert!(tenant.io.unwrap().counters.pages_written > 0);
        }
    }

    #[test]
    fn tenant_io_rolls_up_across_stripe_members() {
        use twrs_storage::DeviceSpec;

        let spec: DeviceSpec = "striped:3:sim:nvme".parse().unwrap();
        let device = spec.build().unwrap();
        let service = SortService::new(ServiceConfig::new(250).workers(2)).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let input = Distribution::new(DistributionKind::RandomUniform, 1_200, i);
                let job = SortJob::new(ReplacementSelection::new(100))
                    .threads(2)
                    .on(&device);
                service
                    .submit(
                        format!("tenant-{}", i % 2),
                        job,
                        input.records(),
                        format!("striped-{i}"),
                    )
                    .unwrap()
            })
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 4);
        // The per-tenant rollups cover exactly the traffic the stripe
        // members saw: the jobs performed all of it, and the scoped
        // per-job statistics mirror every access no matter which member
        // it landed on.
        let tenant_writes: u64 = report
            .tenants
            .iter()
            .map(|t| t.io.unwrap().counters.pages_written)
            .sum();
        let members = device.as_striped().unwrap().member_stats();
        let member_writes: u64 = members.iter().map(|m| m.counters.pages_written).sum();
        assert_eq!(tenant_writes, member_writes);
        assert_eq!(member_writes, device.stats().counters.pages_written);
        assert!(
            members.iter().all(|m| m.counters.pages_written > 0),
            "every stripe member should carry part of the spill traffic"
        );
    }

    #[test]
    fn canceled_queued_jobs_never_run() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        // One worker and a job ahead in the queue, so the second job is
        // reliably still queued when we cancel it.
        let service = SortService::new(ServiceConfig::new(100).workers(1)).unwrap();
        let blocker = {
            let input = Distribution::new(DistributionKind::RandomUniform, 20_000, 1);
            let job = SortJob::new(ReplacementSelection::new(100)).on(&device);
            service.submit("a", job, input.records(), "big").unwrap()
        };
        let victim = {
            let input = Distribution::new(DistributionKind::RandomUniform, 100, 2);
            let job = SortJob::new(ReplacementSelection::new(50)).on(&device);
            service.submit("a", job, input.records(), "small").unwrap()
        };
        assert!(victim.cancel());
        assert!(matches!(victim.wait(), Err(SortError::Canceled(_))));
        blocker.wait().unwrap();
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs_canceled, 1);
        // The canceled job's output never appeared.
        assert!(!twrs_storage::StorageDevice::exists(&device, "small"));
    }

    #[test]
    fn sink_jobs_flow_through_the_service() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let service = SortService::new(ServiceConfig::new(200).workers(2)).unwrap();
        let (tx, rx) = std::sync::mpsc::sync_channel::<Record>(16);
        let input = Distribution::new(DistributionKind::ReverseSorted, 500, 3);
        let expected: u64 = input.records().map(|r| r.key).sum();
        let job = SortJob::new(ReplacementSelection::new(64)).on(&device);
        let handle = service
            .submit_sink("t", job, input.records(), ChannelSink::new(tx))
            .unwrap();
        let consumer = std::thread::spawn(move || {
            let mut last = None;
            let mut sum = 0u64;
            for record in rx {
                if let Some(prev) = last {
                    assert!(record.key >= prev);
                }
                last = Some(record.key);
                sum += record.key;
            }
            sum
        });
        let done = handle.wait().unwrap();
        assert_eq!(done.report.report.records, 500);
        assert_eq!(consumer.join().unwrap(), expected);
        service.shutdown();
    }

    #[test]
    fn invalid_configs_are_rejected_at_submission() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let service = SortService::new(ServiceConfig::new(100)).unwrap();
        let job = SortJob::new(ReplacementSelection::new(50))
            .on(&device)
            .threads(0);
        assert!(matches!(
            service.submit("t", job, std::iter::empty::<Record>(), "out"),
            Err(SortError::InvalidConfig(_))
        ));
        assert!(SortService::new(ServiceConfig::new(0)).is_err());
        assert!(SortService::new(ServiceConfig::new(10).workers(0)).is_err());
        assert!(SortService::new(ServiceConfig::new(10).queue_capacity(0)).is_err());
        service.shutdown();
    }

    fn spin_until(deadline: Duration, mut condition: impl FnMut() -> bool) {
        let give_up = Instant::now() + deadline;
        while !condition() {
            assert!(Instant::now() < give_up, "condition never became true");
            std::thread::yield_now();
        }
    }

    #[test]
    fn running_jobs_are_preempted_by_cancel() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let service = SortService::new(ServiceConfig::new(64).workers(1)).unwrap();
        let input = Distribution::new(DistributionKind::RandomUniform, 50_000, 7);
        let job = SortJob::new(ReplacementSelection::new(64)).on(&device);
        let handle = service.submit("t", job, input.records(), "big").unwrap();
        spin_until(Duration::from_secs(30), || {
            handle.try_status() == JobStatus::Running
        });
        assert!(handle.cancel());
        assert!(matches!(handle.wait(), Err(SortError::Canceled(_))));
        // The preempted job swept its spill files and partial output and
        // returned its whole lease before completing.
        assert!(StorageDevice::list(&device).is_empty());
        assert_eq!(service.arbiter().leased(), 0);
        let report = service.shutdown();
        assert_eq!(report.jobs_canceled_running, 1);
        assert_eq!(report.jobs_canceled, 1);
        assert_eq!(report.jobs_completed, 0);
        assert!(report.cancel_latency.max > Duration::ZERO);
        assert_eq!(report.rebalances.last().unwrap().leased_after, 0);
    }

    /// Spills a real prefix of the input, then panics — exercising the
    /// worker's unwind path with spill files already on the device.
    #[derive(Clone)]
    struct PanickyGenerator {
        inner: ReplacementSelection,
    }

    impl RunGenerator for PanickyGenerator {
        fn label(&self) -> &'static str {
            "panicky"
        }

        fn memory_records(&self) -> usize {
            self.inner.memory_records()
        }

        fn generate<D: Device, R: twrs_storage::SortableRecord>(
            &mut self,
            device: &D,
            namer: &SpillNamer,
            input: &mut dyn Iterator<Item = R>,
        ) -> Result<RunSet> {
            let prefix: Vec<R> = input.take(64).collect();
            let mut prefix = prefix.into_iter();
            let _ = self.inner.generate(device, namer, &mut prefix)?;
            panic!("injected failure after spilling");
        }
    }

    impl BudgetedGenerator for PanickyGenerator {
        fn with_budget(&self, memory_records: usize) -> Self {
            PanickyGenerator {
                inner: self.inner.with_budget(memory_records),
            }
        }
    }

    impl ShardableGenerator for PanickyGenerator {
        fn shard(&self, index: usize, shards: usize) -> Self {
            PanickyGenerator {
                inner: self.inner.shard(index, shards),
            }
        }
    }

    #[test]
    fn panicking_jobs_fail_and_leave_no_spill_files() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let service = SortService::new(ServiceConfig::new(100).workers(1)).unwrap();
        let input = Distribution::new(DistributionKind::RandomUniform, 1_000, 9);
        let job = SortJob::new(PanickyGenerator {
            inner: ReplacementSelection::new(50),
        })
        .on(&device);
        let handle = service.submit("t", job, input.records(), "doomed").unwrap();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, SortError::JobPanicked(_)), "got {err:?}");
        // The unwind swept the job's spill files, the lease went back,
        // and the worker survived to serve the next job.
        assert!(StorageDevice::list(&device).is_empty());
        assert_eq!(service.arbiter().leased(), 0);
        let input = Distribution::new(DistributionKind::RandomUniform, 500, 10);
        let job = SortJob::new(ReplacementSelection::new(50)).on(&device);
        let next = service.submit("t", job, input.records(), "after").unwrap();
        next.wait().unwrap();
        let report = service.shutdown();
        assert_eq!(report.jobs_failed, 1);
        assert_eq!(report.jobs_completed, 1);
    }

    #[test]
    fn shutdown_cancels_queued_jobs() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let service = SortService::new(ServiceConfig::new(64).workers(1)).unwrap();
        let blocker = {
            let input = Distribution::new(DistributionKind::RandomUniform, 30_000, 11);
            let job = SortJob::new(ReplacementSelection::new(64)).on(&device);
            service
                .submit("a", job, input.records(), "blocker")
                .unwrap()
        };
        // Once the blocker owns the lone worker, later jobs stay queued.
        spin_until(Duration::from_secs(30), || {
            blocker.try_status() != JobStatus::Queued
        });
        let victims: Vec<_> = (0..2u64)
            .map(|i| {
                let input = Distribution::new(DistributionKind::RandomUniform, 200, 20 + i);
                let job = SortJob::new(ReplacementSelection::new(32)).on(&device);
                service
                    .submit("a", job, input.records(), format!("victim-{i}"))
                    .unwrap()
            })
            .collect();
        let report = service.shutdown();
        // Shutdown reported them Canceled (not a stale Queued) and their
        // wait() returns instead of hanging.
        for victim in victims {
            assert_eq!(victim.try_status(), JobStatus::Canceled);
            assert!(matches!(victim.wait(), Err(SortError::Canceled(_))));
        }
        blocker.wait().unwrap();
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs_canceled_queued, 2);
        assert_eq!(report.jobs_canceled, 2);
    }

    #[test]
    fn cancel_racing_admission_is_never_lost() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let service = SortService::new(ServiceConfig::new(100).workers(1)).unwrap();
        for i in 0..50u64 {
            let input = Distribution::new(DistributionKind::RandomUniform, 300, i);
            let job = SortJob::new(ReplacementSelection::new(50)).on(&device);
            let handle = service
                .submit("t", job, input.records(), format!("race-{i}"))
                .unwrap();
            // Vary the head start so the cancel lands at every point of
            // the dequeue → admission → lease → first-I/O window.
            if i % 3 == 0 {
                std::thread::yield_now();
            }
            handle.cancel();
            match handle.wait() {
                // Photo-finish: the job crossed the line first.
                Ok(_) => {}
                Err(SortError::Canceled(_)) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
            assert_eq!(service.arbiter().leased(), 0);
        }
        let report = service.shutdown();
        assert_eq!(report.jobs_completed + report.jobs_canceled, 50);
    }

    #[test]
    fn priority_tenants_get_larger_grants() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let config = ServiceConfig::new(240)
            .workers(2)
            .grant_policy(GrantPolicy::FixedShare { shares: 4 })
            .tenant_priority("gold", Priority::with_weight(3));
        let service = SortService::new(config).unwrap();
        let mut handles = Vec::new();
        for i in 0..2u64 {
            let input = Distribution::new(DistributionKind::RandomUniform, 1_000, i);
            let job = SortJob::new(ReplacementSelection::new(200)).on(&device);
            let handle = service
                .submit("gold", job, input.records(), format!("g-{i}"))
                .unwrap();
            handles.push(("gold", handle));
            let input = Distribution::new(DistributionKind::RandomUniform, 1_000, 10 + i);
            let job = SortJob::new(ReplacementSelection::new(200)).on(&device);
            let handle = service
                .submit("silver", job, input.records(), format!("s-{i}"))
                .unwrap();
            handles.push(("silver", handle));
        }
        for (tenant, handle) in handles {
            let done = handle.wait().unwrap();
            // 3 of 4 fixed shares of 240 vs 1 of 4: 180 vs 60, whatever
            // the admission interleaving.
            match tenant {
                "gold" => assert_eq!(done.granted_memory, 180),
                _ => assert_eq!(done.granted_memory, 60),
            }
        }
        let report = service.shutdown();
        assert_eq!(report.jobs_completed, 4);
        assert!(report.max_leased <= 240);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let p = LatencyPercentiles::from_samples(samples);
        assert_eq!(p.p50, Duration::from_millis(50));
        assert_eq!(p.p95, Duration::from_millis(95));
        assert_eq!(p.p99, Duration::from_millis(99));
        assert_eq!(p.max, Duration::from_millis(100));
        let empty = LatencyPercentiles::from_samples(Vec::new());
        assert_eq!(empty.p99, Duration::ZERO);
    }
}
