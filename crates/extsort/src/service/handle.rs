//! Submission handles: the caller's view of a job inside the service.
//!
//! [`SortService::submit`](crate::service::SortService::submit) returns a
//! [`JobHandle`] immediately; the job itself runs later, on a worker
//! thread, once the admission controller grants it a memory lease. The
//! handle is the only channel back: poll it with
//! [`try_status`](JobHandle::try_status), block on it with
//! [`wait`](JobHandle::wait), or abandon the job with
//! [`cancel`](JobHandle::cancel).

use crate::cancel::CancellationToken;
use crate::error::{Result, SortError};
use crate::sort_job::SortJobReport;
use crate::sync::{lock_or_poison, wait_or_poison};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use twrs_storage::IoStatsSnapshot;

/// Lifecycle of a job inside the service, in the order the states are
/// normally traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in its tenant queue for a worker.
    Queued,
    /// Picked by a worker; waiting for (or holding) a memory lease.
    Admitted,
    /// The sort pipeline is executing.
    Running,
    /// Finished successfully; [`JobHandle::wait`] returns `Ok`.
    Done,
    /// Finished with an error; [`JobHandle::wait`] returns it.
    Failed,
    /// Canceled — while still queued, at admission, or cooperatively
    /// preempted at a phase/page boundary after it started running;
    /// [`JobHandle::wait`] returns [`SortError::Canceled`].
    Canceled,
}

/// Everything a successfully finished service job reports back: the
/// familiar [`SortJobReport`] plus the service-side timings and the
/// per-job I/O attribution recorded on the job's
/// [`ScopedDevice`](twrs_storage::ScopedDevice).
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// The unified sort report, identical in shape to a direct
    /// `SortJob::run_*` run.
    pub report: SortJobReport,
    /// Tenant the job was submitted under.
    pub tenant: String,
    /// Memory (in records) the arbiter actually leased to the job — at
    /// most what its generator asked for, possibly less under contention.
    pub granted_memory: usize,
    /// Time from submission until a worker admitted the job and obtained
    /// its memory lease.
    pub queue_wait: Duration,
    /// Wall-clock time of the sort itself.
    pub sort_wall: Duration,
    /// The job's own I/O, measured on its private scope of the shared
    /// device (a private-head seek model; see
    /// [`ScopedDevice`](twrs_storage::ScopedDevice)).
    pub io: IoStatsSnapshot,
}

struct JobInner {
    status: JobStatus,
    cancel_requested: bool,
    cancel_requested_at: Option<Instant>,
    outcome: Option<Result<CompletedJob>>,
}

/// Shared state between a [`JobHandle`] and the worker that runs the job.
pub(crate) struct JobState {
    inner: Mutex<JobInner>,
    done: Condvar,
    /// The cooperative token threaded into the job's phase loops; fired
    /// (outside the state lock) whenever cancellation is requested.
    cancel: CancellationToken,
}

impl JobState {
    pub(crate) fn new(cancel: CancellationToken) -> Self {
        JobState {
            inner: Mutex::new(JobInner {
                status: JobStatus::Queued,
                cancel_requested: false,
                cancel_requested_at: None,
                outcome: None,
            }),
            done: Condvar::new(),
            cancel,
        }
    }

    /// Worker-side: transition Queued → Admitted, unless the handle asked
    /// for cancellation first — then the job completes as Canceled and
    /// `false` is returned (the worker skips it).
    pub(crate) fn begin_admission(&self) -> bool {
        let mut inner = lock_or_poison(&self.inner);
        if inner.cancel_requested {
            inner.status = JobStatus::Canceled;
            inner.outcome = Some(Err(SortError::Canceled(
                "canceled while queued".to_string(),
            )));
            self.done.notify_all();
            false
        } else {
            inner.status = JobStatus::Admitted;
            true
        }
    }

    /// Worker-side: the memory lease is held and the sort is starting.
    pub(crate) fn set_running(&self) {
        lock_or_poison(&self.inner).status = JobStatus::Running;
    }

    /// Worker-side: store the final outcome and wake every waiter. A
    /// second call is ignored (the completion guard may fire after a
    /// normal completion).
    pub(crate) fn complete(&self, outcome: Result<CompletedJob>) {
        let mut inner = lock_or_poison(&self.inner);
        if inner.outcome.is_some() {
            return;
        }
        inner.status = match &outcome {
            Ok(_) => JobStatus::Done,
            Err(SortError::Canceled(_)) => JobStatus::Canceled,
            Err(_) => JobStatus::Failed,
        };
        inner.outcome = Some(outcome);
        self.done.notify_all();
    }

    fn status(&self) -> JobStatus {
        lock_or_poison(&self.inner).status
    }

    /// Registers a cancellation request unless the job already finished.
    /// Fires the cooperative token *after* releasing the state lock, so
    /// wakers (which may take other locks) never run under it.
    fn request_cancel(&self) -> bool {
        {
            let mut inner = lock_or_poison(&self.inner);
            match inner.status {
                JobStatus::Done | JobStatus::Failed | JobStatus::Canceled => return false,
                JobStatus::Queued | JobStatus::Admitted | JobStatus::Running => {
                    if !inner.cancel_requested {
                        inner.cancel_requested = true;
                        inner.cancel_requested_at = Some(Instant::now());
                    }
                }
            }
        }
        self.cancel.cancel();
        true
    }

    /// How long ago cancellation was requested — the request→completion
    /// latency sample the service records when a canceled job completes.
    pub(crate) fn time_since_cancel_request(&self) -> Option<Duration> {
        lock_or_poison(&self.inner)
            .cancel_requested_at
            .map(|at| at.elapsed())
    }

    fn wait(&self) -> Result<CompletedJob> {
        let mut inner = lock_or_poison(&self.inner);
        loop {
            if let Some(outcome) = inner.outcome.take() {
                return outcome;
            }
            inner = wait_or_poison(&self.done, inner);
        }
    }
}

/// Ensures a popped job always completes, even if the worker thread
/// unwinds mid-sort: dropping an armed guard fails the job instead of
/// leaving its waiters blocked forever.
pub(crate) struct CompletionGuard {
    state: Arc<JobState>,
}

impl CompletionGuard {
    pub(crate) fn arm(state: Arc<JobState>) -> Self {
        CompletionGuard { state }
    }

    pub(crate) fn complete(self, outcome: Result<CompletedJob>) {
        self.state.complete(outcome);
        // Drop now finds the outcome set and does nothing.
    }
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        self.state.complete(Err(SortError::JobPanicked(
            "worker thread terminated before the job completed".to_string(),
        )));
    }
}

/// A ticket for one submitted job.
///
/// Obtained from [`SortService::submit`](crate::service::SortService::submit);
/// consumed by [`wait`](JobHandle::wait). Dropping the handle does **not**
/// cancel the job — it keeps running (or queuing) and its effects (the
/// output file) still happen.
pub struct JobHandle {
    state: Arc<JobState>,
    id: u64,
    tenant: String,
}

impl JobHandle {
    pub(crate) fn new(state: Arc<JobState>, id: u64, tenant: String) -> Self {
        JobHandle { state, id, tenant }
    }

    /// Service-wide unique id of the job.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Tenant the job was submitted under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The job's current lifecycle state, without blocking.
    pub fn try_status(&self) -> JobStatus {
        self.state.status()
    }

    /// Requests cancellation. Returns `true` when the request was
    /// registered before the job finished, `false` when the job had
    /// already completed (Done, Failed, or Canceled).
    ///
    /// A queued job never starts and completes as
    /// [`Canceled`](JobStatus::Canceled) immediately. A **running** job is
    /// cooperatively preempted: the pipeline observes the request at the
    /// next phase/page boundary (every heap refill during run generation,
    /// between merge passes, and every
    /// [`CANCEL_CHECK_INTERVAL`](crate::cancel::CANCEL_CHECK_INTERVAL)
    /// records of merge output), removes its spill files and any partial
    /// output, releases its memory lease, and completes as Canceled —
    /// [`wait`](JobHandle::wait) then returns [`SortError::Canceled`].
    ///
    /// `true` is a promise the request was *delivered*, not that the job
    /// will end Canceled: in a photo-finish the job may cross its last
    /// boundary first and still complete `Ok`.
    pub fn cancel(&self) -> bool {
        self.state.request_cancel()
    }

    /// Blocks until the job finishes and returns its outcome: the
    /// [`CompletedJob`] on success, the job's [`SortError`] on failure
    /// ([`SortError::Canceled`] for a canceled job).
    pub fn wait(self) -> Result<CompletedJob> {
        self.state.wait()
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("tenant", &self.tenant)
            .field("status", &self.try_status())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_while_queued_is_observed_at_admission() {
        let state = Arc::new(JobState::new(CancellationToken::new()));
        let handle = JobHandle::new(state.clone(), 1, "t".into());
        assert_eq!(handle.try_status(), JobStatus::Queued);
        assert!(handle.cancel());
        // The worker observes the request at admission time.
        assert!(!state.begin_admission());
        assert_eq!(handle.try_status(), JobStatus::Canceled);
        assert!(matches!(handle.wait(), Err(SortError::Canceled(_))));
    }

    #[test]
    fn cancel_after_admission_fires_the_cooperative_token() {
        let token = CancellationToken::new();
        let state = Arc::new(JobState::new(token.clone()));
        let handle = JobHandle::new(state.clone(), 2, "t".into());
        assert!(state.begin_admission());
        state.set_running();
        assert_eq!(handle.try_status(), JobStatus::Running);
        // Preemption: the request is registered and the token trips, so
        // the running pipeline stops at its next boundary check.
        assert!(handle.cancel());
        assert!(token.is_canceled());
        assert!(state.time_since_cancel_request().is_some());
        // The worker later reports the cooperative stop.
        state.complete(Err(SortError::Canceled("preempted".into())));
        assert_eq!(handle.try_status(), JobStatus::Canceled);
        // A second cancel on a finished job reports too-late.
        assert!(!handle.cancel());
    }

    #[test]
    fn dropping_an_armed_guard_fails_the_job() {
        let token = CancellationToken::new();
        let state = Arc::new(JobState::new(token));
        let handle = JobHandle::new(state.clone(), 3, "t".into());
        drop(CompletionGuard::arm(state));
        assert_eq!(handle.try_status(), JobStatus::Failed);
        assert!(matches!(handle.wait(), Err(SortError::JobPanicked(_))));
    }
}
