//! Classic replacement selection (Chapter 3, Algorithm 1).
//!
//! Replacement selection keeps a min-heap of `memory_records` records. At
//! each step the smallest current-run record leaves the heap and is appended
//! to the run on disk; a fresh record is read from the input and, if it is
//! smaller than the record just written, it cannot belong to the current run
//! and is marked for the *next* run (it still enters the heap, but ordered
//! after every current-run record). When the heap's top record belongs to
//! the next run, every record in memory does, so the current run is closed
//! and a new one starts.
//!
//! On uniformly random input the expected run length is twice the memory
//! (the snowplow argument of §3.5); on sorted input a single run is
//! produced; on reverse-sorted input every run has exactly the memory size —
//! the weakness 2WRS addresses.

use crate::error::{Result, SortError};
use crate::parallel::{shard_budget, ShardableGenerator};
use crate::run_generation::{Device, ForwardRunBuilder, RunGenerator, RunSet};
use twrs_heaps::{BinaryHeap, HeapKind, RunRecord};
use twrs_storage::{SortableRecord, SpillNamer};

/// Classic replacement selection run generation.
#[derive(Debug, Clone)]
pub struct ReplacementSelection {
    memory_records: usize,
}

impl ReplacementSelection {
    /// Creates the algorithm with a heap of `memory_records` records.
    pub fn new(memory_records: usize) -> Self {
        ReplacementSelection { memory_records }
    }
}

impl ShardableGenerator for ReplacementSelection {
    fn shard(&self, index: usize, shards: usize) -> Self {
        ReplacementSelection::new(shard_budget(self.memory_records, index, shards))
    }
}

impl crate::run_generation::BudgetedGenerator for ReplacementSelection {
    fn with_budget(&self, memory_records: usize) -> Self {
        ReplacementSelection::new(memory_records)
    }
}

impl RunGenerator for ReplacementSelection {
    fn label(&self) -> &'static str {
        "RS"
    }

    fn memory_records(&self) -> usize {
        self.memory_records
    }

    fn generate<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        namer: &SpillNamer,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<RunSet> {
        if self.memory_records == 0 {
            return Err(SortError::InvalidConfig(
                "replacement selection needs a heap of at least one record".into(),
            ));
        }
        let mut heap: BinaryHeap<RunRecord<R>> =
            BinaryHeap::with_capacity(HeapKind::Min, self.memory_records);

        // Phase 1: fill the heap (heap.fill in Algorithm 1). No record needs
        // a next-run mark because nothing has been output yet.
        while heap.len() < self.memory_records {
            match input.next() {
                Some(record) => heap
                    .push(RunRecord::new(record, 0))
                    // twrs-lint: allow(no-lib-panic) the fill loop stops at `memory_records` capacity
                    .expect("heap cannot be full during the fill phase"),
                None => break,
            }
        }

        let mut runs = Vec::new();
        let mut total = 0u64;
        let mut current_run = 0u64;
        let mut builder = ForwardRunBuilder::new(device, namer);

        while let Some(top) = heap.pop() {
            // Did the top record open the next run?
            if top.run > current_run {
                total += builder.finish_run(&mut runs)?;
                builder = ForwardRunBuilder::new(device, namer);
                current_run = top.run;
            }
            let output = top.value;
            builder.push(&output)?;

            // Read the next input record and insert it, marking it for the
            // next run when it can no longer join the current one.
            if let Some(next) = input.next() {
                let run = if next < output {
                    current_run + 1
                } else {
                    current_run
                };
                heap.push(RunRecord::new(next, run))
                    // twrs-lint: allow(no-lib-panic) `pop` freed a slot immediately above
                    .expect("a slot was just freed by pop");
            }
        }
        total += builder.finish_run(&mut runs)?;

        Ok(RunSet {
            runs,
            records: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_generation::RunCursor;
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;
    use twrs_workloads::{Distribution, DistributionKind, Record};

    fn run_rs(memory: usize, input: Vec<Record>) -> (SimDevice, RunSet) {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("rs");
        let mut generator = ReplacementSelection::new(memory);
        let mut iter = input.into_iter();
        let set = generator.generate(&device, &namer, &mut iter).unwrap();
        (device, set)
    }

    fn check_runs_sorted_and_complete(device: &SimDevice, set: &RunSet, mut expected: Vec<Record>) {
        let mut all: Vec<Record> = Vec::new();
        for handle in &set.runs {
            let mut cursor = RunCursor::<Record>::open(device, handle).unwrap();
            let run = cursor.read_all().unwrap();
            assert!(
                run.windows(2).all(|w| w[0] <= w[1]),
                "run {handle:?} is not sorted"
            );
            all.extend(run);
        }
        assert_eq!(all.len(), expected.len());
        all.sort_unstable();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn sorted_input_yields_one_run() {
        // Theorem 1.
        let input = Distribution::exact(DistributionKind::Sorted, 5_000).collect();
        let (device, set) = run_rs(100, input.clone());
        assert_eq!(set.num_runs(), 1);
        check_runs_sorted_and_complete(&device, &set, input);
    }

    #[test]
    fn reverse_sorted_input_yields_memory_sized_runs() {
        // Theorem 3: runs of exactly the memory size.
        let input = Distribution::exact(DistributionKind::ReverseSorted, 5_000).collect();
        let (device, set) = run_rs(100, input.clone());
        assert_eq!(set.num_runs(), 50);
        assert!((set.relative_run_length(100) - 1.0).abs() < 1e-9);
        check_runs_sorted_and_complete(&device, &set, input);
    }

    #[test]
    fn random_input_yields_runs_about_twice_memory() {
        // §3.5: expected run length ≈ 2 × memory for random input.
        let input = Distribution::new(DistributionKind::RandomUniform, 40_000, 7).collect();
        let (device, set) = run_rs(500, input.clone());
        let relative = set.relative_run_length(500);
        assert!(
            (1.6..2.5).contains(&relative),
            "relative run length {relative}"
        );
        check_runs_sorted_and_complete(&device, &set, input);
    }

    #[test]
    fn alternating_input_yields_about_twice_memory() {
        // Theorem 5: average run length ≈ 2 × memory when sections are much
        // longer than memory.
        let input =
            Distribution::exact(DistributionKind::Alternating { sections: 10 }, 40_000).collect();
        let (device, set) = run_rs(400, input.clone());
        let relative = set.relative_run_length(400);
        assert!(
            (1.5..2.6).contains(&relative),
            "relative run length {relative}"
        );
        check_runs_sorted_and_complete(&device, &set, input);
    }

    #[test]
    fn input_smaller_than_memory_is_a_single_run() {
        let input = Distribution::new(DistributionKind::RandomUniform, 50, 3).collect();
        let (device, set) = run_rs(1_000, input.clone());
        assert_eq!(set.num_runs(), 1);
        check_runs_sorted_and_complete(&device, &set, input);
    }

    #[test]
    fn empty_input_produces_no_runs() {
        let (_device, set) = run_rs(100, Vec::new());
        assert_eq!(set.num_runs(), 0);
        assert_eq!(set.records, 0);
    }

    #[test]
    fn memory_of_one_record_still_sorts() {
        let input = Distribution::new(DistributionKind::RandomUniform, 200, 5).collect();
        let (device, set) = run_rs(1, input.clone());
        check_runs_sorted_and_complete(&device, &set, input);
    }

    #[test]
    fn zero_memory_is_rejected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("rs");
        let mut generator = ReplacementSelection::new(0);
        let mut input = std::iter::empty::<Record>();
        assert!(matches!(
            generator.generate(&device, &namer, &mut input),
            Err(SortError::InvalidConfig(_))
        ));
    }

    #[test]
    fn duplicate_keys_are_handled() {
        let input: Vec<Record> = (0..1_000u64).map(|i| Record::new(i % 10, i)).collect();
        let (device, set) = run_rs(50, input.clone());
        check_runs_sorted_and_complete(&device, &set, input);
    }
}
