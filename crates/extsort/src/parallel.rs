//! The parallel external sorter: sharded run generation with asynchronous
//! spill writing, followed by a k-way merge fed by background prefetch
//! threads.
//!
//! The sequential [`ExternalSorter`](crate::sorter::ExternalSorter) is the
//! reference implementation: one thread generates runs and the same thread
//! merges them, so heap work, spill writes and merge reads all serialise.
//! [`ParallelExternalSorter`] keeps the exact same building blocks — any
//! [`RunGenerator`] plugs in unchanged — and overlaps the three:
//!
//! 1. **Sharded generation.** The input stream is dealt round-robin (in
//!    small batches) to `threads` workers. Each worker runs its own clone of
//!    the run-generation algorithm with a proportional slice of the memory
//!    budget (see [`ShardableGenerator`]), so total memory stays fixed while
//!    the heap work parallelises.
//! 2. **Asynchronous spilling.** Each worker writes its runs through a
//!    [`SpillWriteDevice`], which ships page writes over a bounded channel
//!    to a dedicated writer thread; heap operations overlap spill I/O, and
//!    the bounded queue applies back-pressure so memory stays bounded.
//! 3. **Prefetched merging.** The final multi-pass k-way merge (same
//!    scheduling as [`KWayMerger`](crate::merge::kway::KWayMerger)) reads
//!    every input run through a background prefetch thread that stays one
//!    read-ahead batch ahead of the loser tree.
//!
//! On a striped device (`twrs_storage::StripedDevice`) each shard spills
//! through a member-pinned shard view (shard `i` → member `i % members`),
//! and before the global merge a per-disk reduction folds every member's
//! runs into at most one run *on that member*, each by a single-threaded
//! reducer. Per-disk read order — and with it every member's seek counters —
//! therefore stays deterministic at any thread count, which is what lets the
//! bench suite pin concrete seek counts for multi-threaded striped runs.
//!
//! Because [`SortableRecord`] requires a *total* order, the fully merged
//! output is **byte-identical** to the
//! sequential sorter's output for every thread count — the equivalence test
//! suite (`tests/parallel_equivalence.rs`) pins this. Phases are attributed
//! from device-level snapshot deltas exactly like the sequential sorter
//! (coordinator-side input reads included), while per-shard I/O recorded on
//! [`ScopedDevice`]s provides the breakdown — the shards perform all of the
//! generation phase's writes, so the aggregated `pages_written` equals the
//! shard sum by construction.

use crate::cancel::CancellationToken;
use crate::error::{Result, SortError};
use crate::merge::kway::{
    finish_into_sink, merge_passes, merge_sources, reduce_to_fan_in, remove_run, BufferedCursor,
    MergeConfig, MergeReport, MergeSource, ReducedRuns,
};
use crate::run_generation::{
    sort_dataset_file, Device, RunCursor, RunGenerator, RunHandle, RunSet,
};
use crate::sink::RecordSink;
use crate::sort_job::SortJobReport;
use crate::sorter::{
    assemble_report, verify_phase_report, FinalPassKind, PhaseReport, SortReport, SorterConfig,
    SpillSweeper,
};
use crate::stream::{unique_namespace, SortedStream, StreamSource};
use crate::sync::lock_or_poison;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use twrs_storage::{
    IoStatsSnapshot, PageFile, RunWriter, ScopedDevice, SortableRecord, SpillNamer, StorageDevice,
    StorageError,
};

// ---------------------------------------------------------------------------
// Memory-budget sharding
// ---------------------------------------------------------------------------

/// The memory budget (in records) of shard `index` when a total budget of
/// `total` records is divided over `shards` workers.
///
/// The shard budgets always sum to at least `total` records split exactly
/// (`total = Σ shard_budget(total, i, shards)` whenever `total >= shards`);
/// any remainder goes to the lowest-indexed shards, and every shard gets at
/// least one record so degenerate configurations stay runnable.
pub fn shard_budget(total: usize, index: usize, shards: usize) -> usize {
    assert!(shards > 0, "at least one shard");
    assert!(index < shards, "shard index in range");
    let base = total / shards;
    let remainder = total % shards;
    (base + usize::from(index < remainder)).max(1)
}

/// A run-generation algorithm that can hand out budget-divided copies of
/// itself for the shards of a parallel sort.
///
/// Implementations must divide their memory budget with [`shard_budget`] (or
/// equivalently) so that the shard budgets of one sort sum to the original
/// budget — the parallel sorter keeps total memory fixed no matter how many
/// threads it uses.
pub trait ShardableGenerator: RunGenerator + Clone + Send + 'static {
    /// A copy of this generator configured for shard `index` of `shards`.
    fn shard(&self, index: usize, shards: usize) -> Self;
}

// ---------------------------------------------------------------------------
// Asynchronous spill writing
// ---------------------------------------------------------------------------

/// Operations shipped from the generation thread to the spill writer.
enum SpillOp {
    /// Register a freshly created file under an id.
    Attach {
        file: u64,
        handle: Box<dyn PageFile>,
    },
    /// Apply one page write to an attached file.
    Write {
        file: u64,
        page: u64,
        data: Box<[u8]>,
    },
    /// Apply every write queued so far, flush (`file = None` flushes all
    /// attached files) and acknowledge.
    Flush {
        file: Option<u64>,
        ack: SyncSender<twrs_storage::Result<()>>,
    },
    /// Forget an attached file (its writes have all been queued before).
    Detach { file: u64 },
}

struct SpillShared {
    sender: Mutex<Option<SyncSender<SpillOp>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    next_file_id: AtomicU64,
}

impl SpillShared {
    fn send(&self, op: SpillOp) -> twrs_storage::Result<()> {
        let guard = lock_or_poison(&self.sender);
        let sender = guard.as_ref().ok_or_else(writer_gone)?;
        sender.send(op).map_err(|_| writer_gone())
    }
}

impl Drop for SpillShared {
    fn drop(&mut self) {
        // Disconnect the channel so the writer drains its queue and exits,
        // then wait for it; pending writes are never lost.
        lock_or_poison(&self.sender).take();
        if let Some(worker) = lock_or_poison(&self.worker).take() {
            let _ = worker.join();
        }
    }
}

fn writer_gone() -> StorageError {
    StorageError::Io(std::io::Error::other("spill writer thread terminated"))
}

/// A device wrapper that moves page writes off the calling thread onto one
/// dedicated writer thread, connected by a bounded channel.
///
/// Run generation pushes records as fast as its heaps allow while the writer
/// thread performs the actual page writes, so CPU work overlaps spill I/O;
/// when the writer falls behind, the bounded queue blocks the generator
/// (back-pressure) instead of buffering unboundedly. [`PageFile::flush`] is
/// a barrier: it returns once every previously queued write of that file has
/// been applied, which is what makes the run files safe to read after
/// `RunWriter::finish`. Reads and `open` flush the queue first and then go
/// straight to the wrapped device.
pub struct SpillWriteDevice<D: Device> {
    inner: D,
    shared: Arc<SpillShared>,
}

impl<D: Device> Clone for SpillWriteDevice<D> {
    fn clone(&self) -> Self {
        SpillWriteDevice {
            inner: self.inner.clone(),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<D: Device> SpillWriteDevice<D> {
    /// Wraps `inner`, spawning the writer thread with a queue of
    /// `queue_depth` pending operations.
    pub fn new(inner: D, queue_depth: usize) -> Self {
        let (tx, rx) = sync_channel::<SpillOp>(queue_depth.max(1));
        let worker = std::thread::spawn(move || spill_writer_loop(rx));
        SpillWriteDevice {
            inner,
            shared: Arc::new(SpillShared {
                sender: Mutex::new(Some(tx)),
                worker: Mutex::new(Some(worker)),
                next_file_id: AtomicU64::new(1),
            }),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Waits until every queued write has been applied and flushed, and
    /// surfaces any error the writer thread encountered.
    pub fn barrier(&self) -> twrs_storage::Result<()> {
        let (ack_tx, ack_rx) = sync_channel(1);
        self.shared.send(SpillOp::Flush {
            file: None,
            ack: ack_tx,
        })?;
        ack_rx.recv().map_err(|_| writer_gone())?
    }
}

/// The writer thread: applies operations in order, remembers the first
/// failure and reports it at the next flush barrier.
fn spill_writer_loop(rx: Receiver<SpillOp>) {
    let mut files: HashMap<u64, Box<dyn PageFile>> = HashMap::new();
    let mut failure: Option<String> = None;
    while let Ok(op) = rx.recv() {
        match op {
            SpillOp::Attach { file, handle } => {
                files.insert(file, handle);
            }
            SpillOp::Write { file, page, data } => {
                if failure.is_some() {
                    continue;
                }
                match files.get_mut(&file) {
                    Some(handle) => {
                        if let Err(e) = handle.write_page(page, &data) {
                            failure = Some(e.to_string());
                        }
                    }
                    None => failure = Some(format!("write to unattached spill file {file}")),
                }
            }
            SpillOp::Flush { file, ack } => {
                if failure.is_none() {
                    let targets: Vec<u64> = match file {
                        Some(id) => files.contains_key(&id).then_some(id).into_iter().collect(),
                        None => files.keys().copied().collect(),
                    };
                    for id in targets {
                        let Some(handle) = files.get_mut(&id) else {
                            continue;
                        };
                        if let Err(e) = handle.flush() {
                            failure = Some(e.to_string());
                            break;
                        }
                    }
                }
                let result = match &failure {
                    Some(msg) => Err(StorageError::Io(std::io::Error::other(msg.clone()))),
                    None => Ok(()),
                };
                let _ = ack.send(result);
            }
            SpillOp::Detach { file } => {
                files.remove(&file);
            }
        }
    }
}

struct SpillPageFile<D: Device> {
    device: SpillWriteDevice<D>,
    name: String,
    file: u64,
    page_size: usize,
    /// Local page-count model mirroring the sparse-extension semantics of
    /// [`PageFile::write_page`]; exact because this handle is the only
    /// writer of the file.
    pages: u64,
}

impl<D: Device> PageFile for SpillPageFile<D> {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.pages
    }

    fn read_page(&mut self, index: u64, buf: &mut [u8]) -> twrs_storage::Result<()> {
        // Rare on the write path: drain queued writes, then read through.
        self.flush()?;
        self.device.inner.open(&self.name)?.read_page(index, buf)
    }

    fn write_page(&mut self, index: u64, data: &[u8]) -> twrs_storage::Result<()> {
        if data.len() != self.page_size {
            return Err(StorageError::PageSizeMismatch {
                got: data.len(),
                expected: self.page_size,
            });
        }
        self.pages = self.pages.max(index + 1);
        self.device.shared.send(SpillOp::Write {
            file: self.file,
            page: index,
            data: data.into(),
        })
    }

    fn flush(&mut self) -> twrs_storage::Result<()> {
        let (ack_tx, ack_rx) = sync_channel(1);
        self.device.shared.send(SpillOp::Flush {
            file: Some(self.file),
            ack: ack_tx,
        })?;
        ack_rx.recv().map_err(|_| writer_gone())?
    }
}

impl<D: Device> Drop for SpillPageFile<D> {
    fn drop(&mut self) {
        let _ = self.device.shared.send(SpillOp::Detach { file: self.file });
    }
}

impl<D: Device> StorageDevice for SpillWriteDevice<D> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn create(&self, name: &str) -> twrs_storage::Result<Box<dyn PageFile>> {
        // Created eagerly on the wrapped device so the name exists at once;
        // only the page writes are deferred.
        let handle = self.inner.create(name)?;
        let file = self.shared.next_file_id.fetch_add(1, Ordering::Relaxed);
        self.shared.send(SpillOp::Attach { file, handle })?;
        Ok(Box::new(SpillPageFile {
            device: self.clone(),
            name: name.to_string(),
            file,
            page_size: self.inner.page_size(),
            pages: 0,
        }))
    }

    fn open(&self, name: &str) -> twrs_storage::Result<Box<dyn PageFile>> {
        self.barrier()?;
        self.inner.open(name)
    }

    fn remove(&self, name: &str) -> twrs_storage::Result<()> {
        self.barrier()?;
        self.inner.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn io_stats(&self) -> &twrs_storage::IoStats {
        self.inner.io_stats()
    }
}

// ---------------------------------------------------------------------------
// Prefetched merge sources
// ---------------------------------------------------------------------------

/// The consumer end of one background prefetch thread: the thread reads the
/// run in `read_ahead`-record batches and stays up to `queue_batches`
/// batches ahead of the merge loop. Dropping the source disconnects the
/// channel and joins the worker, so a half-consumed source (an early-dropped
/// [`SortedStream`], an error path) never leaves a reader thread behind.
pub(crate) struct PrefetchSource<R: SortableRecord> {
    rx: Option<Receiver<std::result::Result<Vec<R>, SortError>>>,
    buffer: VecDeque<R>,
    worker: Option<JoinHandle<()>>,
    done: bool,
}

impl<R: SortableRecord> PrefetchSource<R> {
    pub(crate) fn spawn<D: Device>(
        device: D,
        handle: RunHandle,
        read_ahead: usize,
        queue_batches: usize,
    ) -> Self {
        let (tx, rx) = sync_channel(queue_batches.max(1));
        let batch = read_ahead.max(1);
        let worker = std::thread::spawn(move || {
            let mut cursor = match RunCursor::<R>::open(&device, &handle) {
                Ok(cursor) => cursor,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            };
            loop {
                let mut chunk = Vec::with_capacity(batch);
                for _ in 0..batch {
                    match cursor.next_record() {
                        Ok(Some(record)) => chunk.push(record),
                        Ok(None) => break,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
                let finished = chunk.len() < batch;
                if !chunk.is_empty() && tx.send(Ok(chunk)).is_err() {
                    // Merge side hung up (error path): stop quietly.
                    return;
                }
                if finished {
                    return;
                }
            }
        });
        PrefetchSource {
            rx: Some(rx),
            buffer: VecDeque::new(),
            worker: Some(worker),
            done: false,
        }
    }

    fn join(mut self) {
        if let Some(worker) = self.worker.take() {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl<R: SortableRecord> Drop for PrefetchSource<R> {
    fn drop(&mut self) {
        // Disconnect first so a worker blocked on a full queue wakes up and
        // exits, then wait for it (panics are swallowed here; the explicit
        // `join` on the success path propagates them).
        drop(self.rx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl<R: SortableRecord> MergeSource<R> for PrefetchSource<R> {
    fn next_record(&mut self) -> Result<Option<R>> {
        if self.buffer.is_empty() && !self.done {
            // `rx` is only `None` once `drop` has run; treat that like a
            // disconnected prefetcher instead of panicking.
            match self.rx.as_ref().map(|rx| rx.recv()) {
                None | Some(Err(_)) => self.done = true,
                Some(Ok(Ok(chunk))) => self.buffer = chunk.into(),
                Some(Ok(Err(e))) => {
                    self.done = true;
                    return Err(e);
                }
            }
        }
        Ok(self.buffer.pop_front())
    }
}

/// One multi-pass merge step with a prefetch thread per input run.
fn merge_batch_prefetched<D: Device, R: SortableRecord>(
    device: &D,
    batch: &[RunHandle],
    output: &str,
    read_ahead: usize,
    queue_batches: usize,
    cancel: &CancellationToken,
) -> Result<u64> {
    // Step boundary: a cancel() lands here before the prefetchers spawn.
    cancel.check()?;
    let mut sources: Vec<PrefetchSource<R>> = batch
        .iter()
        .map(|handle| {
            PrefetchSource::spawn(device.clone(), handle.clone(), read_ahead, queue_batches)
        })
        .collect();
    let writer = RunWriter::<R>::create(device, output)?;
    let written = merge_sources(&mut sources, writer, cancel)?;
    for source in sources {
        source.join();
    }
    Ok(written)
}

/// Merges one stripe member's runs down to at most one run *on that member*.
///
/// Runs single-threaded with plain [`BufferedCursor`] sources (no prefetch
/// threads), so the member observes one strictly deterministic read
/// interleaving — which keeps its seek counters reproducible even when
/// several generation shards spilled to the same disk. `device` must be the
/// member-pinned shard view, so the merged output lands on the same disk the
/// inputs live on.
fn reduce_disk_runs<D: Device, R: SortableRecord>(
    device: &D,
    namer: &SpillNamer,
    runs: Vec<RunHandle>,
    fan_in: usize,
    read_ahead: usize,
    cancel: &CancellationToken,
) -> Result<(Vec<RunHandle>, MergeReport)> {
    if runs.len() <= 1 {
        return Ok((runs, MergeReport::default()));
    }
    let mut merge_batch = |batch: &[RunHandle], name: &str| -> Result<u64> {
        cancel.check()?;
        let mut sources = Vec::with_capacity(batch.len());
        for handle in batch {
            let cursor = RunCursor::<R>::open(device, handle)?;
            sources.push(BufferedCursor::new(cursor, read_ahead));
        }
        let writer = RunWriter::<R>::create(device, name)?;
        merge_sources(&mut sources, writer, cancel)
    };
    let ReducedRuns {
        remaining,
        mut report,
    } = reduce_to_fan_in(device, namer, runs, fan_in, cancel, &mut merge_batch)?;
    if remaining.len() <= 1 {
        return Ok((remaining, report));
    }
    let name = namer.next_name("disk");
    let written = merge_batch(&remaining, &name)?;
    for handle in &remaining {
        remove_run(device, handle)?;
    }
    report.merge_steps += 1;
    report.records_written += written;
    Ok((vec![RunHandle::Forward(name)], report))
}

// ---------------------------------------------------------------------------
// The parallel sorter
// ---------------------------------------------------------------------------

/// Configuration of the parallel sorting pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSorterConfig {
    /// Number of generation shards (worker threads). The memory budget of
    /// the run-generation algorithm is divided over the shards so total
    /// memory stays fixed; see [`ShardableGenerator`].
    pub threads: usize,
    /// Merge-phase configuration, exactly as in the sequential sorter; the
    /// read-ahead also sets the prefetch batch size.
    pub merge: MergeConfig,
    /// When `true`, the output is scanned after the merge and verified to
    /// be sorted and complete (reported separately, like the sequential
    /// sorter's verify phase).
    pub verify: bool,
    /// Capacity (in queued operations, i.e. pages) of each shard's bounded
    /// spill-writer channel.
    pub spill_queue_pages: usize,
    /// How many read-ahead batches each merge prefetch thread may buffer.
    pub prefetch_batches: usize,
    /// Records per round-robin parcel when dealing the input to shards.
    /// Determines the (deterministic) shard contents; larger parcels
    /// amortise channel traffic.
    pub shard_batch_records: usize,
}

impl Default for ParallelSorterConfig {
    fn default() -> Self {
        ParallelSorterConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            merge: MergeConfig::default(),
            verify: false,
            spill_queue_pages: 64,
            prefetch_batches: 4,
            shard_batch_records: 256,
        }
    }
}

impl ParallelSorterConfig {
    /// A configuration with an explicit thread count and defaults elsewhere.
    pub fn with_threads(threads: usize) -> Self {
        ParallelSorterConfig {
            threads,
            ..Self::default()
        }
    }

    /// The sequential [`SorterConfig`] this parallel configuration mirrors
    /// (same merge parameters and verify flag).
    pub fn sequential(&self) -> SorterConfig {
        SorterConfig {
            merge: self.merge,
            verify: self.verify,
        }
    }
}

/// What one generation shard did: its slice of the input, its runs and the
/// I/O its worker (including its spill writer) performed, measured on the
/// shard's own [`ScopedDevice`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Index of the shard (0-based).
    pub shard: usize,
    /// Records this shard consumed from the input.
    pub records: u64,
    /// Runs this shard generated.
    pub num_runs: usize,
    /// Run-generation I/O of this shard alone.
    pub io: IoStatsSnapshot,
}

/// Report of one parallel sort: the familiar aggregated [`SortReport`] plus
/// the per-shard breakdown.
///
/// The aggregated report attributes phases from device-level snapshot
/// deltas, exactly like the sequential sorter — so run generation includes
/// coordinator-side input reads (e.g. the `sort_file` dataset scan). The
/// shards perform all of the phase's *writes*, so the aggregated
/// `pages_written` equals the field-wise shard sum ([`shard_io_sum`]) by
/// construction; shard seeks are measured by each shard's private head
/// model (see [`ScopedDevice`]).
///
/// [`shard_io_sum`]: ParallelSortReport::shard_io_sum
#[derive(Debug, Clone)]
pub struct ParallelSortReport {
    /// The aggregated report, directly comparable with the sequential
    /// sorter's.
    pub report: SortReport,
    /// Number of generation shards used.
    pub threads: usize,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardReport>,
}

impl ParallelSortReport {
    /// Field-wise sum of the per-shard run-generation I/O counters.
    pub fn shard_io_sum(&self) -> IoStatsSnapshot {
        let model = self.shards.first().map(|s| s.io.model).unwrap_or_default();
        self.shards
            .iter()
            .fold(IoStatsSnapshot::zero(model), |acc, s| acc.merged(&s.io))
    }

    /// `true` when the report's I/O accounting is internally consistent —
    /// the invariant the equivalence suite pins:
    ///
    /// * the aggregated run-generation `pages_written` equals the
    ///   field-wise sum of the per-shard counters (the shards perform all
    ///   of the phase's writes);
    /// * the aggregated `pages_read` covers at least the shards' own reads
    ///   (the remainder is coordinator-side input reading, which belongs
    ///   to the phase but to no shard);
    /// * the shard record counts sum to the total.
    pub fn io_is_consistent(&self) -> bool {
        let sum = self.shard_io_sum();
        let gen = &self.report.run_generation;
        let records: u64 = self.shards.iter().map(|s| s.records).sum();
        sum.counters.pages_written == gen.pages_written
            && gen.pages_read >= sum.counters.pages_read
            && records == self.report.records
    }
}

/// What a finished generation worker hands back to the coordinator.
struct ShardOutcome {
    set: RunSet,
    io: IoStatsSnapshot,
}

/// Everything the generation phase produced, kept per shard so a striped
/// device can route each shard's runs back to the stripe member that holds
/// them (shard `i` spills to member `i % members`, see `generate_sharded`).
struct GeneratedRuns {
    run_set: RunSet,
    runs_by_shard: Vec<Vec<RunHandle>>,
    shards: Vec<ShardReport>,
    run_phase: PhaseReport,
    after_runs: IoStatsSnapshot,
}

/// An external sorter that parallelises run generation across budget-divided
/// shards, overlaps spill writes with heap work, and prefetches merge input
/// in the background. See the module documentation for the architecture.
pub struct ParallelExternalSorter<G: ShardableGenerator> {
    generator: G,
    config: ParallelSorterConfig,
    cancel: CancellationToken,
}

impl<G: ShardableGenerator> ParallelExternalSorter<G> {
    /// Creates a parallel sorter with the default configuration (one shard
    /// per available core).
    #[deprecated(
        since = "0.1.0",
        note = "use the `SortJob` builder front door instead: \
                `SortJob::new(generator).on(&device).threads(n).run_iter(input, \"out\")`"
    )]
    pub fn new(generator: G) -> Self {
        ParallelExternalSorter {
            generator,
            config: ParallelSorterConfig::default(),
            cancel: CancellationToken::new(),
        }
    }

    /// Creates a parallel sorter with an explicit configuration.
    pub fn with_config(generator: G, config: ParallelSorterConfig) -> Self {
        ParallelExternalSorter {
            generator,
            config,
            cancel: CancellationToken::new(),
        }
    }

    /// Installs a cooperative cancellation token; see
    /// [`ExternalSorter::set_cancel_token`](crate::sorter::ExternalSorter::set_cancel_token).
    /// On the parallel path the coordinator stops dealing input parcels to
    /// the generation shards once the flag is set, and the merge checks it
    /// between passes and every few hundred merged records.
    pub fn set_cancel_token(&mut self, cancel: CancellationToken) {
        self.cancel = cancel;
    }

    /// The pipeline configuration.
    pub fn config(&self) -> ParallelSorterConfig {
        self.config
    }

    /// A reference to the run-generation algorithm being sharded.
    pub fn generator(&self) -> &G {
        &self.generator
    }

    /// Sorts the records produced by `input` into the forward run file
    /// `output` on `device`. The output is byte-identical to what
    /// [`ExternalSorter::sort_iter`](crate::sorter::ExternalSorter::sort_iter)
    /// produces for the same input.
    pub fn sort_iter<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        output: &str,
    ) -> Result<ParallelSortReport> {
        let threads = self.config.threads;
        if threads == 0 {
            return Err(SortError::InvalidConfig(
                "parallel sorter needs at least one thread".into(),
            ));
        }
        let namer = Arc::new(SpillNamer::new(format!("psort-{output}")));
        let mut sweeper = SpillSweeper::new(device, &namer, Some(output));
        let result = self.sort_iter_inner(device, input, output, &namer);
        sweeper.disarm();
        // Clean up spill files on success *and* on error — by this point
        // every worker thread has been joined (generate_sharded joins all
        // shards before reporting a failure), so no detached writer can
        // recreate a removed name. A canceled or failed merge may also
        // have left a partial output file.
        let cleanup = namer.cleanup(device);
        if result.is_err() && device.exists(output) {
            let _ = device.remove(output);
        }
        let report = result?;
        cleanup?;
        Ok(report)
    }

    fn sort_iter_inner<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        output: &str,
        namer: &Arc<SpillNamer>,
    ) -> Result<ParallelSortReport> {
        let threads = self.config.threads;
        let GeneratedRuns {
            run_set,
            runs_by_shard,
            shards,
            run_phase,
            after_runs,
        } = self.generate_phase(device, namer, input)?;

        // --- Prefetched merge ------------------------------------------
        let merge = self.config.merge;
        let prefetch = self.config.prefetch_batches;
        let started = Instant::now();
        let (merge_input, disk_report) =
            self.reduce_per_disk::<D, R>(device, namer, run_set.runs.clone(), &runs_by_shard)?;
        let mut outcome = merge_passes::<D, R, _>(
            device,
            namer.as_ref(),
            merge_input,
            output,
            merge.fan_in,
            &self.cancel,
            |batch, name| {
                merge_batch_prefetched::<D, R>(
                    device,
                    batch,
                    name,
                    merge.read_ahead_records,
                    prefetch,
                    &self.cancel,
                )
            },
        )?;
        outcome.report.merge_steps += disk_report.merge_steps;
        outcome.report.records_written += disk_report.records_written;
        let merge_wall = started.elapsed();
        let after_merge = device.stats();
        let merge_phase = PhaseReport::from_delta(merge_wall, after_merge.since(&after_runs));

        // --- Optional verification (own snapshot window) ----------------
        let verify_phase = verify_phase_report::<D, R>(
            device,
            self.config.verify,
            output,
            run_set.records,
            &after_merge,
        )?;

        Ok(ParallelSortReport {
            report: self.report(
                &run_set,
                run_phase,
                merge_phase,
                verify_phase,
                outcome.report,
                FinalPassKind::File,
                outcome.final_pass_pages_written,
            ),
            threads,
            shards,
        })
    }

    /// Sorts the records produced by `input` straight into `sink`: the
    /// final merge pass, fed by per-run background prefetch threads, drains
    /// into the sink instead of writing an output file. See
    /// [`ExternalSorter::sort_iter_sink`](crate::sorter::ExternalSorter::sort_iter_sink)
    /// for the shared semantics (no verify phase, spill cleanup on a sink
    /// failure).
    pub fn sort_iter_sink<D: Device, R: SortableRecord, K>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        sink: &mut K,
    ) -> Result<ParallelSortReport>
    where
        K: RecordSink<R> + ?Sized,
    {
        if self.config.threads == 0 {
            return Err(SortError::InvalidConfig(
                "parallel sorter needs at least one thread".into(),
            ));
        }
        let namer = Arc::new(SpillNamer::new(unique_namespace("psort-sink")));
        let mut sweeper = SpillSweeper::new(device, &namer, None);
        let result = self.sort_sink_inner(device, input, sink, &namer);
        sweeper.disarm();
        let cleanup = namer.cleanup(device);
        let report = result?;
        cleanup?;
        Ok(report)
    }

    fn sort_sink_inner<D: Device, R: SortableRecord, K>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        sink: &mut K,
        namer: &Arc<SpillNamer>,
    ) -> Result<ParallelSortReport>
    where
        K: RecordSink<R> + ?Sized,
    {
        let threads = self.config.threads;
        let GeneratedRuns {
            run_set,
            runs_by_shard,
            shards,
            run_phase,
            after_runs,
        } = self.generate_phase(device, namer, input)?;

        let started = Instant::now();
        let (reduce_input, disk_report) =
            self.reduce_per_disk::<D, R>(device, namer, run_set.runs.clone(), &runs_by_shard)?;
        let ReducedRuns {
            remaining,
            report: mut merge_report,
        } = self.reduce_phase::<D, R>(device, namer, reduce_input)?;
        merge_report.merge_steps += disk_report.merge_steps;
        merge_report.records_written += disk_report.records_written;

        // --- Final pass: prefetch threads feed the sink ----------------
        let mut sources = self.spawn_prefetchers::<D, R>(device, &remaining);
        let final_writes = finish_into_sink(
            device,
            &mut sources,
            sink,
            &remaining,
            &mut merge_report,
            &self.cancel,
        )?;
        // Propagate any prefetcher panic (a plain drop would swallow it).
        for source in sources {
            source.join();
        }
        let merge_wall = started.elapsed();
        let merge_phase = PhaseReport::from_delta(merge_wall, device.stats().since(&after_runs));

        Ok(ParallelSortReport {
            report: self.report(
                &run_set,
                run_phase,
                merge_phase,
                None,
                merge_report,
                FinalPassKind::Sink,
                final_writes,
            ),
            threads,
            shards,
        })
    }

    /// Sorts the records produced by `input` into a lazy [`SortedStream`]
    /// whose suspended final merge is fed by one background prefetch thread
    /// per surviving run — the stream consumer overlaps with the
    /// prefetchers' read I/O. See
    /// [`ExternalSorter::sort_iter_stream`](crate::sorter::ExternalSorter::sort_iter_stream)
    /// for the shared semantics (stream owns the spill files, zero
    /// final-pass writes).
    pub fn sort_iter_stream<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<SortedStream<R>> {
        if self.config.threads == 0 {
            return Err(SortError::InvalidConfig(
                "parallel sorter needs at least one thread".into(),
            ));
        }
        let namer = Arc::new(SpillNamer::new(unique_namespace("psort-stream")));
        let mut sweeper = SpillSweeper::new(device, &namer, None);
        match self.sort_stream_inner(device, input, &namer) {
            Ok(stream) => {
                // The stream owns the spill files from here on.
                sweeper.disarm();
                Ok(stream)
            }
            // The sweeper removes whatever the failed (or panicked) sort
            // left behind when it drops.
            Err(error) => Err(error),
        }
    }

    fn sort_stream_inner<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        namer: &Arc<SpillNamer>,
    ) -> Result<SortedStream<R>> {
        let threads = self.config.threads;
        let GeneratedRuns {
            run_set,
            runs_by_shard,
            shards,
            run_phase,
            after_runs,
        } = self.generate_phase(device, namer, input)?;

        let started = Instant::now();
        let (reduce_input, disk_report) =
            self.reduce_per_disk::<D, R>(device, namer, run_set.runs.clone(), &runs_by_shard)?;
        let ReducedRuns {
            remaining,
            report: mut merge_report,
        } = self.reduce_phase::<D, R>(device, namer, reduce_input)?;
        merge_report.merge_steps += disk_report.merge_steps;
        merge_report.records_written += disk_report.records_written;
        // Close the merge window at the suspension point, *before* the
        // prefetch threads spawn: their background reads would otherwise
        // race the snapshot and make the phase counters nondeterministic.
        let merge_wall = started.elapsed();
        let merge_phase = PhaseReport::from_delta(merge_wall, device.stats().since(&after_runs));
        let sources: Vec<StreamSource<R>> = self
            .spawn_prefetchers::<D, R>(device, &remaining)
            .into_iter()
            .map(StreamSource::Prefetch)
            .collect();

        let report = SortJobReport::parallel(ParallelSortReport {
            report: self.report(
                &run_set,
                run_phase,
                merge_phase,
                None,
                merge_report,
                FinalPassKind::Streamed,
                0,
            ),
            threads,
            shards,
        });
        let cleanup_device = device.clone();
        let cleanup_namer = Arc::clone(namer);
        SortedStream::new(
            sources,
            report,
            Box::new(move || {
                cleanup_namer
                    .cleanup(&cleanup_device)
                    .map_err(SortError::from)
            }),
        )
    }

    /// Runs sharded generation in its own snapshot window and flattens the
    /// shard outcomes.
    ///
    /// The phase is attributed from the device-level delta, exactly like
    /// the sequential sorter: that way coordinator-side input reads (a
    /// `sort_file` input dataset, or any caller iterator that reads the
    /// same device) land in `run_generation` instead of being dropped. The
    /// per-shard scoped statistics provide the breakdown of the work the
    /// shards themselves did (all of the phase's writes).
    fn generate_phase<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &Arc<SpillNamer>,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<GeneratedRuns> {
        let before = device.stats();
        let started = Instant::now();
        let outcomes = self.generate_sharded(device, namer, input)?;
        // A cancellation observed while dealing parcels stops the feed;
        // surface it here (after every shard has been joined) so the
        // truncated prefix never masquerades as a completed generation.
        self.cancel.check()?;
        let run_wall = started.elapsed();
        let after_runs = device.stats();

        let mut runs: Vec<RunHandle> = Vec::new();
        let mut runs_by_shard = Vec::with_capacity(outcomes.len());
        let mut records = 0u64;
        let mut shards = Vec::with_capacity(outcomes.len());
        for (index, outcome) in outcomes.into_iter().enumerate() {
            records += outcome.set.records;
            shards.push(ShardReport {
                shard: index,
                records: outcome.set.records,
                num_runs: outcome.set.num_runs(),
                io: outcome.io,
            });
            runs.extend(outcome.set.runs.iter().cloned());
            runs_by_shard.push(outcome.set.runs);
        }
        let run_set = RunSet { runs, records };
        let run_phase = PhaseReport::from_delta(run_wall, after_runs.since(&before));
        Ok(GeneratedRuns {
            run_set,
            runs_by_shard,
            shards,
            run_phase,
            after_runs,
        })
    }

    /// On a striped device with sharded generation, folds each stripe
    /// member's runs into at most one run per member before the global
    /// merge; otherwise returns the runs untouched.
    ///
    /// Generation pins shard `i`'s spill files to member `i % members`, so
    /// each member's runs can be merged by a dedicated single-threaded
    /// reducer on the member-pinned view ([`reduce_disk_runs`]) — per-disk
    /// read order stays deterministic no matter how the reducer threads
    /// interleave, because each touches a different disk's head. The
    /// survivors (≤ one per member) then feed the ordinary merge machinery,
    /// whose final pass reads at most one run per member and is therefore
    /// deterministic too. This is what restores concrete per-disk seek
    /// counters at `threads > 1`.
    fn reduce_per_disk<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &Arc<SpillNamer>,
        runs: Vec<RunHandle>,
        runs_by_shard: &[Vec<RunHandle>],
    ) -> Result<(Vec<RunHandle>, MergeReport)> {
        let disks = device.stripe_members();
        if disks <= 1 || self.config.threads <= 1 {
            return Ok((runs, MergeReport::default()));
        }
        let mut disk_runs: Vec<Vec<RunHandle>> = vec![Vec::new(); disks];
        for (shard, shard_runs) in runs_by_shard.iter().enumerate() {
            disk_runs[shard % disks].extend(shard_runs.iter().cloned());
        }
        let merge = self.config.merge;
        let mut reducers = Vec::with_capacity(disks);
        for (disk, member_runs) in disk_runs.into_iter().enumerate() {
            let view = device.shard_view(disk);
            let namer = Arc::clone(namer);
            let cancel = self.cancel.clone();
            reducers.push(std::thread::spawn(
                move || -> Result<(Vec<RunHandle>, MergeReport)> {
                    reduce_disk_runs::<D, R>(
                        &view,
                        namer.as_ref(),
                        member_runs,
                        merge.fan_in,
                        merge.read_ahead_records,
                        &cancel,
                    )
                },
            ));
        }
        // Join every reducer before reporting anything (mirrors
        // `generate_sharded`): no disk is left merging after an error.
        type ReducerOutcome = Result<(Vec<RunHandle>, MergeReport)>;
        let results: Vec<std::thread::Result<ReducerOutcome>> =
            reducers.into_iter().map(|reducer| reducer.join()).collect();
        let mut remaining = Vec::new();
        let mut combined = MergeReport::default();
        for result in results {
            match result {
                Ok(outcome) => {
                    let (member_remaining, report) = outcome?;
                    remaining.extend(member_remaining);
                    combined.merge_steps += report.merge_steps;
                    combined.records_written += report.records_written;
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        Ok((remaining, combined))
    }

    /// Runs the intermediate prefetched merge passes until at most `fan_in`
    /// runs remain.
    fn reduce_phase<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &Arc<SpillNamer>,
        runs: Vec<RunHandle>,
    ) -> Result<ReducedRuns> {
        let merge = self.config.merge;
        let prefetch = self.config.prefetch_batches;
        reduce_to_fan_in(
            device,
            namer.as_ref(),
            runs,
            merge.fan_in,
            &self.cancel,
            &mut |batch: &[RunHandle], name: &str| {
                merge_batch_prefetched::<D, R>(
                    device,
                    batch,
                    name,
                    merge.read_ahead_records,
                    prefetch,
                    &self.cancel,
                )
            },
        )
    }

    /// Spawns one background prefetch thread per run of `batch`.
    fn spawn_prefetchers<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        batch: &[RunHandle],
    ) -> Vec<PrefetchSource<R>> {
        batch
            .iter()
            .map(|handle| {
                PrefetchSource::spawn(
                    device.clone(),
                    handle.clone(),
                    self.config.merge.read_ahead_records,
                    self.config.prefetch_batches,
                )
            })
            .collect()
    }

    /// Assembles the aggregated [`SortReport`] from the measured phases
    /// (shared constructor with the sequential engine).
    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        run_set: &RunSet,
        run_generation: PhaseReport,
        merge: PhaseReport,
        verify: Option<PhaseReport>,
        merge_report: crate::merge::kway::MergeReport,
        final_pass: FinalPassKind,
        final_pass_pages_written: u64,
    ) -> SortReport {
        assemble_report(
            self.generator.label(),
            self.generator.memory_records(),
            run_set,
            run_generation,
            merge,
            verify,
            merge_report,
            final_pass,
            final_pass_pages_written,
        )
    }

    /// Sorts a dataset of `R` records previously materialised on the
    /// device (see `twrs_workloads::materialize`) into the forward run file
    /// `output`.
    ///
    /// The record type cannot be inferred from the file names, so call this
    /// as `sorter.sort_file_as::<_, MyRecord>(…)`. For the default paper
    /// record the facade crate provides a `sort_file` extension method with
    /// the historical signature.
    ///
    /// A corrupt or truncated input dataset surfaces as an
    /// [`SortError::Storage`] error, never as a panic. The pipeline sorts
    /// the readable prefix before the error is detected (the generators
    /// see an ordinary end of stream), but the partial output file and the
    /// spill files are cleaned up, so no valid-looking truncated result
    /// survives.
    pub fn sort_file_as<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &str,
        output: &str,
    ) -> Result<ParallelSortReport> {
        sort_dataset_file::<D, R, _>(device, input, Some(output), |iter| {
            self.sort_iter(device, iter, output)
        })
    }

    /// Spawns the generation workers, deals the input to them round-robin
    /// and collects their run sets in shard order.
    fn generate_sharded<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &Arc<SpillNamer>,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<Vec<ShardOutcome>> {
        let threads = self.config.threads;
        let queue_depth = self.config.spill_queue_pages;
        let mut senders: Vec<Option<SyncSender<Vec<R>>>> = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for index in 0..threads {
            let (tx, rx) = sync_channel::<Vec<R>>(2);
            senders.push(Some(tx));
            let mut generator = self.generator.shard(index, threads);
            // On a striped device the shard view pins this worker's spill
            // files to stripe member `index % members` (plain devices return
            // a clone), so each shard's write traffic — and later its
            // reduction merge — stays on one disk.
            let scoped = ScopedDevice::new(device.shard_view(index));
            let namer = Arc::clone(namer);
            workers.push(std::thread::spawn(move || -> Result<ShardOutcome> {
                let spill = SpillWriteDevice::new(scoped.clone(), queue_depth);
                let mut shard_input = rx.into_iter().flatten();
                let set = generator.generate(&spill, namer.as_ref(), &mut shard_input)?;
                // Drain the spill queue (and surface writer errors) before
                // reading the shard's I/O statistics.
                spill.barrier()?;
                drop(spill);
                Ok(ShardOutcome {
                    set,
                    io: scoped.local_stats(),
                })
            }));
        }

        // Deal the input in round-robin parcels. A worker that failed early
        // drops its receiver; we stop feeding it and let the join below
        // surface its error. When every worker is gone there is no point
        // draining the rest of the input.
        let parcel = self.config.shard_batch_records.max(1);
        let mut shard = 0usize;
        let mut live = threads;
        while live > 0 {
            // Heap-refill-grained cancellation point: stop feeding the
            // shards; they finish their current runs and the post-join
            // check in `generate_phase` surfaces the cancellation.
            if self.cancel.is_canceled() {
                break;
            }
            let batch: Vec<R> = input.take(parcel).collect();
            if batch.is_empty() {
                break;
            }
            if let Some(tx) = senders[shard].as_ref() {
                if tx.send(batch).is_err() {
                    senders[shard] = None;
                    live -= 1;
                }
            }
            shard = (shard + 1) % threads;
        }
        drop(senders);

        // Join every worker before reporting anything, so no shard is left
        // running (and writing spill files) after this function returns.
        let results: Vec<std::thread::Result<Result<ShardOutcome>>> =
            workers.into_iter().map(|worker| worker.join()).collect();
        let mut outcomes = Vec::with_capacity(threads);
        for result in results {
            match result {
                Ok(outcome) => outcomes.push(outcome?),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_sort_store::LoadSortStore;
    use crate::replacement_selection::ReplacementSelection;
    use crate::sorter::ExternalSorter;
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;
    use twrs_workloads::{Distribution, DistributionKind, Record};

    fn config(threads: usize) -> ParallelSorterConfig {
        ParallelSorterConfig {
            threads,
            merge: MergeConfig {
                fan_in: 4,
                read_ahead_records: 64,
            },
            verify: true,
            spill_queue_pages: 8,
            prefetch_batches: 2,
            shard_batch_records: 100,
        }
    }

    fn read_records<D: Device>(device: &D, name: &str) -> Vec<Record> {
        RunCursor::<Record>::open(device, &RunHandle::Forward(name.into()))
            .unwrap()
            .read_all()
            .unwrap()
    }

    #[test]
    fn shard_budgets_sum_to_the_total() {
        for (total, shards) in [(100, 4), (101, 4), (7, 7), (1_000, 3), (13, 5)] {
            let sum: usize = (0..shards).map(|i| shard_budget(total, i, shards)).sum();
            assert_eq!(sum, total, "total {total} over {shards} shards");
        }
        // Degenerate: fewer records than shards — every shard still gets 1.
        for i in 0..4 {
            assert_eq!(shard_budget(2, i, 4), 1);
        }
    }

    #[test]
    fn parallel_sort_matches_sequential_output() {
        for threads in [1, 2, 3, 5] {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let mut seq = ExternalSorter::with_config(
                ReplacementSelection::new(120),
                config(threads).sequential(),
            );
            let mut input = Distribution::new(DistributionKind::RandomUniform, 4_000, 5).records();
            seq.sort_iter(&device, &mut input, "seq").unwrap();

            let mut par = ParallelExternalSorter::with_config(
                ReplacementSelection::new(120),
                config(threads),
            );
            let mut input = Distribution::new(DistributionKind::RandomUniform, 4_000, 5).records();
            let report = par.sort_iter(&device, &mut input, "par").unwrap();

            assert_eq!(report.threads, threads);
            assert_eq!(report.report.records, 4_000);
            assert!(report.io_is_consistent());
            assert_eq!(
                read_records(&device, "seq"),
                read_records(&device, "par"),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn striped_parallel_sort_matches_single_disk_and_pins_per_disk_seeks() {
        use twrs_storage::DeviceSpec;

        let threads = 4;
        let single = SimDevice::with_model(ModelId::Hdd7200);
        let mut par =
            ParallelExternalSorter::with_config(ReplacementSelection::new(120), config(threads));
        let mut input = Distribution::new(DistributionKind::RandomUniform, 4_000, 5).records();
        par.sort_iter(&single, &mut input, "out").unwrap();
        let expected = read_records(&single, "out");

        let run_striped = || {
            let spec: DeviceSpec = "striped:4:sim:hdd-7200".parse().unwrap();
            let device = spec.build().unwrap();
            let mut par = ParallelExternalSorter::with_config(
                ReplacementSelection::new(120),
                config(threads),
            );
            let mut input = Distribution::new(DistributionKind::RandomUniform, 4_000, 5).records();
            let report = par.sort_iter(&device, &mut input, "out").unwrap();
            assert!(report.io_is_consistent());
            let members = device.as_striped().unwrap().member_stats();
            let totals = device.stats();
            // Per-member counters sum to the stripe totals.
            assert_eq!(
                members.iter().map(|m| m.counters.seeks).sum::<u64>(),
                totals.counters.seeks
            );
            assert_eq!(
                members.iter().map(|m| m.pages_total()).sum::<u64>(),
                totals.pages_total()
            );
            // Every member actually saw spill traffic.
            assert!(members.iter().all(|m| m.counters.pages_written > 0));
            let seeks: Vec<u64> = members.iter().map(|m| m.counters.seeks).collect();
            (read_records(&device, "out"), seeks)
        };
        let (records_a, seeks_a) = run_striped();
        let (records_b, seeks_b) = run_striped();
        // Byte-identical to the single-disk sort, and per-disk seek counts
        // reproduce exactly across runs even at four threads.
        assert_eq!(records_a, expected);
        assert_eq!(records_b, expected);
        assert_eq!(seeks_a, seeks_b);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut par = ParallelExternalSorter::with_config(LoadSortStore::new(64), config(4));
        let mut input = std::iter::empty::<Record>();
        let report = par.sort_iter(&device, &mut input, "out").unwrap();
        assert_eq!(report.report.records, 0);
        assert_eq!(report.report.num_runs, 0);
        assert!(report.io_is_consistent());
        assert!(read_records(&device, "out").is_empty());
    }

    #[test]
    fn zero_threads_is_rejected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut par = ParallelExternalSorter::with_config(LoadSortStore::new(64), config(0));
        let mut input = std::iter::empty::<Record>();
        assert!(matches!(
            par.sort_iter(&device, &mut input, "out"),
            Err(SortError::InvalidConfig(_))
        ));
    }

    #[test]
    fn temporary_files_are_cleaned_up() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut par = ParallelExternalSorter::with_config(ReplacementSelection::new(50), config(3));
        let mut input = Distribution::new(DistributionKind::MixedBalanced, 2_000, 2).records();
        par.sort_iter(&device, &mut input, "final").unwrap();
        assert_eq!(device.list(), vec!["final".to_string()]);
    }

    #[test]
    fn spill_device_defers_writes_until_flush_barrier() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let spill = SpillWriteDevice::new(device.clone(), 16);
        let page = vec![42u8; device.page_size()];
        let mut file = spill.create("f").unwrap();
        file.write_page(0, &page).unwrap();
        file.write_page(1, &page).unwrap();
        assert_eq!(file.num_pages(), 2);
        file.flush().unwrap();
        // After the barrier, the wrapped device has both pages.
        let mut direct = device.open("f").unwrap();
        assert_eq!(direct.num_pages(), 2);
        let mut buf = vec![0u8; device.page_size()];
        direct.read_page(1, &mut buf).unwrap();
        assert_eq!(buf, page);
    }

    #[test]
    fn spill_device_read_page_sees_queued_writes() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let spill = SpillWriteDevice::new(device.clone(), 16);
        let page = vec![7u8; device.page_size()];
        let mut file = spill.create("f").unwrap();
        file.write_page(0, &page).unwrap();
        let mut buf = vec![0u8; device.page_size()];
        file.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, page);
    }

    #[test]
    fn spill_device_rejects_wrong_page_size() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let spill = SpillWriteDevice::new(device, 4);
        let mut file = spill.create("f").unwrap();
        assert!(matches!(
            file.write_page(0, &[0u8; 3]),
            Err(StorageError::PageSizeMismatch { .. })
        ));
    }
}
