//! Destinations for the final merge pass: the [`RecordSink`] trait and its
//! standard implementations.
//!
//! The sort pipeline exists to feed a consumer, and "a named run file on the
//! device" is only one possible consumer. A [`RecordSink`] receives the
//! fully merged record sequence, in ascending order, one record at a time —
//! the final k-way merge drains straight into it, so a non-file sink pays
//! **no final output write pass** at all. Four destinations ship with the
//! crate:
//!
//! * [`FileSink`] — the classic destination: a forward run file on a
//!   storage device (`SortJob::run_iter` is a thin wrapper over it);
//! * [`VecSink`] — collect the sorted records into memory;
//! * [`CallbackSink`] — hand each record to a closure (top-k scans,
//!   aggregation, bulk-load adapters);
//! * [`ChannelSink`] — push records into a bounded [`SyncSender`] so a
//!   consumer thread overlaps with the merge (back-pressure included).
//!
//! For pull-style consumption — an `Iterator` the caller drives at its own
//! pace — see [`SortedStream`](crate::stream::SortedStream), which suspends
//! the final merge instead of draining it.

use crate::error::{Result, SortError};
use std::sync::mpsc::SyncSender;
use twrs_storage::{RunWriter, SortableRecord, StorageDevice};

/// A destination for the final merge pass of a sort.
///
/// The pipeline calls [`push`](RecordSink::push) once per record, in
/// ascending order, then [`finish`](RecordSink::finish) exactly once after
/// the last record. An error from either aborts the sort; the pipeline then
/// removes its remaining spill files before surfacing the error, so a
/// failing sink never leaks device space.
pub trait RecordSink<R: SortableRecord> {
    /// Accepts the next record of the sorted output.
    fn push(&mut self, record: R) -> Result<()>;

    /// Called once after the last record; flush buffered state here.
    fn finish(&mut self) -> Result<()> {
        Ok(())
    }
}

/// A sink writing a forward run file on a storage device — the destination
/// `run_iter`/`run_file` wrap. The file is created eagerly so the name is
/// visible at once; records stream into it page by page.
pub struct FileSink<R: SortableRecord> {
    writer: Option<RunWriter<R>>,
    name: String,
}

impl<R: SortableRecord> FileSink<R> {
    /// Creates the named output file on `device` and prepares to receive
    /// records.
    pub fn create(device: &dyn StorageDevice, name: &str) -> Result<Self> {
        Ok(FileSink {
            writer: Some(RunWriter::create(device, name)?),
            name: name.to_string(),
        })
    }

    /// Wraps an already created writer (the merge phase's intermediate
    /// outputs go through here).
    pub(crate) fn from_writer(writer: RunWriter<R>) -> Self {
        FileSink {
            writer: Some(writer),
            name: "<unnamed>".to_string(),
        }
    }

    /// Name of the output file this sink writes.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn writer(&mut self) -> Result<&mut RunWriter<R>> {
        let name = &self.name;
        self.writer
            .as_mut()
            .ok_or_else(|| SortError::SinkClosed(format!("file sink {name:?} already finished")))
    }
}

impl<R: SortableRecord> RecordSink<R> for FileSink<R> {
    fn push(&mut self, record: R) -> Result<()> {
        self.writer()?.push(&record)?;
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        match self.writer.take() {
            Some(writer) => {
                writer.finish()?;
                Ok(())
            }
            None => Err(SortError::SinkClosed(
                "file sink finished twice".to_string(),
            )),
        }
    }
}

/// A sink collecting the sorted records into a `Vec`.
#[derive(Debug, Clone)]
pub struct VecSink<R> {
    records: Vec<R>,
}

// Manual impl: an empty `Vec<R>` needs no `R: Default`, which the derive
// would demand.
impl<R> Default for VecSink<R> {
    fn default() -> Self {
        VecSink {
            records: Vec::new(),
        }
    }
}

impl<R: SortableRecord> VecSink<R> {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink {
            records: Vec::new(),
        }
    }

    /// The records collected so far.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// Consumes the sink, returning the collected records.
    pub fn into_vec(self) -> Vec<R> {
        self.records
    }
}

impl<R: SortableRecord> RecordSink<R> for VecSink<R> {
    fn push(&mut self, record: R) -> Result<()> {
        self.records.push(record);
        Ok(())
    }
}

/// A sink handing each record to a closure. The closure may return an error
/// to abort the sort (e.g. a top-k consumer that has seen enough).
pub struct CallbackSink<F> {
    callback: F,
}

impl<F> CallbackSink<F> {
    /// Wraps `callback`; it receives every record in ascending order.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<R: SortableRecord, F: FnMut(R) -> Result<()>> RecordSink<R> for CallbackSink<F> {
    fn push(&mut self, record: R) -> Result<()> {
        (self.callback)(record)
    }
}

/// A sink feeding a bounded channel, so a consumer thread processes the
/// sorted output while the merge is still producing it. When the channel is
/// full the merge blocks (back-pressure); when the receiver hangs up the
/// sort aborts with [`SortError::SinkClosed`].
pub struct ChannelSink<R> {
    sender: Option<SyncSender<R>>,
}

impl<R: SortableRecord> ChannelSink<R> {
    /// Wraps the sending half of a `std::sync::mpsc::sync_channel`.
    pub fn new(sender: SyncSender<R>) -> Self {
        ChannelSink {
            sender: Some(sender),
        }
    }
}

impl<R: SortableRecord> RecordSink<R> for ChannelSink<R> {
    fn push(&mut self, record: R) -> Result<()> {
        let sender = self
            .sender
            .as_ref()
            .ok_or_else(|| SortError::SinkClosed("channel sink already finished".into()))?;
        sender
            .send(record)
            .map_err(|_| SortError::SinkClosed("channel sink receiver hung up".into()))
    }

    fn finish(&mut self) -> Result<()> {
        // Drop the sender so the receiving side sees the end of the stream.
        self.sender.take();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;
    use twrs_workloads::Record;

    #[test]
    fn vec_sink_collects_in_push_order() {
        let mut sink = VecSink::new();
        for k in [3u64, 5, 9] {
            sink.push(Record::from_key(k)).unwrap();
        }
        sink.finish().unwrap();
        assert_eq!(sink.records().len(), 3);
        let keys: Vec<u64> = sink.into_vec().into_iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![3, 5, 9]);
    }

    #[test]
    fn file_sink_writes_a_readable_run() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut sink = FileSink::<Record>::create(&device, "out").unwrap();
        for k in 0..100u64 {
            sink.push(Record::from_key(k)).unwrap();
        }
        RecordSink::<Record>::finish(&mut sink).unwrap();
        let mut reader = twrs_storage::RunReader::<Record>::open(&device, "out").unwrap();
        assert_eq!(reader.len(), 100);
        let mut count = 0;
        while reader.next_record().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 100);
        // Finishing twice (or pushing afterwards) is a sink-closed error.
        assert!(matches!(
            RecordSink::<Record>::finish(&mut sink),
            Err(SortError::SinkClosed(_))
        ));
        assert!(matches!(
            sink.push(Record::from_key(1)),
            Err(SortError::SinkClosed(_))
        ));
    }

    #[test]
    fn callback_sink_forwards_records_and_errors() {
        let mut seen = Vec::new();
        {
            let mut sink = CallbackSink::new(|r: Record| {
                seen.push(r.key);
                Ok(())
            });
            sink.push(Record::from_key(1)).unwrap();
            sink.push(Record::from_key(2)).unwrap();
            sink.finish().unwrap();
        }
        assert_eq!(seen, vec![1, 2]);
        let mut failing =
            CallbackSink::new(|_: Record| Err(SortError::SinkClosed("consumer done".into())));
        assert!(matches!(
            failing.push(Record::from_key(1)),
            Err(SortError::SinkClosed(_))
        ));
    }

    #[test]
    fn channel_sink_feeds_a_consumer_and_detects_hangup() {
        let (tx, rx) = sync_channel::<Record>(4);
        let mut sink = ChannelSink::new(tx);
        let consumer = std::thread::spawn(move || rx.into_iter().map(|r| r.key).sum::<u64>());
        for k in 1..=10u64 {
            sink.push(Record::from_key(k)).unwrap();
        }
        RecordSink::<Record>::finish(&mut sink).unwrap();
        assert_eq!(consumer.join().unwrap(), 55);

        let (tx, rx) = sync_channel::<Record>(1);
        let mut sink = ChannelSink::new(tx);
        drop(rx);
        assert!(matches!(
            sink.push(Record::from_key(1)),
            Err(SortError::SinkClosed(_))
        ));
    }
}
