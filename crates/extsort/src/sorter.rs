//! The end-to-end external sorter: run generation followed by a multi-pass
//! k-way merge.
//!
//! This is the pipeline the paper times in Chapter 6: the run-generation
//! algorithm (classic RS, Load-Sort-Store or 2WRS from the `twrs-core`
//! crate) is a plug-in, the merge phase and its fan-in are shared, and the
//! report splits wall-clock time and I/O between the two phases exactly like
//! the "run" and "total" series of Figures 6.2–6.7.

use crate::error::{Result, SortError};
use crate::merge::kway::{KWayMerger, MergeConfig, MergeReport};
use crate::run_generation::{
    sort_dataset_file, Device, RunCursor, RunGenerator, RunHandle, RunSet,
};
use std::time::{Duration, Instant};
use twrs_storage::{IoStatsSnapshot, SortableRecord, SpillNamer};

/// Configuration of the sorting pipeline that is independent of the
/// run-generation algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct SorterConfig {
    /// Merge-phase configuration (fan-in and per-run read-ahead).
    pub merge: MergeConfig,
    /// When `true`, the output is scanned after the merge and verified to be
    /// sorted and complete (record count). Intended for tests and examples;
    /// costs one extra read pass.
    pub verify: bool,
}

/// Wall-clock time and I/O attributed to one phase of the sort.
#[derive(Debug, Clone, Copy)]
pub struct PhaseReport {
    /// Wall-clock time spent in the phase.
    pub wall: Duration,
    /// Pages read from the device during the phase.
    pub pages_read: u64,
    /// Pages written to the device during the phase.
    pub pages_written: u64,
    /// Seeks performed during the phase.
    pub seeks: u64,
    /// Elapsed time predicted by the device's disk model for the phase's
    /// I/O (deterministic; useful with the simulated device).
    pub simulated_io: Duration,
}

impl PhaseReport {
    pub(crate) fn from_delta(wall: Duration, delta: IoStatsSnapshot) -> Self {
        PhaseReport {
            wall,
            pages_read: delta.counters.pages_read,
            pages_written: delta.counters.pages_written,
            seeks: delta.counters.seeks,
            simulated_io: delta.simulated_time(),
        }
    }

    /// Wall-clock time plus the simulated I/O time; a deterministic proxy
    /// for total elapsed time on the in-memory device.
    pub fn modelled_total(&self) -> Duration {
        self.wall + self.simulated_io
    }
}

/// Full report of one external sort.
#[derive(Debug, Clone)]
pub struct SortReport {
    /// Label of the run-generation algorithm ("RS", "2WRS", "LSS", …).
    pub generator: &'static str,
    /// Number of records sorted.
    pub records: u64,
    /// Number of runs the generation phase produced.
    pub num_runs: usize,
    /// Average run length in records.
    pub average_run_length: f64,
    /// Average run length divided by the memory budget (Table 5.13 metric).
    pub relative_run_length: f64,
    /// Run-generation phase cost.
    pub run_generation: PhaseReport,
    /// Merge phase cost.
    pub merge: PhaseReport,
    /// Cost of the optional post-merge verification scan
    /// ([`SorterConfig::verify`]); `None` when verification was disabled.
    /// Reported separately so the extra read pass never pollutes the merge
    /// phase's I/O attribution.
    pub verify: Option<PhaseReport>,
    /// Merge statistics (steps and rewrite passes).
    pub merge_report: MergeReport,
}

impl SortReport {
    /// Total wall-clock time of both phases.
    pub fn total_wall(&self) -> Duration {
        self.run_generation.wall + self.merge.wall
    }

    /// Total modelled time (wall + simulated I/O) of both phases.
    pub fn total_modelled(&self) -> Duration {
        self.run_generation.modelled_total() + self.merge.modelled_total()
    }
}

/// An external sorter parameterised by its run-generation algorithm.
pub struct ExternalSorter<G: RunGenerator> {
    generator: G,
    config: SorterConfig,
}

impl<G: RunGenerator> ExternalSorter<G> {
    /// Creates a sorter with the default pipeline configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use the `SortJob` builder front door instead \
                (`SortJob::new(generator).on(&device).run_iter(input, \"out\")`), \
                or `ExternalSorter::with_config` for a generator that does not \
                implement `ShardableGenerator`"
    )]
    pub fn new(generator: G) -> Self {
        ExternalSorter {
            generator,
            config: SorterConfig::default(),
        }
    }

    /// Creates a sorter with an explicit pipeline configuration.
    pub fn with_config(generator: G, config: SorterConfig) -> Self {
        ExternalSorter { generator, config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> SorterConfig {
        self.config
    }

    /// A reference to the run-generation algorithm.
    pub fn generator(&self) -> &G {
        &self.generator
    }

    /// Sorts the records produced by `input` into the forward run file
    /// `output` on `device`.
    pub fn sort_iter<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        output: &str,
    ) -> Result<SortReport> {
        let namer = SpillNamer::new(format!("sort-{output}"));

        // --- Run generation phase -------------------------------------
        let before = device.stats();
        let started = Instant::now();
        let run_set: RunSet = self.generator.generate(device, &namer, input)?;
        let run_wall = started.elapsed();
        let after_runs = device.stats();
        let run_phase = PhaseReport::from_delta(run_wall, after_runs.since(&before));

        // --- Merge phase -----------------------------------------------
        let merger = KWayMerger::new(self.config.merge);
        let started = Instant::now();
        let merge_report =
            merger.merge_into::<D, R>(device, &namer, run_set.runs.clone(), output)?;
        let merge_wall = started.elapsed();
        let after_merge = device.stats();
        let merge_phase = PhaseReport::from_delta(merge_wall, after_merge.since(&after_runs));

        // --- Optional verification -------------------------------------
        let verify_phase = verify_phase_report::<D, R>(
            device,
            self.config.verify,
            output,
            run_set.records,
            &after_merge,
        )?;
        namer.cleanup(device)?;

        Ok(SortReport {
            generator: self.generator.label(),
            records: run_set.records,
            num_runs: run_set.num_runs(),
            average_run_length: run_set.average_run_length(),
            relative_run_length: run_set.relative_run_length(self.generator.memory_records()),
            run_generation: run_phase,
            merge: merge_phase,
            verify: verify_phase,
            merge_report,
        })
    }

    /// Sorts a dataset of `R` records previously materialised on the
    /// device (see `twrs_workloads::materialize`) into the forward run file
    /// `output`.
    ///
    /// The record type cannot be inferred from the file names, so call this
    /// as `sorter.sort_file_as::<_, MyRecord>(…)`. For the default paper
    /// record the facade crate provides a `sort_file` extension method with
    /// the historical signature.
    ///
    /// A corrupt or truncated input dataset surfaces as an
    /// [`SortError::Storage`] error, never as a panic. The pipeline sorts
    /// the readable prefix before the error is detected (the generators
    /// see an ordinary end of stream), but the partial output file is
    /// removed, so no valid-looking truncated result survives.
    pub fn sort_file_as<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &str,
        output: &str,
    ) -> Result<SortReport> {
        sort_dataset_file::<D, R, _>(device, input, output, |iter| {
            self.sort_iter(device, iter, output)
        })
    }
}

/// Runs the optional post-merge verification scan in its own snapshot
/// window (starting at `after_merge`, the snapshot that closed the merge
/// phase) so its read pass is attributed to the `verify` report, never to
/// the merge phase. Shared by the sequential and parallel sorters.
pub(crate) fn verify_phase_report<D: twrs_storage::StorageDevice, R: SortableRecord>(
    device: &D,
    enabled: bool,
    output: &str,
    records: u64,
    after_merge: &IoStatsSnapshot,
) -> Result<Option<PhaseReport>> {
    if !enabled {
        return Ok(None);
    }
    let started = Instant::now();
    verify_sorted::<R>(device, output, records)?;
    let verify_wall = started.elapsed();
    let after_verify = device.stats();
    Ok(Some(PhaseReport::from_delta(
        verify_wall,
        after_verify.since(after_merge),
    )))
}

/// Checks that the run `output` is sorted and contains `expected_records`
/// records.
pub fn verify_sorted<R: SortableRecord>(
    device: &dyn twrs_storage::StorageDevice,
    output: &str,
    expected_records: u64,
) -> Result<()> {
    let mut cursor = RunCursor::<R>::open(device, &RunHandle::Forward(output.to_string()))?;
    let mut count = 0u64;
    let mut previous: Option<R> = None;
    while let Some(record) = cursor.next_record()? {
        if let Some(prev) = &previous {
            if &record < prev {
                return Err(SortError::VerificationFailed(format!(
                    "output not sorted at record {count}: {record:?} < {prev:?}"
                )));
            }
        }
        previous = Some(record);
        count += 1;
    }
    if count != expected_records {
        return Err(SortError::VerificationFailed(format!(
            "output has {count} records, expected {expected_records}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_sort_store::LoadSortStore;
    use crate::replacement_selection::ReplacementSelection;
    use twrs_storage::{SimDevice, StorageDevice};
    use twrs_workloads::{materialize, Distribution, DistributionKind, Record};

    fn sorted_config() -> SorterConfig {
        SorterConfig {
            merge: MergeConfig {
                fan_in: 8,
                read_ahead_records: 64,
            },
            verify: true,
        }
    }

    #[test]
    fn rs_pipeline_sorts_random_input() {
        let device = SimDevice::new();
        let mut sorter =
            ExternalSorter::with_config(ReplacementSelection::new(200), sorted_config());
        let mut input = Distribution::new(DistributionKind::RandomUniform, 10_000, 1).records();
        let report = sorter.sort_iter(&device, &mut input, "out").unwrap();
        assert_eq!(report.records, 10_000);
        assert_eq!(report.generator, "RS");
        assert!(report.num_runs > 1);
        assert!(report.relative_run_length > 1.5);
        assert!(report.merge_report.output_records == 10_000);
    }

    #[test]
    fn lss_pipeline_sorts_and_reports_phases() {
        let device = SimDevice::new();
        let mut sorter = ExternalSorter::with_config(LoadSortStore::new(128), sorted_config());
        let mut input = Distribution::new(DistributionKind::MixedBalanced, 4_000, 3).records();
        let report = sorter.sort_iter(&device, &mut input, "out").unwrap();
        assert_eq!(report.records, 4_000);
        assert!(report.run_generation.pages_written > 0);
        assert!(report.merge.pages_read > 0);
        assert!(report.total_modelled() >= report.total_wall());
    }

    #[test]
    fn sort_file_reads_materialised_dataset() {
        let device = SimDevice::new();
        let dist = Distribution::new(DistributionKind::ReverseSorted, 3_000, 9);
        materialize(&device, "input", dist.records()).unwrap();
        let mut sorter =
            ExternalSorter::with_config(ReplacementSelection::new(100), sorted_config());
        let report = sorter
            .sort_file_as::<_, Record>(&device, "input", "out")
            .unwrap();
        assert_eq!(report.records, 3_000);
        // Reverse-sorted input is RS's worst case: runs equal to memory.
        assert_eq!(report.num_runs, 30);
    }

    #[test]
    fn verification_catches_missing_records() {
        let device = SimDevice::new();
        // Manually write an unsorted "output" and check the verifier trips.
        let mut writer = twrs_storage::RunWriter::<Record>::create(&device, "bad").unwrap();
        writer.push(&Record::from_key(5)).unwrap();
        writer.push(&Record::from_key(1)).unwrap();
        writer.finish().unwrap();
        assert!(matches!(
            verify_sorted::<Record>(&device, "bad", 2),
            Err(SortError::VerificationFailed(_))
        ));
        // Sorted but wrong count.
        let mut writer = twrs_storage::RunWriter::<Record>::create(&device, "short").unwrap();
        writer.push(&Record::from_key(1)).unwrap();
        writer.finish().unwrap();
        assert!(matches!(
            verify_sorted::<Record>(&device, "short", 2),
            Err(SortError::VerificationFailed(_))
        ));
    }

    #[test]
    fn verify_pass_reads_are_excluded_from_the_merge_phase() {
        // Same input and configuration twice, once with and once without
        // the verification scan: the merge phase's attributed I/O must be
        // identical, and the scan must show up only in the `verify` report.
        let sort = |verify: bool| {
            let device = SimDevice::new();
            let config = SorterConfig {
                merge: MergeConfig {
                    fan_in: 4,
                    read_ahead_records: 32,
                },
                verify,
            };
            let mut sorter = ExternalSorter::with_config(ReplacementSelection::new(128), config);
            let mut input = Distribution::new(DistributionKind::RandomUniform, 5_000, 11).records();
            sorter.sort_iter(&device, &mut input, "out").unwrap()
        };
        let plain = sort(false);
        let verified = sort(true);
        assert!(plain.verify.is_none());
        let verify_phase = verified.verify.expect("verify phase reported");
        // The pinning assertions: merge-phase attribution is byte-for-byte
        // the same whether or not the verification pass runs afterwards.
        assert_eq!(verified.merge.pages_read, plain.merge.pages_read);
        assert_eq!(verified.merge.pages_written, plain.merge.pages_written);
        assert_eq!(verified.merge.seeks, plain.merge.seeks);
        // The scan itself is a pure read pass over the output.
        assert!(verify_phase.pages_read > 0);
        assert_eq!(verify_phase.pages_written, 0);
    }

    #[test]
    fn empty_input_sorts_to_empty_output() {
        let device = SimDevice::new();
        let mut sorter = ExternalSorter::with_config(LoadSortStore::new(16), sorted_config());
        let mut input = std::iter::empty::<Record>();
        let report = sorter.sort_iter(&device, &mut input, "out").unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.num_runs, 0);
    }

    #[test]
    fn temporary_files_are_cleaned_up() {
        let device = SimDevice::new();
        let mut sorter =
            ExternalSorter::with_config(ReplacementSelection::new(64), sorted_config());
        let mut input = Distribution::new(DistributionKind::RandomUniform, 2_000, 4).records();
        sorter.sort_iter(&device, &mut input, "final").unwrap();
        let files = device.list();
        assert_eq!(files, vec!["final".to_string()]);
    }
}
