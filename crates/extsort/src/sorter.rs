//! The end-to-end external sorter: run generation followed by a multi-pass
//! k-way merge.
//!
//! This is the pipeline the paper times in Chapter 6: the run-generation
//! algorithm (classic RS, Load-Sort-Store or 2WRS from the `twrs-core`
//! crate) is a plug-in, the merge phase and its fan-in are shared, and the
//! report splits wall-clock time and I/O between the two phases exactly like
//! the "run" and "total" series of Figures 6.2–6.7.

use crate::cancel::CancellationToken;
use crate::error::{Result, SortError};
use crate::merge::kway::{finish_into_sink, KWayMerger, MergeConfig, MergeReport, ReducedRuns};
use crate::run_generation::{
    sort_dataset_file, Device, RunCursor, RunGenerator, RunHandle, RunSet,
};
use crate::sink::RecordSink;
use crate::sort_job::SortJobReport;
use crate::stream::{unique_namespace, SortedStream, StreamSource};
use std::sync::Arc;
use std::time::{Duration, Instant};
use twrs_storage::{IoStatsSnapshot, SortableRecord, SpillNamer};

/// Configuration of the sorting pipeline that is independent of the
/// run-generation algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct SorterConfig {
    /// Merge-phase configuration (fan-in and per-run read-ahead).
    pub merge: MergeConfig,
    /// When `true`, the output is scanned after the merge and verified to be
    /// sorted and complete (record count). Intended for tests and examples;
    /// costs one extra read pass.
    pub verify: bool,
}

/// Wall-clock time and I/O attributed to one phase of the sort.
#[derive(Debug, Clone, Copy)]
pub struct PhaseReport {
    /// Wall-clock time spent in the phase.
    pub wall: Duration,
    /// Pages read from the device during the phase.
    pub pages_read: u64,
    /// Pages written to the device during the phase.
    pub pages_written: u64,
    /// Seeks performed during the phase.
    pub seeks: u64,
    /// Elapsed time predicted by the device's disk model for the phase's
    /// I/O (deterministic; useful with the simulated device).
    pub simulated_io: Duration,
}

impl PhaseReport {
    pub(crate) fn from_delta(wall: Duration, delta: IoStatsSnapshot) -> Self {
        PhaseReport {
            wall,
            pages_read: delta.counters.pages_read,
            pages_written: delta.counters.pages_written,
            seeks: delta.counters.seeks,
            simulated_io: delta.simulated_time(),
        }
    }

    /// Wall-clock time plus the simulated I/O time; a deterministic proxy
    /// for total elapsed time on the in-memory device.
    pub fn modelled_total(&self) -> Duration {
        self.wall + self.simulated_io
    }
}

/// How the final merge pass of a sort delivered its output.
///
/// Every sort reduces its runs to at most the merge fan-in with
/// intermediate passes; the *final* pass is where the output shapes
/// diverge, and where the write I/O of a sort can disappear entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalPassKind {
    /// Drained into a named forward run file on the device
    /// (`run_iter` / `run_file`): one full write pass over the output.
    File,
    /// Drained into a caller-provided [`RecordSink`]; the device sees only
    /// whatever the sink itself writes (nothing, for the in-memory sinks).
    Sink,
    /// Suspended into a lazy [`SortedStream`] that merges on read: zero
    /// final-pass writes by construction.
    Streamed,
}

/// Full report of one external sort.
#[derive(Debug, Clone)]
pub struct SortReport {
    /// Label of the run-generation algorithm ("RS", "2WRS", "LSS", …).
    pub generator: &'static str,
    /// Number of records sorted.
    pub records: u64,
    /// Number of runs the generation phase produced.
    pub num_runs: usize,
    /// Average run length in records.
    pub average_run_length: f64,
    /// Average run length divided by the memory budget (Table 5.13 metric).
    pub relative_run_length: f64,
    /// Run-generation phase cost.
    pub run_generation: PhaseReport,
    /// Merge phase cost.
    pub merge: PhaseReport,
    /// Cost of the optional post-merge verification scan
    /// ([`SorterConfig::verify`]); `None` when verification was disabled.
    /// Reported separately so the extra read pass never pollutes the merge
    /// phase's I/O attribution.
    pub verify: Option<PhaseReport>,
    /// Merge statistics (steps and rewrite passes). For a streamed sort
    /// this covers the intermediate passes only — the suspended final pass
    /// has not produced output when the report is taken.
    pub merge_report: MergeReport,
    /// How the final merge pass delivered the sorted output.
    pub final_pass: FinalPassKind,
    /// Pages the final merge pass alone wrote, out of
    /// [`merge`](SortReport::merge)'s total: the output-file write for
    /// [`FinalPassKind::File`], whatever the sink wrote for
    /// [`FinalPassKind::Sink`], and always `0` for
    /// [`FinalPassKind::Streamed`] — the write pass a streaming consumer
    /// saves.
    pub final_pass_pages_written: u64,
}

impl SortReport {
    /// Total wall-clock time of both phases.
    pub fn total_wall(&self) -> Duration {
        self.run_generation.wall + self.merge.wall
    }

    /// Total modelled time (wall + simulated I/O) of both phases.
    pub fn total_modelled(&self) -> Duration {
        self.run_generation.modelled_total() + self.merge.modelled_total()
    }
}

/// An external sorter parameterised by its run-generation algorithm.
pub struct ExternalSorter<G: RunGenerator> {
    generator: G,
    config: SorterConfig,
    cancel: CancellationToken,
}

/// Drop guard that removes a sort's spill files — and optionally its
/// partial output — if the scope unwinds. The panic-safety net behind the
/// explicit cleanup the success and error paths run: a generator or merge
/// panic unwinds through the guard instead of orphaning run files on the
/// device. Shared by the sequential and parallel engines.
pub(crate) struct SpillSweeper<'a, D: Device> {
    device: &'a D,
    namer: &'a SpillNamer,
    output: Option<&'a str>,
    armed: bool,
}

impl<'a, D: Device> SpillSweeper<'a, D> {
    pub(crate) fn new(device: &'a D, namer: &'a SpillNamer, output: Option<&'a str>) -> Self {
        SpillSweeper {
            device,
            namer,
            output,
            armed: true,
        }
    }

    /// Disarms the guard: the caller takes over cleanup responsibility.
    pub(crate) fn disarm(&mut self) {
        self.armed = false;
    }
}

impl<D: Device> Drop for SpillSweeper<'_, D> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let _ = self.namer.cleanup(self.device);
        if let Some(output) = self.output {
            if self.device.exists(output) {
                let _ = self.device.remove(output);
            }
        }
    }
}

impl<G: RunGenerator> ExternalSorter<G> {
    /// Creates a sorter with the default pipeline configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use the `SortJob` builder front door instead \
                (`SortJob::new(generator).on(&device).run_iter(input, \"out\")`), \
                or `ExternalSorter::with_config` for a generator that does not \
                implement `ShardableGenerator`"
    )]
    pub fn new(generator: G) -> Self {
        ExternalSorter {
            generator,
            config: SorterConfig::default(),
            cancel: CancellationToken::new(),
        }
    }

    /// Creates a sorter with an explicit pipeline configuration.
    pub fn with_config(generator: G, config: SorterConfig) -> Self {
        ExternalSorter {
            generator,
            config,
            cancel: CancellationToken::new(),
        }
    }

    /// Installs a cooperative cancellation token. The pipeline polls it at
    /// phase and page boundaries — run generation on every record pulled
    /// into the heap, the merge between passes and every few hundred
    /// output records — and a set flag surfaces as
    /// [`SortError::Canceled`] after spill files (and any partial output)
    /// have been removed.
    pub fn set_cancel_token(&mut self, cancel: CancellationToken) {
        self.cancel = cancel;
    }

    /// The pipeline configuration.
    pub fn config(&self) -> SorterConfig {
        self.config
    }

    /// A reference to the run-generation algorithm.
    pub fn generator(&self) -> &G {
        &self.generator
    }

    /// Sorts the records produced by `input` into the forward run file
    /// `output` on `device`.
    ///
    /// This is the file-sink specialisation of the pipeline: the final
    /// merge pass drains into a `RunWriter` on the device. For other
    /// destinations see [`sort_iter_sink`](ExternalSorter::sort_iter_sink)
    /// and [`sort_iter_stream`](ExternalSorter::sort_iter_stream).
    pub fn sort_iter<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        output: &str,
    ) -> Result<SortReport> {
        let namer = SpillNamer::new(format!("sort-{output}"));
        let mut sweeper = SpillSweeper::new(device, &namer, Some(output));
        let result = self.sort_iter_inner(device, input, output, &namer);
        sweeper.disarm();
        // Spill files are removed on success *and* on error, so a failed
        // sort never leaves run or intermediate-merge files behind; a
        // canceled or failed merge may also have left a partial output.
        let cleanup = namer.cleanup(device);
        if result.is_err() && device.exists(output) {
            let _ = device.remove(output);
        }
        let report = result?;
        cleanup?;
        Ok(report)
    }

    fn sort_iter_inner<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        output: &str,
        namer: &SpillNamer,
    ) -> Result<SortReport> {
        // --- Run generation phase -------------------------------------
        let (run_set, run_phase, after_runs) = self.generate_phase(device, namer, input)?;

        // --- Merge phase -----------------------------------------------
        let merger = KWayMerger::new(self.config.merge).with_cancel(self.cancel.clone());
        let started = Instant::now();
        let outcome =
            merger.merge_into_outcome::<D, R>(device, namer, run_set.runs.clone(), output)?;
        let merge_wall = started.elapsed();
        let after_merge = device.stats();
        let merge_phase = PhaseReport::from_delta(merge_wall, after_merge.since(&after_runs));

        // --- Optional verification -------------------------------------
        let verify_phase = verify_phase_report::<D, R>(
            device,
            self.config.verify,
            output,
            run_set.records,
            &after_merge,
        )?;

        Ok(self.report(
            &run_set,
            run_phase,
            merge_phase,
            verify_phase,
            outcome.report,
            FinalPassKind::File,
            outcome.final_pass_pages_written,
        ))
    }

    /// Sorts the records produced by `input` straight into `sink` —
    /// the final merge pass drains into the sink instead of writing an
    /// output file, so a non-file sink pays no final write pass at all.
    ///
    /// The verification flag is file-specific and ignored here (the sink
    /// receives the records in ascending order by construction); the
    /// report's `verify` phase is `None` and its `final_pass` is
    /// [`FinalPassKind::Sink`]. A failing sink aborts the sort; the spill
    /// files are removed before the error is returned.
    pub fn sort_iter_sink<D: Device, R: SortableRecord, K>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        sink: &mut K,
    ) -> Result<SortReport>
    where
        K: RecordSink<R> + ?Sized,
    {
        let namer = SpillNamer::new(unique_namespace("sort-sink"));
        let mut sweeper = SpillSweeper::new(device, &namer, None);
        let result = self.sort_sink_inner(device, input, sink, &namer);
        sweeper.disarm();
        let cleanup = namer.cleanup(device);
        let report = result?;
        cleanup?;
        Ok(report)
    }

    fn sort_sink_inner<D: Device, R: SortableRecord, K>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        sink: &mut K,
        namer: &SpillNamer,
    ) -> Result<SortReport>
    where
        K: RecordSink<R> + ?Sized,
    {
        let (run_set, run_phase, after_runs) = self.generate_phase(device, namer, input)?;

        let merger = KWayMerger::new(self.config.merge).with_cancel(self.cancel.clone());
        let started = Instant::now();
        let ReducedRuns {
            remaining,
            report: mut merge_report,
        } = self.reduce_phase::<D, R>(device, namer, &merger, run_set.runs.clone())?;

        // --- Final pass: straight into the sink ------------------------
        let mut sources = merger.open_sources::<D, R>(device, &remaining)?;
        let final_writes = finish_into_sink(
            device,
            &mut sources,
            sink,
            &remaining,
            &mut merge_report,
            &self.cancel,
        )?;
        let merge_wall = started.elapsed();
        let merge_phase = PhaseReport::from_delta(merge_wall, device.stats().since(&after_runs));

        Ok(self.report(
            &run_set,
            run_phase,
            merge_phase,
            None,
            merge_report,
            FinalPassKind::Sink,
            final_writes,
        ))
    }

    /// Sorts the records produced by `input` into a lazy [`SortedStream`]:
    /// runs are generated and reduced to at most the merge fan-in as usual,
    /// but the final k-way merge is suspended into the returned iterator
    /// and performed on `next()` — no output file, zero final-pass write
    /// I/O.
    ///
    /// The stream owns the sort's spill files and removes them when it is
    /// consumed, closed or dropped. The verification flag is file-specific
    /// and ignored here.
    pub fn sort_iter_stream<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<SortedStream<R>> {
        let namer = Arc::new(SpillNamer::new(unique_namespace("sort-stream")));
        let mut sweeper = SpillSweeper::new(device, &namer, None);
        match self.sort_stream_inner(device, input, &namer) {
            Ok(stream) => {
                // The stream owns the spill files from here on.
                sweeper.disarm();
                Ok(stream)
            }
            // The sweeper removes whatever the failed (or panicked) sort
            // left behind when it drops.
            Err(error) => Err(error),
        }
    }

    fn sort_stream_inner<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &mut dyn Iterator<Item = R>,
        namer: &Arc<SpillNamer>,
    ) -> Result<SortedStream<R>> {
        let (run_set, run_phase, after_runs) = self.generate_phase(device, namer, input)?;

        let merger = KWayMerger::new(self.config.merge).with_cancel(self.cancel.clone());
        let started = Instant::now();
        let ReducedRuns {
            remaining,
            report: merge_report,
        } = self.reduce_phase::<D, R>(device, namer, &merger, run_set.runs.clone())?;
        // The merge window closes at the suspension point, before any
        // source is opened: reads performed on behalf of the consumer
        // (head pages, read-ahead) belong to consumption, not to the
        // phases — which also keeps the phase counters deterministic.
        let merge_wall = started.elapsed();
        let merge_phase = PhaseReport::from_delta(merge_wall, device.stats().since(&after_runs));
        let sources: Vec<StreamSource<R>> = merger
            .open_sources::<D, R>(device, &remaining)?
            .into_iter()
            .map(StreamSource::Buffered)
            .collect();

        let report = SortJobReport::sequential(self.report(
            &run_set,
            run_phase,
            merge_phase,
            None,
            merge_report,
            FinalPassKind::Streamed,
            0,
        ));
        let cleanup_device = device.clone();
        let cleanup_namer = Arc::clone(namer);
        SortedStream::new(
            sources,
            report,
            Box::new(move || {
                cleanup_namer
                    .cleanup(&cleanup_device)
                    .map_err(SortError::from)
            }),
        )
    }

    /// Runs the generation phase in its own snapshot window.
    fn generate_phase<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        namer: &SpillNamer,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<(RunSet, PhaseReport, IoStatsSnapshot)> {
        let before = device.stats();
        let started = Instant::now();
        // Every record enters the heap through the cancellation gate, so
        // the token is effectively checked on each heap refill; the
        // explicit check below keeps a truncated prefix from masquerading
        // as a completed generation phase.
        let cancel = self.cancel.clone();
        let mut gated = cancel.gate(input);
        let run_set: RunSet = self.generator.generate(device, namer, &mut gated)?;
        self.cancel.check()?;
        let run_wall = started.elapsed();
        let after_runs = device.stats();
        let run_phase = PhaseReport::from_delta(run_wall, after_runs.since(&before));
        Ok((run_set, run_phase, after_runs))
    }

    /// Runs the intermediate merge passes until at most `fan_in` runs
    /// remain.
    fn reduce_phase<D: Device, R: SortableRecord>(
        &self,
        device: &D,
        namer: &SpillNamer,
        merger: &KWayMerger,
        runs: Vec<RunHandle>,
    ) -> Result<ReducedRuns> {
        crate::merge::kway::reduce_to_fan_in(
            device,
            namer,
            runs,
            self.config.merge.fan_in,
            &self.cancel,
            &mut |batch, name| merger.merge_batch::<D, R>(device, batch, name),
        )
    }

    /// Assembles a [`SortReport`] from the measured phases.
    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        run_set: &RunSet,
        run_generation: PhaseReport,
        merge: PhaseReport,
        verify: Option<PhaseReport>,
        merge_report: MergeReport,
        final_pass: FinalPassKind,
        final_pass_pages_written: u64,
    ) -> SortReport {
        assemble_report(
            self.generator.label(),
            self.generator.memory_records(),
            run_set,
            run_generation,
            merge,
            verify,
            merge_report,
            final_pass,
            final_pass_pages_written,
        )
    }

    /// Sorts a dataset of `R` records previously materialised on the
    /// device (see `twrs_workloads::materialize`) into the forward run file
    /// `output`.
    ///
    /// The record type cannot be inferred from the file names, so call this
    /// as `sorter.sort_file_as::<_, MyRecord>(…)`. For the default paper
    /// record the facade crate provides a `sort_file` extension method with
    /// the historical signature.
    ///
    /// A corrupt or truncated input dataset surfaces as an
    /// [`SortError::Storage`] error, never as a panic. The pipeline sorts
    /// the readable prefix before the error is detected (the generators
    /// see an ordinary end of stream), but the partial output file is
    /// removed, so no valid-looking truncated result survives.
    pub fn sort_file_as<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        input: &str,
        output: &str,
    ) -> Result<SortReport> {
        sort_dataset_file::<D, R, _>(device, input, Some(output), |iter| {
            self.sort_iter(device, iter, output)
        })
    }
}

/// Assembles a [`SortReport`] from the measured phases of one sort; the
/// single construction point shared by the sequential and parallel engines,
/// so their reports can never drift in shape.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_report(
    generator: &'static str,
    memory_records: usize,
    run_set: &RunSet,
    run_generation: PhaseReport,
    merge: PhaseReport,
    verify: Option<PhaseReport>,
    merge_report: MergeReport,
    final_pass: FinalPassKind,
    final_pass_pages_written: u64,
) -> SortReport {
    SortReport {
        generator,
        records: run_set.records,
        num_runs: run_set.num_runs(),
        average_run_length: run_set.average_run_length(),
        relative_run_length: run_set.relative_run_length(memory_records),
        run_generation,
        merge,
        verify,
        merge_report,
        final_pass,
        final_pass_pages_written,
    }
}

/// Runs the optional post-merge verification scan in its own snapshot
/// window (starting at `after_merge`, the snapshot that closed the merge
/// phase) so its read pass is attributed to the `verify` report, never to
/// the merge phase. Shared by the sequential and parallel sorters.
pub(crate) fn verify_phase_report<D: twrs_storage::StorageDevice, R: SortableRecord>(
    device: &D,
    enabled: bool,
    output: &str,
    records: u64,
    after_merge: &IoStatsSnapshot,
) -> Result<Option<PhaseReport>> {
    if !enabled {
        return Ok(None);
    }
    let started = Instant::now();
    verify_sorted::<R>(device, output, records)?;
    let verify_wall = started.elapsed();
    let after_verify = device.stats();
    Ok(Some(PhaseReport::from_delta(
        verify_wall,
        after_verify.since(after_merge),
    )))
}

/// Checks that the run `output` is sorted and contains `expected_records`
/// records.
pub fn verify_sorted<R: SortableRecord>(
    device: &dyn twrs_storage::StorageDevice,
    output: &str,
    expected_records: u64,
) -> Result<()> {
    let mut cursor = RunCursor::<R>::open(device, &RunHandle::Forward(output.to_string()))?;
    let mut count = 0u64;
    let mut previous: Option<R> = None;
    while let Some(record) = cursor.next_record()? {
        if let Some(prev) = &previous {
            if &record < prev {
                return Err(SortError::VerificationFailed(format!(
                    "output not sorted at record {count}: {record:?} < {prev:?}"
                )));
            }
        }
        previous = Some(record);
        count += 1;
    }
    if count != expected_records {
        return Err(SortError::VerificationFailed(format!(
            "output has {count} records, expected {expected_records}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_sort_store::LoadSortStore;
    use crate::replacement_selection::ReplacementSelection;
    use twrs_storage::ModelId;
    use twrs_storage::{SimDevice, StorageDevice};
    use twrs_workloads::{materialize, Distribution, DistributionKind, Record};

    fn sorted_config() -> SorterConfig {
        SorterConfig {
            merge: MergeConfig {
                fan_in: 8,
                read_ahead_records: 64,
            },
            verify: true,
        }
    }

    #[test]
    fn rs_pipeline_sorts_random_input() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut sorter =
            ExternalSorter::with_config(ReplacementSelection::new(200), sorted_config());
        let mut input = Distribution::new(DistributionKind::RandomUniform, 10_000, 1).records();
        let report = sorter.sort_iter(&device, &mut input, "out").unwrap();
        assert_eq!(report.records, 10_000);
        assert_eq!(report.generator, "RS");
        assert!(report.num_runs > 1);
        assert!(report.relative_run_length > 1.5);
        assert!(report.merge_report.output_records == 10_000);
    }

    #[test]
    fn lss_pipeline_sorts_and_reports_phases() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut sorter = ExternalSorter::with_config(LoadSortStore::new(128), sorted_config());
        let mut input = Distribution::new(DistributionKind::MixedBalanced, 4_000, 3).records();
        let report = sorter.sort_iter(&device, &mut input, "out").unwrap();
        assert_eq!(report.records, 4_000);
        assert!(report.run_generation.pages_written > 0);
        assert!(report.merge.pages_read > 0);
        assert!(report.total_modelled() >= report.total_wall());
    }

    #[test]
    fn sort_file_reads_materialised_dataset() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let dist = Distribution::new(DistributionKind::ReverseSorted, 3_000, 9);
        materialize(&device, "input", dist.records()).unwrap();
        let mut sorter =
            ExternalSorter::with_config(ReplacementSelection::new(100), sorted_config());
        let report = sorter
            .sort_file_as::<_, Record>(&device, "input", "out")
            .unwrap();
        assert_eq!(report.records, 3_000);
        // Reverse-sorted input is RS's worst case: runs equal to memory.
        assert_eq!(report.num_runs, 30);
    }

    #[test]
    fn verification_catches_missing_records() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        // Manually write an unsorted "output" and check the verifier trips.
        let mut writer = twrs_storage::RunWriter::<Record>::create(&device, "bad").unwrap();
        writer.push(&Record::from_key(5)).unwrap();
        writer.push(&Record::from_key(1)).unwrap();
        writer.finish().unwrap();
        assert!(matches!(
            verify_sorted::<Record>(&device, "bad", 2),
            Err(SortError::VerificationFailed(_))
        ));
        // Sorted but wrong count.
        let mut writer = twrs_storage::RunWriter::<Record>::create(&device, "short").unwrap();
        writer.push(&Record::from_key(1)).unwrap();
        writer.finish().unwrap();
        assert!(matches!(
            verify_sorted::<Record>(&device, "short", 2),
            Err(SortError::VerificationFailed(_))
        ));
    }

    #[test]
    fn verify_pass_reads_are_excluded_from_the_merge_phase() {
        // Same input and configuration twice, once with and once without
        // the verification scan: the merge phase's attributed I/O must be
        // identical, and the scan must show up only in the `verify` report.
        let sort = |verify: bool| {
            let device = SimDevice::with_model(ModelId::Hdd7200);
            let config = SorterConfig {
                merge: MergeConfig {
                    fan_in: 4,
                    read_ahead_records: 32,
                },
                verify,
            };
            let mut sorter = ExternalSorter::with_config(ReplacementSelection::new(128), config);
            let mut input = Distribution::new(DistributionKind::RandomUniform, 5_000, 11).records();
            sorter.sort_iter(&device, &mut input, "out").unwrap()
        };
        let plain = sort(false);
        let verified = sort(true);
        assert!(plain.verify.is_none());
        let verify_phase = verified.verify.expect("verify phase reported");
        // The pinning assertions: merge-phase attribution is byte-for-byte
        // the same whether or not the verification pass runs afterwards.
        assert_eq!(verified.merge.pages_read, plain.merge.pages_read);
        assert_eq!(verified.merge.pages_written, plain.merge.pages_written);
        assert_eq!(verified.merge.seeks, plain.merge.seeks);
        // The scan itself is a pure read pass over the output.
        assert!(verify_phase.pages_read > 0);
        assert_eq!(verify_phase.pages_written, 0);
    }

    #[test]
    fn empty_input_sorts_to_empty_output() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut sorter = ExternalSorter::with_config(LoadSortStore::new(16), sorted_config());
        let mut input = std::iter::empty::<Record>();
        let report = sorter.sort_iter(&device, &mut input, "out").unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.num_runs, 0);
    }

    #[test]
    fn temporary_files_are_cleaned_up() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let mut sorter =
            ExternalSorter::with_config(ReplacementSelection::new(64), sorted_config());
        let mut input = Distribution::new(DistributionKind::RandomUniform, 2_000, 4).records();
        sorter.sort_iter(&device, &mut input, "final").unwrap();
        let files = device.list();
        assert_eq!(files, vec!["final".to_string()]);
    }
}
