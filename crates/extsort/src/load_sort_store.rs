//! The Load-Sort-Store baseline (§2.1.1).
//!
//! The simplest run-generation strategy: fill the available memory with
//! records from the input, sort them with an internal sorting algorithm,
//! write the sorted block out as one run and repeat. Every run is exactly
//! the size of memory (except possibly the last), which is the lower bound
//! replacement selection always meets or beats.

use crate::error::{Result, SortError};
use crate::parallel::{shard_budget, ShardableGenerator};
use crate::run_generation::{Device, ForwardRunBuilder, RunGenerator, RunSet};
use twrs_storage::{SortableRecord, SpillNamer};

/// Load-Sort-Store run generation.
#[derive(Debug, Clone)]
pub struct LoadSortStore {
    memory_records: usize,
}

impl LoadSortStore {
    /// Creates the baseline with a memory budget of `memory_records`
    /// records.
    pub fn new(memory_records: usize) -> Self {
        LoadSortStore { memory_records }
    }
}

impl ShardableGenerator for LoadSortStore {
    fn shard(&self, index: usize, shards: usize) -> Self {
        LoadSortStore::new(shard_budget(self.memory_records, index, shards))
    }
}

impl crate::run_generation::BudgetedGenerator for LoadSortStore {
    fn with_budget(&self, memory_records: usize) -> Self {
        LoadSortStore::new(memory_records)
    }
}

impl RunGenerator for LoadSortStore {
    fn label(&self) -> &'static str {
        "LSS"
    }

    fn memory_records(&self) -> usize {
        self.memory_records
    }

    fn generate<D: Device, R: SortableRecord>(
        &mut self,
        device: &D,
        namer: &SpillNamer,
        input: &mut dyn Iterator<Item = R>,
    ) -> Result<RunSet> {
        if self.memory_records == 0 {
            return Err(SortError::InvalidConfig(
                "Load-Sort-Store needs a memory budget of at least one record".into(),
            ));
        }
        let mut runs = Vec::new();
        let mut total = 0u64;
        let mut buffer: Vec<R> = Vec::with_capacity(self.memory_records);
        loop {
            buffer.clear();
            buffer.extend(input.take(self.memory_records));
            if buffer.is_empty() {
                break;
            }
            buffer.sort_unstable();
            let mut builder = ForwardRunBuilder::new(device, namer);
            for record in &buffer {
                builder.push(record)?;
            }
            total += builder.finish_run(&mut runs)?;
            if buffer.len() < self.memory_records {
                break;
            }
        }
        Ok(RunSet {
            runs,
            records: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_generation::RunCursor;
    use twrs_storage::ModelId;
    use twrs_storage::SimDevice;
    use twrs_workloads::{Distribution, DistributionKind, Record};

    fn generate(memory: usize, records: u64) -> (SimDevice, RunSet) {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("lss");
        let mut generator = LoadSortStore::new(memory);
        let mut input = Distribution::new(DistributionKind::RandomUniform, records, 1).records();
        let set = generator.generate(&device, &namer, &mut input).unwrap();
        (device, set)
    }

    #[test]
    fn runs_are_memory_sized() {
        let (_device, set) = generate(100, 1_000);
        assert_eq!(set.num_runs(), 10);
        assert_eq!(set.records, 1_000);
        assert!((set.relative_run_length(100) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn last_run_may_be_partial() {
        let (_device, set) = generate(100, 950);
        assert_eq!(set.num_runs(), 10);
        assert_eq!(set.records, 950);
    }

    #[test]
    fn every_run_is_sorted_and_nothing_is_lost() {
        let (device, set) = generate(64, 500);
        let mut all: Vec<Record> = Vec::new();
        for handle in &set.runs {
            let mut cursor = RunCursor::<Record>::open(&device, handle).unwrap();
            let run = cursor.read_all().unwrap();
            assert!(run.windows(2).all(|w| w[0] <= w[1]));
            all.extend(run);
        }
        assert_eq!(all.len(), 500);
        let mut expected: Vec<Record> =
            Distribution::new(DistributionKind::RandomUniform, 500, 1).collect();
        expected.sort_unstable();
        all.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn empty_input_produces_no_runs() {
        let (_device, set) = generate(100, 0);
        assert_eq!(set.num_runs(), 0);
        assert_eq!(set.records, 0);
    }

    #[test]
    fn zero_memory_is_rejected() {
        let device = SimDevice::with_model(ModelId::Hdd7200);
        let namer = SpillNamer::new("lss");
        let mut generator = LoadSortStore::new(0);
        let mut input = std::iter::empty::<Record>();
        assert!(matches!(
            generator.generate(&device, &namer, &mut input),
            Err(SortError::InvalidConfig(_))
        ));
    }
}
